//! Property-based tests on the core data structures and invariants.

use clipper::core::batching::{AimdController, BatchController, QuantileController};
use clipper::core::cache::{CacheKey, PredictionCache};
use clipper::core::selection::{weighted_combine, PolicyState, SelectionPolicy};
use clipper::core::{Exp3Policy, Exp4Policy, Feedback, ModelId, Output};
use clipper::metrics::Histogram;
use clipper::rpc::codec::{FrameReader, HEADER_LEN};
use clipper::rpc::message::{Message, PredictReply, WireOutput, MAGIC, MAX_PAYLOAD, VERSION};
use clipper::rpc::RpcError;
use proptest::prelude::*;
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::Duration;

use clipper::statestore::{CasOutcome, StateStore};

/// An always-ready `AsyncRead` over in-memory bytes that returns data in
/// scripted chunk sizes (cycled), exercising every resume point in the
/// framing layer without a runtime or real sockets.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    next_chunk: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, chunks: Vec<usize>) -> Self {
        ChunkedReader {
            data,
            pos: 0,
            chunks,
            next_chunk: 0,
        }
    }
}

impl tokio::io::AsyncRead for ChunkedReader {
    fn poll_read(
        mut self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut tokio::io::ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        let me = &mut *self;
        if me.pos >= me.data.len() {
            return Poll::Ready(Ok(())); // EOF
        }
        let scripted = if me.chunks.is_empty() {
            usize::MAX
        } else {
            let c = me.chunks[me.next_chunk % me.chunks.len()].max(1);
            me.next_chunk += 1;
            c
        };
        let n = scripted.min(buf.remaining()).min(me.data.len() - me.pos);
        buf.put_slice(&me.data[me.pos..me.pos + n]);
        me.pos += n;
        Poll::Ready(Ok(()))
    }
}

/// Drive a future whose I/O is always ready to completion with a noop
/// waker — no runtime needed.
fn block_on_ready<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let mut cx = Context::from_waker(Waker::noop());
    for _ in 0..1_000_000 {
        if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
            return v;
        }
    }
    panic!("future did not complete over an always-ready reader");
}

fn arb_output() -> impl Strategy<Value = WireOutput> {
    prop_oneof![
        any::<u32>().prop_map(WireOutput::Class),
        proptest::collection::vec(-1e3f32..1e3, 0..20).prop_map(WireOutput::Scores),
        proptest::collection::vec(any::<u32>(), 0..30).prop_map(WireOutput::Labels),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        Just(Message::Heartbeat),
        Just(Message::HeartbeatAck),
        Just(Message::RegisterAck),
        Just(Message::Shutdown),
        ("[a-z]{1,12}", "[a-z]{1,12}", any::<u32>()).prop_map(|(c, m, v)| Message::Register {
            container_name: c,
            model_name: m,
            model_version: v,
        }),
        ".*".prop_map(|message| Message::Error { message }),
        proptest::collection::vec(proptest::collection::vec(-1e6f32..1e6, 0..50), 0..10).prop_map(
            |inputs| Message::PredictRequest {
                inputs: clipper::rpc::as_inputs(inputs),
            }
        ),
        (
            proptest::collection::vec(arb_output(), 0..10),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(outputs, queue_us, compute_us)| {
                Message::PredictResponse(PredictReply {
                    outputs,
                    queue_us,
                    compute_us,
                })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any message survives an encode/decode round trip, and the declared
    /// wire size matches the actual encoding.
    #[test]
    fn rpc_codec_roundtrips(msg in arb_message(), id in any::<u64>()) {
        let frame = msg.encode(id);
        prop_assert_eq!(msg.wire_size(), frame.len());
        prop_assert_eq!(u32::from_le_bytes(frame[0..4].try_into().unwrap()), MAGIC);
        prop_assert_eq!(frame[4], VERSION);
        let msg_type = frame[5];
        prop_assert_eq!(u64::from_le_bytes(frame[6..14].try_into().unwrap()), id);
        let len = u32::from_le_bytes(frame[14..18].try_into().unwrap()) as usize;
        prop_assert_eq!(frame.len() - HEADER_LEN, len);
        let decoded = Message::decode(msg_type, &frame[HEADER_LEN..]).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// Frames written back to back survive a [`FrameReader`] no matter
    /// how the byte stream is split across reads — every resume point in
    /// the buffered framing layer (mid-header, mid-payload, frame
    /// boundaries) preserves every message, and clean EOF afterwards is
    /// `ConnectionClosed`.
    #[test]
    fn rpc_frames_survive_arbitrary_split_boundaries(
        msgs in proptest::collection::vec(arb_message(), 1..5),
        chunks in proptest::collection::vec(1usize..64, 1..32),
    ) {
        let mut data = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            m.encode_into(i as u64, &mut data);
        }
        let mut r = FrameReader::new(ChunkedReader::new(data, chunks));
        for (i, m) in msgs.iter().enumerate() {
            let (id, got) = block_on_ready(r.next()).unwrap();
            prop_assert_eq!(id, i as u64);
            prop_assert_eq!(&got, m);
        }
        prop_assert!(matches!(
            block_on_ready(r.next()),
            Err(RpcError::ConnectionClosed)
        ));
    }

    /// Decode borrows the payload but the result owns its data: mutating
    /// and dropping the source buffer leaves the message intact (the
    /// compile-time half is `Message: 'static`, asserted below).
    #[test]
    fn rpc_decode_is_zero_copy_sound(msg in arb_message()) {
        fn assert_static<T: 'static>(_: &T) {}
        let frame = msg.encode(3);
        let mut payload = frame[HEADER_LEN..].to_vec();
        let decoded = Message::decode(frame[5], &payload).unwrap();
        assert_static(&decoded);
        payload.fill(0xAA);
        drop(payload);
        prop_assert_eq!(decoded, msg);
    }

    /// The codec never panics on arbitrary payload bytes — it either
    /// parses or reports a protocol error.
    #[test]
    fn rpc_decode_never_panics(msg_type in 0u8..12, payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(msg_type, &payload);
    }

    /// The cache never stores more than its capacity, and a fill is always
    /// observable until evicted — regardless of how keys spread over
    /// shards.
    #[test]
    fn cache_respects_capacity(capacity in 1usize..32, keys in proptest::collection::vec(0u32..64, 1..128)) {
        let cache = PredictionCache::new(capacity);
        let model = ModelId::new("m", 1);
        for &k in &keys {
            let key = CacheKey::new(&model, &Arc::new(vec![k as f32]));
            cache.fill(key, Ok(Output::Class(k)));
            prop_assert!(cache.len() <= capacity);
            // The just-filled key is immediately fetchable with its value.
            prop_assert_eq!(cache.fetch(key), Some(Output::Class(k)));
        }
    }

    /// Key construction is deterministic, order-sensitive, and
    /// model-disambiguating: equal inputs agree, permuted or extended
    /// inputs and different models disagree.
    #[test]
    fn cache_key_fingerprints_are_sound(vals in proptest::collection::vec(-1e6f32..1e6, 1..64), version in 1u32..8) {
        let m = ModelId::new("m", version);
        let input: clipper::core::Input = Arc::new(vals.clone());
        prop_assert_eq!(CacheKey::new(&m, &input), CacheKey::new(&m, &input));
        prop_assert_ne!(
            CacheKey::new(&m, &input),
            CacheKey::new(&ModelId::new("m", version + 1), &input)
        );
        let mut extended = vals.clone();
        extended.push(0.0);
        prop_assert_ne!(
            CacheKey::new(&m, &input),
            CacheKey::new(&m, &Arc::new(extended))
        );
        if vals.len() > 1 && vals[0].to_bits() != vals[1].to_bits() {
            let mut swapped = vals.clone();
            swapped.swap(0, 1);
            prop_assert_ne!(
                CacheKey::new(&m, &input),
                CacheKey::new(&m, &Arc::new(swapped))
            );
        }
    }

    /// AIMD stays within [1, cap] under arbitrary latency feedback and
    /// never gets stuck at 0.
    #[test]
    fn aimd_stays_bounded(latencies in proptest::collection::vec(0u64..200_000, 1..300), cap in 1usize..2000) {
        let mut c = AimdController::new(Duration::from_millis(20), 2.0, 0.9, cap);
        for lat in latencies {
            let b = c.max_batch();
            prop_assert!(b >= 1 && b <= cap, "batch {b} out of [1,{cap}]");
            c.record(b, Duration::from_micros(lat));
        }
        prop_assert!(c.max_batch() >= 1);
    }

    /// The quantile controller also stays within bounds on arbitrary data.
    #[test]
    fn quantile_stays_bounded(latencies in proptest::collection::vec(0u64..200_000, 1..300)) {
        let mut c = QuantileController::new(Duration::from_millis(20), 1024);
        for lat in latencies {
            let b = c.max_batch();
            prop_assert!((1..=1024).contains(&b));
            c.record(b, Duration::from_micros(lat));
        }
    }

    /// Histogram quantiles are ordered and bracketed by min/max.
    #[test]
    fn histogram_quantiles_are_ordered(values in proptest::collection::vec(0u64..10_000_000, 1..500)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count(), values.len() as u64);
        prop_assert!(s.min() <= s.p50());
        prop_assert!(s.p50() <= s.p95());
        prop_assert!(s.p95() <= s.p99());
        prop_assert!(s.p99() <= s.max());
        prop_assert_eq!(s.max(), *values.iter().max().unwrap());
        prop_assert_eq!(s.min(), *values.iter().min().unwrap());
    }

    /// Exp3/Exp4 state stays a probability distribution (finite, positive,
    /// sums to 1) no matter what feedback arrives.
    #[test]
    fn policy_state_stays_normalizable(
        outcomes in proptest::collection::vec((0u32..4, 0u32..4, any::<bool>()), 1..200),
        eta in 0.01f64..3.0,
    ) {
        let ids: Vec<ModelId> = (0..4).map(|i| ModelId::new(&format!("m{i}"), 1)).collect();
        let exp3 = Exp3Policy::new(eta);
        let exp4 = Exp4Policy::new(eta);
        let mut s3 = exp3.init(&ids, 1);
        let mut s4 = exp4.init(&ids, 1);
        for (i, (pred, truth, _)) in outcomes.iter().enumerate() {
            let input: clipper::core::Input = Arc::new(vec![i as f32]);
            let mut preds = HashMap::new();
            for id in &ids {
                preds.insert(id.clone(), Output::Class(*pred));
            }
            let fb = Feedback::class(*truth);
            exp3.observe(&mut s3, &input, &fb, &preds);
            exp4.observe(&mut s4, &input, &fb, &preds);
            for s in [&s3, &s4] {
                let probs = s.probabilities();
                let sum: f64 = probs.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
                prop_assert!(probs.iter().all(|p| p.is_finite() && *p >= 0.0));
            }
        }
    }

    /// Weighted combine always returns a label some present model voted
    /// for, and confidence in [0, 1].
    #[test]
    fn combine_picks_a_voted_label(labels in proptest::collection::vec(0u32..6, 1..6)) {
        let ids: Vec<ModelId> = (0..labels.len()).map(|i| ModelId::new(&format!("m{i}"), 1)).collect();
        let state = PolicyState::uniform(&ids, 0);
        let mut preds = HashMap::new();
        for (id, &l) in ids.iter().zip(labels.iter()) {
            preds.insert(id.clone(), Output::Class(l));
        }
        let (out, conf) = weighted_combine(&state, &preds).unwrap();
        prop_assert!(labels.contains(&out.label()));
        prop_assert!((0.0..=1.0).contains(&conf));
        // Majority always yields confidence ≥ 1/n.
        prop_assert!(conf >= 1.0 / labels.len() as f64 - 1e-9);
    }

    /// Statestore versions increase monotonically and CAS only succeeds on
    /// the exact current version.
    #[test]
    fn statestore_cas_is_linearizable_per_key(ops in proptest::collection::vec((0u8..3, 0u8..4), 1..100)) {
        let store = StateStore::new();
        let mut shadow: HashMap<String, (Vec<u8>, u64)> = HashMap::new();
        for (op, key_id) in ops {
            let key = format!("k{key_id}");
            match op {
                0 => {
                    let v = store.set(&key, vec![op]);
                    if let Some((_, old)) = shadow.get(&key) {
                        prop_assert!(v > *old);
                    }
                    shadow.insert(key.clone(), (vec![op], v));
                }
                1 => {
                    let got = store.get_versioned(&key);
                    let want = shadow.get(&key).cloned();
                    prop_assert_eq!(got, want);
                }
                _ => {
                    if let Some((_, ver)) = shadow.get(&key).cloned() {
                        match store.cas(&key, ver, b"cas".to_vec()) {
                            CasOutcome::Stored(nv) => {
                                prop_assert_eq!(nv, ver + 1);
                                shadow.insert(key.clone(), (b"cas".to_vec(), nv));
                            }
                            other => prop_assert!(false, "cas failed: {other:?}"),
                        }
                        // Stale CAS must now conflict.
                        prop_assert!(matches!(
                            store.cas(&key, ver, b"stale".to_vec()),
                            CasOutcome::Conflict(_)
                        ));
                    } else {
                        prop_assert_eq!(store.cas(&key, 1, b"x".to_vec()), CasOutcome::Missing);
                    }
                }
            }
        }
    }

    /// Dataset generation is deterministic and labels stay in range for
    /// arbitrary spec shapes.
    #[test]
    fn dataset_generator_is_sound(classes in 2usize..20, features in 4usize..64, n in 1usize..100, seed in any::<u64>()) {
        let mut spec = clipper::ml::datasets::DatasetSpec::speech_like();
        spec.num_classes = classes;
        spec.num_features = features;
        let ds = spec.with_train_size(n).with_test_size(n).generate(seed);
        let ds2 = ds.spec.generate(seed);
        prop_assert_eq!(ds.train.len(), n);
        for (a, b) in ds.train.iter().zip(ds2.train.iter()) {
            prop_assert_eq!(&a.x, &b.x);
            prop_assert!((a.y as usize) < classes);
            prop_assert_eq!(a.x.len(), features);
        }
    }
}

/// Payload-size extremes, deterministically: a zero-byte payload and a
/// payload of exactly `MAX_PAYLOAD` round-trip through the buffered
/// reader; one byte over is rejected from the header alone.
#[test]
fn rpc_payload_size_boundaries() {
    // Zero-byte payload.
    let mut data = Vec::new();
    Message::Heartbeat.encode_into(7, &mut data);
    assert_eq!(data.len(), HEADER_LEN);
    let mut r = FrameReader::new(ChunkedReader::new(data, vec![1]));
    assert_eq!(block_on_ready(r.next()).unwrap(), (7, Message::Heartbeat));

    // Exactly MAX_PAYLOAD (64 MiB): accepted. Error payload = len(4) + text.
    let msg = Message::Error {
        message: "x".repeat(MAX_PAYLOAD - 4),
    };
    let mut data = Vec::with_capacity(HEADER_LEN + MAX_PAYLOAD);
    msg.encode_into(1, &mut data);
    assert_eq!(data.len(), HEADER_LEN + MAX_PAYLOAD);
    let mut r = FrameReader::new(ChunkedReader::new(data, vec![8 << 20]));
    let (id, got) = block_on_ready(r.next()).unwrap();
    assert_eq!(id, 1);
    assert_eq!(got, msg);

    // MAX_PAYLOAD + 1: rejected before any payload is read.
    let mut header = Vec::new();
    header.extend_from_slice(&MAGIC.to_le_bytes());
    header.push(VERSION);
    header.push(5); // Error
    header.extend_from_slice(&1u64.to_le_bytes());
    header.extend_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
    let mut r = FrameReader::new(ChunkedReader::new(header, vec![]));
    assert!(matches!(
        block_on_ready(r.next()),
        Err(RpcError::Protocol(_))
    ));
}
