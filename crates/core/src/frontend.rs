//! Application-facing HTTP frontend: the data plane (§3's "REST API")
//! plus the versioned `/api/v1/` control plane (§3, §6.3).
//!
//! A deliberately small HTTP/1.1 server on tokio — request line, headers,
//! `Content-Length` body — routed through a typed `Route` parser
//! (method + path segments, no string-prefix matching):
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /api/v1/apps/{app}/predict` | serve one prediction |
//! | `POST /api/v1/apps/{app}/update`  | feedback (§5) |
//! | `GET/POST /api/v1/apps`, `GET/PATCH/DELETE /api/v1/apps/{app}` | app lifecycle |
//! | `GET/POST /api/v1/models`, `GET /api/v1/models/{name}` | model catalog |
//! | `POST /api/v1/models/{name}/rollout` / `.../rollback` | version rollout |
//! | `GET /metrics`, `GET /health` | telemetry / liveness |
//!
//! Legacy `POST /apps/{app}/predict|update` and `GET /models` remain as
//! aliases onto the v1 handlers.
//!
//! Every error response is a serde-serialized [`ErrorBody`] carrying the
//! taxonomy's stable code and canonical status — an unknown app is a 404,
//! shed load a 429 with `"shed": true`, a timeout a 504 — and messages
//! containing quotes or backslashes stay valid JSON.
//!
//! Each accepted connection is served on its own spawned task, so a slow
//! or idle client never blocks the accept loop. Connections are
//! keep-alive; request heads are read in buffered chunks (scanning for
//! `\r\n\r\n`, with overread bytes carried into the body and the next
//! pipelined request), never byte-at-a-time.

use crate::api::{
    ApiError, AppPatch, AppSpec, AppView, ErrorBody, JsonOutput, ModelSpec, RolloutRequest,
};
use crate::clipper::Clipper;
use crate::types::{Feedback, ModelId};
use serde::{Deserialize, Serialize};
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// Maximum accepted request body (4 MiB).
const MAX_BODY: usize = 4 << 20;
/// Maximum accepted request head (64 KiB).
const MAX_HEAD: usize = 64 * 1024;
/// Socket read granularity.
const READ_CHUNK: usize = 8 * 1024;

/// A running HTTP frontend.
pub struct HttpFrontend {
    local_addr: SocketAddr,
    task: tokio::task::JoinHandle<()>,
}

impl HttpFrontend {
    /// Bind to `addr` and serve `clipper` in the background.
    pub async fn bind(addr: &str, clipper: Clipper) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let task = tokio::spawn(async move {
            // One spawned task per connection: a stalled request on one
            // connection never holds up accepting the next.
            while let Ok((conn, _)) = listener.accept().await {
                let clipper = clipper.clone();
                tokio::spawn(async move {
                    let _ = serve_connection(conn, clipper).await;
                });
            }
        });
        Ok(HttpFrontend { local_addr, task })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }
}

impl Drop for HttpFrontend {
    fn drop(&mut self) {
        self.task.abort();
    }
}

// ---------------------------------------------------------------------
// Data-plane request/response shapes
// ---------------------------------------------------------------------

#[derive(Deserialize)]
struct PredictRequest {
    input: Vec<f32>,
    #[serde(default)]
    context: Option<String>,
}

#[derive(Serialize)]
struct PredictResponse {
    output: JsonOutput,
    confidence: f64,
    models_used: usize,
    models_missing: usize,
    latency_us: u64,
}

impl PredictResponse {
    /// Serialize through the one-pass emitter (`json_emit`), skipping the
    /// serde `Content` tree on the per-request hot path. Byte-identical
    /// to `serde_json::to_string(self)` (enforced by test), including the
    /// failure mode: a non-finite confidence or score is an internal
    /// error, not invalid JSON.
    fn to_json(&self) -> Result<String, ApiError> {
        let mut e = crate::json_emit::Emitter::with_capacity(128);
        let emit = (|| {
            e.raw("{\"output\":");
            self.output.emit(&mut e)?;
            e.raw(",\"confidence\":");
            e.f64(self.confidence)?;
            e.raw(",\"models_used\":");
            e.u64(self.models_used as u64);
            e.raw(",\"models_missing\":");
            e.u64(self.models_missing as u64);
            e.raw(",\"latency_us\":");
            e.u64(self.latency_us);
            e.raw("}");
            Ok::<(), crate::json_emit::NonFiniteFloat>(())
        })();
        match emit {
            Ok(()) => Ok(e.into_string()),
            Err(err) => Err(ApiError::Internal(err.to_string())),
        }
    }
}

#[derive(Deserialize)]
struct UpdateRequest {
    input: Vec<f32>,
    #[serde(default)]
    context: Option<String>,
    #[serde(default)]
    label: Option<u32>,
    #[serde(default)]
    labels: Option<Vec<u32>>,
}

fn status_body(status: &str) -> String {
    let mut e = crate::json_emit::Emitter::with_capacity(24);
    e.raw("{\"status\":");
    e.string(status);
    e.raw("}");
    e.into_string()
}

// ---------------------------------------------------------------------
// Request reading
// ---------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    keep_alive: bool,
}

/// Buffered request reader: reads the socket in chunks, scans for the
/// head terminator, and carries overread bytes into the body and into the
/// next pipelined request on the connection.
struct RequestReader {
    rd: tokio::net::tcp::OwnedReadHalf,
    carry: Vec<u8>,
}

/// First index of `\r\n\r\n` at or after `from`.
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let start = from.min(buf.len());
    buf[start..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| start + p)
}

impl RequestReader {
    fn new(rd: tokio::net::tcp::OwnedReadHalf) -> Self {
        RequestReader {
            rd,
            carry: Vec::with_capacity(READ_CHUNK),
        }
    }

    async fn fill(&mut self) -> std::io::Result<usize> {
        let mut chunk = [0u8; READ_CHUNK];
        let n = self.rd.read(&mut chunk).await?;
        self.carry.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Read one request, or `None` on clean EOF between requests.
    async fn next(&mut self) -> std::io::Result<Option<Request>> {
        // Locate the end of the head, reading chunks as needed. `scanned`
        // remembers how far previous scans got (minus terminator overlap)
        // so each byte is examined once.
        let mut scanned = 0usize;
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.carry, scanned) {
                break pos + 4;
            }
            scanned = self.carry.len().saturating_sub(3);
            if self.carry.len() > MAX_HEAD {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "headers too large",
                ));
            }
            if self.fill().await? == 0 {
                if self.carry.is_empty() {
                    return Ok(None); // clean EOF between requests
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-head",
                ));
            }
        };

        // Borrowed parse: the head is only split and inspected, so no
        // owned copy of it is needed on the per-request path.
        let head = String::from_utf8_lossy(&self.carry[..head_end]);
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or_default().to_string();
        let path = parts.next().unwrap_or_default().to_string();

        let mut content_length = 0usize;
        let mut keep_alive = true;
        for line in lines {
            let lower = line.to_ascii_lowercase();
            if let Some(v) = lower.strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap_or(0);
            }
            if lower.starts_with("connection:") && lower.contains("close") {
                keep_alive = false;
            }
        }
        if content_length > MAX_BODY {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "body too large",
            ));
        }

        // The body may be partly (or fully) in the carry already.
        let total = head_end + content_length;
        while self.carry.len() < total {
            if self.fill().await? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
        }
        let body = self.carry[head_end..total].to_vec();
        // Whatever follows belongs to the next pipelined request.
        self.carry.drain(..total);
        Ok(Some(Request {
            method,
            path,
            body,
            keep_alive,
        }))
    }
}

async fn serve_connection(conn: TcpStream, clipper: Clipper) -> std::io::Result<()> {
    conn.set_nodelay(true)?;
    let (rd, mut wr) = conn.into_split();
    let mut reader = RequestReader::new(rd);
    loop {
        let req = match reader.next().await {
            Ok(Some(r)) => r,
            Ok(None) => return Ok(()),
            Err(e) => {
                let err = ApiError::BadRequest(e.to_string());
                let _ = write_response(&mut wr, 400, &ErrorBody::of(&err).to_json(), false).await;
                return Ok(());
            }
        };
        let keep_alive = req.keep_alive;
        let (status, body) = route(&clipper, req).await;
        write_response(&mut wr, status, &body, keep_alive).await?;
        if !keep_alive {
            return Ok(());
        }
    }
}

// ---------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------

/// HTTP methods the surface speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Method {
    Get,
    Post,
    Patch,
    Delete,
}

/// A typed route: method plus non-empty path segments (query stripped).
/// Replaces the old string-prefix matching — handlers match on exact
/// segment shapes.
struct Route<'a> {
    method: Method,
    segments: Vec<&'a str>,
}

impl<'a> Route<'a> {
    fn parse(method: &str, path: &'a str) -> Option<Route<'a>> {
        let method = match method {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PATCH" => Method::Patch,
            "DELETE" => Method::Delete,
            _ => return None,
        };
        let path = path.split('?').next().unwrap_or("");
        let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        Some(Route { method, segments })
    }
}

fn parse_json<T: serde::Deserialize>(body: &[u8]) -> Result<T, ApiError> {
    // No prefix here: `ApiError::BadRequest`'s Display already renders
    // "bad request: {msg}" (a doubled prefix reached the wire before).
    serde_json::from_slice(body).map_err(|e| ApiError::BadRequest(e.to_string()))
}

fn json_ok<T: Serialize>(status: u16, value: &T) -> Result<(u16, String), ApiError> {
    let body = serde_json::to_string(value).map_err(|e| ApiError::Internal(e.to_string()))?;
    Ok((status, body))
}

async fn route(clipper: &Clipper, req: Request) -> (u16, String) {
    let parsed = Route::parse(&req.method, &req.path);
    let result = match parsed {
        None => Err(ApiError::BadRequest(format!(
            "unsupported method {}",
            req.method
        ))),
        Some(r) => dispatch(clipper, r, &req.body).await,
    };
    match result {
        Ok(ok) => ok,
        Err(e) => (e.http_status(), ErrorBody::of(&e).to_json()),
    }
}

async fn dispatch(
    clipper: &Clipper,
    route: Route<'_>,
    body: &[u8],
) -> Result<(u16, String), ApiError> {
    use Method::*;
    match (route.method, route.segments.as_slice()) {
        (Get, ["health"]) => Ok((200, status_body("ok"))),
        (Get, ["metrics"]) => {
            let snap = clipper.registry().snapshot();
            json_ok(200, &snap)
        }

        // --- data plane (v1 + legacy aliases) ---
        (Post, ["api", "v1", "apps", app, "predict"]) | (Post, ["apps", app, "predict"]) => {
            handle_predict(clipper, app, body).await
        }
        (Post, ["api", "v1", "apps", app, "update"]) | (Post, ["apps", app, "update"]) => {
            handle_update(clipper, app, body).await
        }

        // --- app lifecycle ---
        (Get, ["api", "v1", "apps"]) => {
            let mut views: Vec<AppView> = clipper
                .apps()
                .iter()
                .filter_map(|name| clipper.app_config(name))
                .map(|cfg| AppView::from(&cfg))
                .collect();
            views.sort_by(|a, b| a.name.cmp(&b.name));
            json_ok(200, &views)
        }
        (Post, ["api", "v1", "apps"]) => {
            let spec: AppSpec = parse_json(body)?;
            if spec.name.is_empty() {
                return Err(ApiError::BadRequest("app name must not be empty".into()));
            }
            if spec.candidate_models.is_empty() {
                return Err(ApiError::BadRequest(
                    "candidate_models must not be empty".into(),
                ));
            }
            let cfg = spec.into_config();
            clipper.try_register_app(cfg.clone())?;
            json_ok(201, &AppView::from(&cfg))
        }
        (Get, ["api", "v1", "apps", app]) => {
            let cfg = clipper
                .app_config(app)
                .ok_or_else(|| ApiError::AppUnknown(app.to_string()))?;
            json_ok(200, &AppView::from(&cfg))
        }
        (Patch, ["api", "v1", "apps", app]) => {
            let patch: AppPatch = parse_json(body)?;
            let cfg = clipper.update_app(app, patch.into_update())?;
            json_ok(200, &AppView::from(&cfg))
        }
        (Delete, ["api", "v1", "apps", app]) => {
            clipper.unregister_app(app)?;
            Ok((200, status_body("deleted")))
        }

        // --- model lifecycle ---
        (Get, ["api", "v1", "models"]) | (Get, ["models"]) => json_ok(200, &clipper.model_views()),
        (Post, ["api", "v1", "models"]) => {
            let spec: ModelSpec = parse_json(body)?;
            if spec.name.is_empty() {
                return Err(ApiError::BadRequest("model name must not be empty".into()));
            }
            let id = ModelId::new(&spec.name, spec.version);
            // Create-only, like POST /api/v1/apps: re-registering an
            // existing version would silently no-op (the MAL keeps the
            // original config), so surface it as a conflict instead.
            // `add_model` reports insertion atomically — of two
            // concurrent creates exactly one gets the 201.
            if !clipper.add_model(id, Default::default()) {
                return Err(ApiError::VersionExists {
                    model: spec.name.clone(),
                    version: spec.version,
                });
            }
            let view = clipper
                .model_view(&spec.name)
                .ok_or_else(|| ApiError::Internal("model registration lost".into()))?;
            json_ok(201, &view)
        }
        (Get, ["api", "v1", "models", name]) => {
            let view = clipper
                .model_view(name)
                .ok_or_else(|| ApiError::ModelUnknown(name.to_string()))?;
            json_ok(200, &view)
        }
        (Post, ["api", "v1", "models", name, "rollout"]) => {
            let req: RolloutRequest = parse_json(body)?;
            let outcome = clipper.rollout_model(name, req.version).await?;
            json_ok(200, &outcome)
        }
        (Post, ["api", "v1", "models", name, "rollback"]) => {
            let outcome = clipper.rollback_model(name).await?;
            json_ok(200, &outcome)
        }

        _ => Err(ApiError::NotFound),
    }
}

/// Lift a data-plane failure into the API taxonomy, attaching the app
/// name to `AppUnknown` so 404 bodies say which app was missing.
fn data_plane_err(e: crate::batching::queue::PredictError, app: &str) -> ApiError {
    match e {
        crate::batching::queue::PredictError::AppUnknown => ApiError::AppUnknown(app.to_string()),
        other => ApiError::Predict(other),
    }
}

async fn handle_predict(
    clipper: &Clipper,
    app: &str,
    body: &[u8],
) -> Result<(u16, String), ApiError> {
    let parsed: PredictRequest = parse_json(body)?;
    let p = clipper
        .predict(app, parsed.context.as_deref(), Arc::new(parsed.input))
        .await
        .map_err(|e| data_plane_err(e, app))?;
    let resp = PredictResponse {
        output: p.output.into(),
        confidence: p.confidence,
        models_used: p.models_used,
        models_missing: p.models_missing,
        latency_us: p.latency.as_micros() as u64,
    };
    Ok((200, resp.to_json()?))
}

async fn handle_update(
    clipper: &Clipper,
    app: &str,
    body: &[u8],
) -> Result<(u16, String), ApiError> {
    let parsed: UpdateRequest = parse_json(body)?;
    let feedback = match (parsed.label, parsed.labels) {
        (Some(label), None) => Feedback::class(label),
        (None, Some(labels)) => Feedback::labels(labels),
        _ => {
            return Err(ApiError::BadRequest(
                "provide exactly one of label / labels".into(),
            ));
        }
    };
    clipper
        .feedback(
            app,
            parsed.context.as_deref(),
            Arc::new(parsed.input),
            feedback,
        )
        .await
        .map_err(|e| data_plane_err(e, app))?;
    Ok((200, status_body("ok")))
}

async fn write_response(
    wr: &mut tokio::net::tcp::OwnedWriteHalf,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    let conn = if keep_alive { "keep-alive" } else { "close" };
    let resp = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {conn}\r\n\r\n{body}",
        body.len()
    );
    wr.write_all(resp.as_bytes()).await?;
    wr.flush().await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::BatchConfig;
    use crate::types::{AppConfig, ModelId, PolicyKind};
    use clipper_rpc::message::{PredictReply, WireOutput};
    use clipper_rpc::transport::FnTransport;
    use std::time::Duration;

    async fn start_frontend() -> (HttpFrontend, Clipper) {
        let clipper = Clipper::builder().build();
        let m = ModelId::new("m", 1);
        clipper.add_model(m.clone(), BatchConfig::default());
        clipper
            .add_replica(
                &m,
                Arc::new(FnTransport::new(
                    "echo",
                    |inputs: &[clipper_rpc::Input]| {
                        Ok(PredictReply {
                            outputs: inputs
                                .iter()
                                .map(
                                    |x| WireOutput::Class(x.first().copied().unwrap_or(0.0) as u32),
                                )
                                .collect(),
                            queue_us: 0,
                            compute_us: 10,
                        })
                    },
                )),
            )
            .unwrap();
        clipper.register_app(
            AppConfig::new("digits", vec![m])
                .with_policy(PolicyKind::Static { model_index: 0 })
                .with_slo(Duration::from_millis(100)),
        );
        let frontend = HttpFrontend::bind("127.0.0.1:0", clipper.clone())
            .await
            .unwrap();
        (frontend, clipper)
    }

    async fn http_call(addr: SocketAddr, raw: &str) -> String {
        let mut conn = TcpStream::connect(addr).await.unwrap();
        conn.write_all(raw.as_bytes()).await.unwrap();
        conn.shutdown().await.unwrap();
        let mut buf = String::new();
        conn.read_to_string(&mut buf).await.unwrap();
        buf
    }

    fn request(method: &str, path: &str, body: &str) -> String {
        format!(
            "{method} {path} HTTP/1.1\r\nhost: x\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
    }

    fn post(path: &str, body: &str) -> String {
        request("POST", path, body)
    }

    #[test]
    fn predict_response_fast_path_is_byte_identical_to_serde() {
        // The hot-path emitter must produce exactly what the serde path
        // produced, for every output shape and float formatting case.
        let cases = [
            PredictResponse {
                output: JsonOutput::Class { label: 7 },
                confidence: 1.0,
                models_used: 3,
                models_missing: 0,
                latency_us: 812,
            },
            PredictResponse {
                output: JsonOutput::Scores {
                    scores: vec![0.125, 1.0 / 3.0, -2.0],
                },
                confidence: 0.6666666666666666,
                models_used: 1,
                models_missing: 2,
                latency_us: 0,
            },
            PredictResponse {
                output: JsonOutput::Labels {
                    labels: vec![9, 8, 7],
                },
                confidence: 0.0,
                models_used: 0,
                models_missing: 0,
                latency_us: u64::MAX,
            },
        ];
        for resp in &cases {
            assert_eq!(
                resp.to_json().unwrap(),
                serde_json::to_string(resp).unwrap(),
                "fast emitter diverged"
            );
        }
        // Non-finite confidence: same failure as the serde path (an
        // internal error), never invalid JSON on the wire.
        let bad = PredictResponse {
            output: JsonOutput::Class { label: 1 },
            confidence: f64::NAN,
            models_used: 1,
            models_missing: 0,
            latency_us: 1,
        };
        assert!(matches!(bad.to_json(), Err(ApiError::Internal(_))));
        assert!(serde_json::to_string(&bad).is_err());
    }

    #[test]
    fn status_body_fast_path_is_byte_identical_to_serde() {
        #[derive(Serialize)]
        struct StatusBody {
            status: String,
        }
        for status in ["ok", "deleted", "we\"ird\\status"] {
            assert_eq!(
                status_body(status),
                serde_json::to_string(&StatusBody {
                    status: status.to_string(),
                })
                .unwrap()
            );
        }
    }

    #[tokio::test]
    async fn health_endpoint_responds() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            "GET /health HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"ok\""));
    }

    #[tokio::test]
    async fn predict_over_http() {
        let (frontend, _clipper) = start_frontend().await;
        for path in ["/apps/digits/predict", "/api/v1/apps/digits/predict"] {
            let resp = http_call(
                frontend.local_addr(),
                &post(path, "{\"input\": [7.0, 1.0]}"),
            )
            .await;
            assert!(resp.starts_with("HTTP/1.1 200"), "{path}: {resp}");
            assert!(resp.contains("\"label\":7"), "{resp}");
            assert!(resp.contains("\"confidence\":1.0"), "{resp}");
        }
    }

    #[tokio::test]
    async fn update_over_http_records_feedback() {
        let (frontend, clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/digits/update", "{\"input\": [3.0], \"label\": 3}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let resp = http_call(
            frontend.local_addr(),
            &post(
                "/api/v1/apps/digits/update",
                "{\"input\": [4.0], \"label\": 4}",
            ),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let state = clipper.policy_state("digits", None).unwrap();
        assert_eq!(state.total, 2);
    }

    #[tokio::test]
    async fn bad_json_is_a_400_with_typed_body() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/digits/predict", "{not json"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("\"code\":\"bad_request\""), "{resp}");
        assert!(
            resp.contains("bad request: ") && !resp.contains("bad request: bad request:"),
            "exactly one taxonomy prefix on the message: {resp}"
        );
    }

    #[tokio::test]
    async fn unknown_app_predict_is_a_404_not_a_500() {
        // Satellite regression: predict/update on an unregistered app used
        // to surface as 500; the taxonomy maps AppUnknown to 404.
        let (frontend, _clipper) = start_frontend().await;
        for path in [
            "/apps/ghost/predict",
            "/api/v1/apps/ghost/predict",
            "/apps/ghost/update",
        ] {
            let body = if path.ends_with("update") {
                "{\"input\": [1.0], \"label\": 1}"
            } else {
                "{\"input\": [1.0]}"
            };
            let resp = http_call(frontend.local_addr(), &post(path, body)).await;
            assert!(resp.starts_with("HTTP/1.1 404"), "{path}: {resp}");
            assert!(resp.contains("\"code\":\"app_unknown\""), "{resp}");
        }
    }

    #[tokio::test]
    async fn error_bodies_with_quotes_are_valid_json() {
        // Satellite regression: format!-built error bodies emitted broken
        // JSON when the message contained a quote.
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/we\"ird\\app/predict", "{\"input\": [1.0]}"),
        )
        .await;
        let body = resp.split("\r\n\r\n").nth(1).unwrap_or("");
        let parsed: serde_json::Value =
            serde_json::from_str(body).expect("error body must be valid JSON");
        assert_eq!(parsed["error"]["code"], "app_unknown");
        assert!(
            parsed["error"]["message"]
                .as_str()
                .is_some_and(|m| m.contains("we\"ird\\app")),
            "message carries the raw name: {body}"
        );
    }

    #[tokio::test]
    async fn unknown_route_is_404() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            "GET /nope HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        assert!(resp.contains("\"code\":\"not_found\""), "{resp}");
    }

    #[tokio::test]
    async fn models_endpoint_reports_catalog_and_scheduler_state() {
        let (frontend, _clipper) = start_frontend().await;
        for path in ["/models", "/api/v1/models"] {
            let resp = http_call(
                frontend.local_addr(),
                &format!("GET {path} HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n"),
            )
            .await;
            assert!(resp.starts_with("HTTP/1.1 200"), "{path}: {resp}");
            assert!(resp.contains("\"name\":\"m\""), "{resp}");
            assert!(resp.contains("\"current_version\":1"), "{resp}");
            assert!(resp.contains("\"queue_depth\""), "{resp}");
            assert!(resp.contains("m:v1:0"), "{resp}");
        }
    }

    #[tokio::test]
    async fn app_crud_over_http() {
        let (frontend, _clipper) = start_frontend().await;
        let addr = frontend.local_addr();
        // Create.
        let resp = http_call(
            addr,
            &post(
                "/api/v1/apps",
                "{\"name\":\"crud\",\"candidate_models\":[{\"name\":\"m\",\"version\":1}],\
                 \"slo_ms\":30}",
            ),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");
        // Duplicate create → 409.
        let resp = http_call(
            addr,
            &post(
                "/api/v1/apps",
                "{\"name\":\"crud\",\"candidate_models\":[{\"name\":\"m\",\"version\":1}]}",
            ),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 409"), "{resp}");
        assert!(resp.contains("\"code\":\"app_exists\""), "{resp}");
        // Read back.
        let resp = http_call(
            addr,
            "GET /api/v1/apps/crud HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"slo_ms\":30"), "{resp}");
        // Live-update the SLO.
        let resp = http_call(
            addr,
            &request("PATCH", "/api/v1/apps/crud", "{\"slo_ms\":99}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"slo_ms\":99"), "{resp}");
        // The new app serves predictions.
        let resp = http_call(
            addr,
            &post("/api/v1/apps/crud/predict", "{\"input\":[5.0]}"),
        )
        .await;
        assert!(resp.contains("\"label\":5"), "{resp}");
        // List contains both apps.
        let resp = http_call(
            addr,
            "GET /api/v1/apps HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(
            resp.contains("\"crud\"") && resp.contains("\"digits\""),
            "{resp}"
        );
        // Delete; reads and predicts then 404.
        let resp = http_call(addr, &request("DELETE", "/api/v1/apps/crud", "")).await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let resp = http_call(
            addr,
            "GET /api/v1/apps/crud HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        let resp = http_call(
            addr,
            &post("/api/v1/apps/crud/predict", "{\"input\":[1.0]}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
    }

    #[tokio::test]
    async fn model_registration_and_rollout_over_http() {
        let (frontend, clipper) = start_frontend().await;
        let addr = frontend.local_addr();
        // Register version 2 over HTTP, then attach a replica in-process
        // (replicas are transports; they connect via RPC, not JSON).
        let resp = http_call(
            addr,
            &post("/api/v1/models", "{\"name\":\"m\",\"version\":2}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 201"), "{resp}");
        // Re-registering the same version is a conflict, not a silent
        // 201 no-op.
        let resp = http_call(
            addr,
            &post("/api/v1/models", "{\"name\":\"m\",\"version\":2}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 409"), "{resp}");
        assert!(resp.contains("\"code\":\"version_exists\""), "{resp}");
        // Rollout before any replica attaches → 409.
        let resp = http_call(addr, &post("/api/v1/models/m/rollout", "{\"version\":2}")).await;
        assert!(resp.starts_with("HTTP/1.1 409"), "{resp}");
        assert!(resp.contains("no_replicas_for_version"), "{resp}");
        clipper
            .add_replica(
                &ModelId::new("m", 2),
                Arc::new(FnTransport::new("v2", |inputs: &[clipper_rpc::Input]| {
                    Ok(PredictReply {
                        outputs: vec![WireOutput::Class(42); inputs.len()],
                        queue_us: 0,
                        compute_us: 5,
                    })
                })),
            )
            .unwrap();
        let resp = http_call(addr, &post("/api/v1/models/m/rollout", "{\"version\":2}")).await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("\"to_version\":2"), "{resp}");
        assert!(resp.contains("digits"), "app repointed: {resp}");
        // Predicts now come from v2.
        let resp = http_call(addr, &post("/apps/digits/predict", "{\"input\":[9.0]}")).await;
        assert!(resp.contains("\"label\":42"), "{resp}");
        // Rollback over HTTP restores v1 (echo transport).
        let resp = http_call(addr, &post("/api/v1/models/m/rollback", "")).await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        let resp = http_call(addr, &post("/apps/digits/predict", "{\"input\":[8.0]}")).await;
        assert!(resp.contains("\"label\":8"), "{resp}");
        // Unknown model rollout → 404.
        let resp = http_call(
            addr,
            &post("/api/v1/models/ghost/rollout", "{\"version\":1}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
    }

    #[tokio::test]
    async fn metrics_endpoint_returns_json() {
        let (frontend, _clipper) = start_frontend().await;
        // Generate some traffic first.
        http_call(
            frontend.local_addr(),
            &post("/apps/digits/predict", "{\"input\": [1.0]}"),
        )
        .await;
        let resp = http_call(
            frontend.local_addr(),
            "GET /metrics HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n",
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("clipper/predictions"), "{resp}");
    }

    #[tokio::test]
    async fn keep_alive_serves_multiple_requests() {
        let (frontend, _clipper) = start_frontend().await;
        let mut conn = TcpStream::connect(frontend.local_addr()).await.unwrap();
        for i in 0..3 {
            let body = format!("{{\"input\": [{i}.0]}}");
            let req = format!(
                "POST /apps/digits/predict HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            conn.write_all(req.as_bytes()).await.unwrap();
            let mut buf = vec![0u8; 4096];
            let n = conn.read(&mut buf).await.unwrap();
            let resp = String::from_utf8_lossy(&buf[..n]);
            assert!(resp.contains(&format!("\"label\":{i}")), "req {i}: {resp}");
        }
    }

    #[tokio::test]
    async fn pipelined_requests_are_carried_across_reads() {
        // Two requests written in one burst: the buffered reader must
        // carve the first body out of the overread and keep the remainder
        // for the second request.
        let (frontend, _clipper) = start_frontend().await;
        let mut conn = TcpStream::connect(frontend.local_addr()).await.unwrap();
        let b1 = "{\"input\": [1.0]}";
        let b2 = "{\"input\": [2.0]}";
        let burst = format!(
            "POST /apps/digits/predict HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\n\r\n{b1}\
             POST /apps/digits/predict HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{b2}",
            b1.len(),
            b2.len()
        );
        conn.write_all(burst.as_bytes()).await.unwrap();
        conn.shutdown().await.unwrap();
        let mut all = String::new();
        conn.read_to_string(&mut all).await.unwrap();
        assert!(all.contains("\"label\":1"), "{all}");
        assert!(all.contains("\"label\":2"), "{all}");
    }

    #[tokio::test]
    async fn update_requires_exactly_one_feedback_kind() {
        let (frontend, _clipper) = start_frontend().await;
        let resp = http_call(
            frontend.local_addr(),
            &post("/apps/digits/update", "{\"input\": [1.0]}"),
        )
        .await;
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        assert!(resp.contains("\"code\":\"bad_request\""), "{resp}");
    }
}
