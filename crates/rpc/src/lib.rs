//! Lightweight RPC system connecting Clipper to model containers (§4.4).
//!
//! The paper ships batches of queries to framework-specific model
//! containers over a "lightweight RPC system" whose overhead is low enough
//! that a No-Op container round-trip costs microseconds (Figure 3d). This
//! crate is that system, built from scratch:
//!
//! - [`message`]: the wire messages — container registration, batch
//!   prediction requests/replies, heartbeats — with a hand-rolled binary
//!   codec on [`bytes`] (length-prefixed frames, little-endian fields);
//! - [`codec`]: frame reader/writer over any `AsyncRead`/`AsyncWrite`;
//! - [`server`]: the Clipper side — accepts container connections and
//!   yields a multiplexed [`transport::BatchTransport`] handle per
//!   registered container;
//! - [`client`]: the container side — connect, register, serve batches;
//! - [`transport`]: the `BatchTransport` abstraction the model abstraction
//!   layer dispatches through (TCP handles, in-process containers, and
//!   fault-injection wrappers all implement it);
//! - [`faulty`]: fault injection (added latency, drops) for straggler and
//!   robustness experiments, in the spirit of smoltcp's `--drop-chance`.

pub mod client;
pub mod codec;
pub mod error;
pub mod faulty;
pub mod message;
pub mod server;
pub mod transport;

pub use client::{serve_container, BatchHandler, ContainerClientConfig};
pub use error::RpcError;
pub use message::{Message, PredictReply, WireOutput};
pub use server::{ContainerInfo, RpcServer, TcpContainerHandle};
pub use transport::{as_inputs, BatchTransport, BoxFuture, Input};
