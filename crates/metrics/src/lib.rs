//! Metrics substrate for Clipper.
//!
//! Every quantitative claim in the Clipper paper — P99 latencies, sustained
//! throughput, batch sizes, cache hit rates — is produced by this kind of
//! telemetry. This crate provides the building blocks used throughout the
//! workspace:
//!
//! - [`Counter`] / [`Gauge`]: lock-free monotonic and instantaneous values;
//! - [`Meter`]: exponentially-weighted throughput rates (1-second tick);
//! - [`Histogram`]: log-bucketed latency histogram with quantile queries
//!   (the shape used by HDR-style recorders, built from scratch);
//! - [`Registry`]: a named collection of metrics that can be snapshotted
//!   for reports and the HTTP `/metrics` endpoint.
//!
//! All types are cheap to clone (`Arc` inside) and safe to update from many
//! threads or tasks concurrently.

pub mod counter;
pub mod histogram;
pub mod meter;
pub mod registry;
pub mod snapshot;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot};
pub use meter::Meter;
pub use registry::Registry;
pub use snapshot::{MetricValue, RegistrySnapshot};

use std::time::Duration;

/// Convert a [`Duration`] to whole microseconds, saturating at `u64::MAX`.
///
/// Clipper reports latencies in microseconds throughout the paper
/// (e.g. Figure 3/4 axes), so the histogram API standardizes on µs.
pub fn duration_us(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_us_converts() {
        assert_eq!(duration_us(Duration::from_millis(20)), 20_000);
        assert_eq!(duration_us(Duration::from_secs(1)), 1_000_000);
        assert_eq!(duration_us(Duration::ZERO), 0);
    }

    #[test]
    fn duration_us_saturates() {
        assert_eq!(duration_us(Duration::MAX), u64::MAX);
    }
}
