//! End-to-end integration tests over the fully networked stack: HTTP
//! frontend → Clipper core → TCP RPC → model containers, with selection
//! state in a TCP statestore — every process boundary from the paper's
//! architecture diagram on real sockets.

use clipper::containers::{
    spawn_tcp_container, ContainerConfig, ContainerLogic, ModelContainer, TimingModel,
};
use clipper::core::{AppConfig, Clipper, HttpFrontend, ModelId, PolicyKind};
use clipper::ml::datasets::DatasetSpec;
use clipper::ml::models::{LinearSvm, LinearSvmConfig};
use clipper::rpc::server::RpcServer;
use clipper::statestore::{StateStore, StateStoreClient, StateStoreServer};
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

async fn networked_stack() -> (Clipper, HttpFrontend, StateStoreServer, Vec<ModelId>) {
    let store = Arc::new(StateStore::new());
    let store_server = StateStoreServer::bind("127.0.0.1:0", store.clone())
        .await
        .unwrap();
    let clipper = Clipper::builder().statestore(store).build();
    let mut rpc = RpcServer::bind("127.0.0.1:0").await.unwrap();

    let dataset = DatasetSpec::mnist_like()
        .with_train_size(300)
        .with_test_size(50)
        .with_difficulty(0.3)
        .generate(5);
    for (i, name) in ["svm-a", "svm-b"].iter().enumerate() {
        let model = Arc::new(LinearSvm::train(
            &dataset,
            &LinearSvmConfig::default(),
            i as u64,
        ));
        let container = ModelContainer::new(ContainerConfig {
            name: format!("{name}:0"),
            model_name: name.to_string(),
            model_version: 1,
            logic: ContainerLogic::Classifier(model),
            timing: TimingModel::Measured,
            seed: i as u64,
        });
        spawn_tcp_container(rpc.local_addr(), container);
    }
    let mut ids = Vec::new();
    for _ in 0..2 {
        let (info, handle) = rpc.next_container().await.unwrap();
        let id = ModelId::new(&info.model_name, info.model_version);
        clipper.add_model(id.clone(), Default::default());
        clipper.add_replica(&id, Arc::new(handle)).unwrap();
        ids.push(id);
    }
    ids.sort();
    clipper.register_app(
        AppConfig::new("digits", ids.clone())
            .with_policy(PolicyKind::Exp4 { eta: 0.2 })
            .with_slo(Duration::from_millis(100)),
    );
    let frontend = HttpFrontend::bind("127.0.0.1:0", clipper.clone())
        .await
        .unwrap();
    (clipper, frontend, store_server, ids)
}

async fn http_post(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
    let mut conn = TcpStream::connect(addr).await.unwrap();
    let req = format!(
        "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(req.as_bytes()).await.unwrap();
    conn.shutdown().await.unwrap();
    let mut out = String::new();
    conn.read_to_string(&mut out).await.unwrap();
    out
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn predict_and_feedback_over_every_wire() {
    let (clipper, frontend, store_server, _ids) = networked_stack().await;

    // Predict over HTTP (which crosses the TCP RPC to containers).
    let input: Vec<f32> = vec![0.25; 784];
    let body = format!(
        "{{\"input\": {}, \"context\": \"user-7\"}}",
        serde_json::to_string(&input).unwrap()
    );
    let resp = http_post(frontend.local_addr(), "/apps/digits/predict", &body).await;
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("\"confidence\""), "{resp}");

    // Feedback over HTTP.
    let body = format!(
        "{{\"input\": {}, \"context\": \"user-7\", \"label\": 3}}",
        serde_json::to_string(&input).unwrap()
    );
    let resp = http_post(frontend.local_addr(), "/apps/digits/update", &body).await;
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");

    // The contextual state is now visible through the statestore's own
    // network protocol.
    let ss = StateStoreClient::connect(store_server.local_addr())
        .await
        .unwrap();
    let state_bytes = ss
        .get("selstate/digits/user-7")
        .await
        .unwrap()
        .expect("state stored");
    let state: serde_json::Value = serde_json::from_slice(&state_bytes).unwrap();
    assert_eq!(state["total"], 1);

    // And through the native API.
    let state = clipper.policy_state("digits", Some("user-7")).unwrap();
    assert_eq!(state.total, 1);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn accuracy_flows_through_the_whole_stack() {
    let (clipper, _frontend, _store, _ids) = networked_stack().await;
    // The containers host real trained models; the ensemble should get
    // most of an easy holdout right, end to end over TCP.
    let dataset = DatasetSpec::mnist_like()
        .with_train_size(300)
        .with_test_size(50)
        .with_difficulty(0.3)
        .generate(5);
    let mut correct = 0;
    for ex in dataset.test.iter().take(30) {
        let p = clipper
            .predict("digits", None, Arc::new(ex.x.clone()))
            .await
            .unwrap();
        if p.output.label() == ex.y {
            correct += 1;
        }
    }
    assert!(correct >= 25, "end-to-end accuracy {correct}/30");
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn container_crash_degrades_gracefully_and_metrics_expose_it() {
    let store = Arc::new(StateStore::new());
    let clipper = Clipper::builder().statestore(store).build();
    let mut rpc = RpcServer::bind("127.0.0.1:0").await.unwrap();

    let container = ModelContainer::new(ContainerConfig {
        name: "only:0".into(),
        model_name: "only".into(),
        model_version: 1,
        logic: ContainerLogic::Fixed(clipper::rpc::message::WireOutput::Class(4)),
        timing: TimingModel::Measured,
        seed: 0,
    });
    let task = spawn_tcp_container(rpc.local_addr(), container);
    let (info, handle) = rpc.next_container().await.unwrap();
    let id = ModelId::new(&info.model_name, 1);
    clipper.add_model(id.clone(), Default::default());
    clipper.add_replica(&id, Arc::new(handle)).unwrap();
    clipper.register_app(
        AppConfig::new("app", vec![id])
            .with_policy(PolicyKind::MajorityVote)
            .with_slo(Duration::from_millis(50))
            .with_default_output(clipper::core::Output::Class(99)),
    );

    // Healthy path.
    let p = clipper
        .predict("app", None, Arc::new(vec![1.0]))
        .await
        .unwrap();
    assert_eq!(p.output.label(), 4);

    // Kill the container; Clipper must keep answering rather than failing
    // or hanging. Because the model already produced outputs, §5.2.2's
    // substitution answers with its *running default* (the modal label 4),
    // flagged via models_used = 0.
    task.abort();
    tokio::time::sleep(Duration::from_millis(50)).await;
    let p = clipper
        .predict("app", None, Arc::new(vec![2.0]))
        .await
        .unwrap();
    assert_eq!(p.output.label(), 4, "running-default substitution");
    assert_eq!(p.models_used, 0);
    assert_eq!(p.models_missing, 1);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn app_default_when_model_never_answered() {
    // A model that dies before producing any output has no running
    // default; the application's sensible default action applies.
    let clipper = Clipper::builder().build();
    let id = ModelId::new("never", 1);
    clipper.add_model(id.clone(), Default::default());
    let dead = Arc::new(clipper::rpc::faulty::FaultyTransport::new(
        {
            let c = ModelContainer::new(ContainerConfig {
                name: "never:0".into(),
                model_name: "never".into(),
                model_version: 1,
                logic: ContainerLogic::Fixed(clipper::rpc::message::WireOutput::Class(4)),
                timing: TimingModel::Measured,
                seed: 0,
            });
            clipper::containers::LocalContainerTransport::new(c)
        },
        clipper::rpc::faulty::FaultConfig {
            drop_prob: 1.0,
            ..Default::default()
        },
        1,
    ));
    clipper.add_replica(&id, dead).unwrap();
    clipper.register_app(
        AppConfig::new("app", vec![id])
            .with_policy(PolicyKind::MajorityVote)
            .with_slo(Duration::from_millis(30))
            .with_default_output(clipper::core::Output::Class(99)),
    );
    let p = clipper
        .predict("app", None, Arc::new(vec![1.0]))
        .await
        .unwrap();
    assert_eq!(
        p.output.label(),
        99,
        "app default when nothing ever arrived"
    );
    assert_eq!(p.confidence, 0.0);
}
