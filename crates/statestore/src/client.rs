//! Async client for the statestore protocol.

use crate::resp::{encode_command, RespValue};
use crate::store::CasOutcome;
use bytes::BytesMut;
use std::net::SocketAddr;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;
use tokio::sync::Mutex;

/// Largest encode buffer kept alive between calls; one oversized SET
/// shouldn't pin its value's worth of memory on the connection forever.
const RETAINED_BUF: usize = 64 * 1024;

/// A connection to a [`crate::StateStoreServer`]. Requests are serialized
/// per connection (clone-free; wrap in `Arc` and share, or open several).
/// Both wire buffers are retained across calls, so a steady-state request
/// allocates nothing on the encode side.
pub struct StateStoreClient {
    conn: Mutex<(TcpStream, BytesMut, BytesMut)>,
}

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// Server replied with an error we don't model.
    Server(String),
    /// Protocol violation.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl StateStoreClient {
    /// Connect to a server.
    pub async fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).await?;
        stream.set_nodelay(true)?;
        Ok(StateStoreClient {
            conn: Mutex::new((
                stream,
                BytesMut::with_capacity(4096),
                BytesMut::with_capacity(4096),
            )),
        })
    }

    async fn call(&self, parts: &[&[u8]]) -> Result<RespValue, ClientError> {
        let mut guard = self.conn.lock().await;
        let (stream, inbuf, outbuf) = &mut *guard;
        encode_command(outbuf, parts);
        stream.write_all(outbuf).await?;
        if outbuf.len() > RETAINED_BUF {
            *outbuf = BytesMut::with_capacity(4096);
        } else {
            outbuf.clear();
        }
        loop {
            match RespValue::parse(inbuf).map_err(ClientError::Protocol)? {
                Some(v) => return Ok(v),
                None => {
                    let n = stream.read_buf(inbuf).await?;
                    if n == 0 {
                        return Err(ClientError::Protocol("server closed".into()));
                    }
                }
            }
        }
    }

    /// `PING` → server liveness.
    pub async fn ping(&self) -> Result<(), ClientError> {
        match self.call(&[b"PING"]).await? {
            RespValue::Simple(s) if s == "PONG" => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `GET key`.
    pub async fn get(&self, key: &str) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(&[b"GET", key.as_bytes()]).await? {
            RespValue::Bulk(v) => Ok(Some(v)),
            RespValue::Null => Ok(None),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `GETV key` → value and version.
    pub async fn get_versioned(&self, key: &str) -> Result<Option<(Vec<u8>, u64)>, ClientError> {
        match self.call(&[b"GETV", key.as_bytes()]).await? {
            RespValue::Array(items) => match items.as_slice() {
                [RespValue::Bulk(v), RespValue::Integer(ver)] => Ok(Some((v.clone(), *ver as u64))),
                other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
            },
            RespValue::Null => Ok(None),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `SET key value` → new version.
    pub async fn set(&self, key: &str, value: Vec<u8>) -> Result<u64, ClientError> {
        match self.call(&[b"SET", key.as_bytes(), &value]).await? {
            RespValue::Integer(v) => Ok(v as u64),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `CAS key version value`.
    pub async fn cas(
        &self,
        key: &str,
        expected_version: u64,
        value: Vec<u8>,
    ) -> Result<CasOutcome, ClientError> {
        let mut tmp = [0u8; 20];
        let ver = crate::resp::u64_digits(&mut tmp, expected_version);
        let reply = self.call(&[b"CAS", key.as_bytes(), ver, &value]).await?;
        match reply {
            RespValue::Integer(v) => Ok(CasOutcome::Stored(v as u64)),
            RespValue::Error(e) if e.starts_with("CONFLICT") => {
                let ver = e
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ClientError::Protocol(format!("bad conflict: {e}")))?;
                Ok(CasOutcome::Conflict(ver))
            }
            RespValue::Error(e) if e == "MISSING" => Ok(CasOutcome::Missing),
            RespValue::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `DEL key` → whether it existed.
    pub async fn del(&self, key: &str) -> Result<bool, ClientError> {
        match self.call(&[b"DEL", key.as_bytes()]).await? {
            RespValue::Integer(n) => Ok(n == 1),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `DBSIZE` → live key count.
    pub async fn dbsize(&self) -> Result<usize, ClientError> {
        match self.call(&[b"DBSIZE"]).await? {
            RespValue::Integer(n) => Ok(n as usize),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `KEYS prefix` → sorted live keys under the prefix (config-plane
    /// scan used for registry rehydration).
    pub async fn keys(&self, prefix: &str) -> Result<Vec<String>, ClientError> {
        match self.call(&[b"KEYS", prefix.as_bytes()]).await? {
            RespValue::Array(items) => items
                .into_iter()
                .map(|v| match v {
                    RespValue::Bulk(b) => Ok(String::from_utf8_lossy(&b).into_owned()),
                    other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
                })
                .collect(),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::StateStoreServer;
    use crate::store::StateStore;
    use std::sync::Arc;

    async fn pair() -> (StateStoreServer, StateStoreClient) {
        let server = StateStoreServer::bind("127.0.0.1:0", Arc::new(StateStore::new()))
            .await
            .unwrap();
        let client = StateStoreClient::connect(server.local_addr())
            .await
            .unwrap();
        (server, client)
    }

    #[tokio::test]
    async fn ping_get_set_roundtrip() {
        let (_server, client) = pair().await;
        client.ping().await.unwrap();
        assert!(client.get("k").await.unwrap().is_none());
        let v = client.set("k", b"value".to_vec()).await.unwrap();
        assert_eq!(v, 1);
        assert_eq!(client.get("k").await.unwrap().unwrap(), b"value");
        assert_eq!(client.dbsize().await.unwrap(), 1);
        assert_eq!(client.keys("k").await.unwrap(), vec!["k".to_string()]);
        assert!(client.keys("nope").await.unwrap().is_empty());
        assert!(client.del("k").await.unwrap());
    }

    #[tokio::test]
    async fn cas_over_the_wire() {
        let (_server, client) = pair().await;
        let v1 = client.set("s", b"a".to_vec()).await.unwrap();
        let outcome = client.cas("s", v1, b"b".to_vec()).await.unwrap();
        assert_eq!(outcome, CasOutcome::Stored(v1 + 1));
        let stale = client.cas("s", v1, b"c".to_vec()).await.unwrap();
        assert_eq!(stale, CasOutcome::Conflict(v1 + 1));
        let missing = client.cas("nope", 1, b"x".to_vec()).await.unwrap();
        assert_eq!(missing, CasOutcome::Missing);
    }

    #[tokio::test]
    async fn get_versioned_over_the_wire() {
        let (_server, client) = pair().await;
        client.set("k", b"v1".to_vec()).await.unwrap();
        client.set("k", b"v2".to_vec()).await.unwrap();
        let (val, ver) = client.get_versioned("k").await.unwrap().unwrap();
        assert_eq!(val, b"v2");
        assert_eq!(ver, 2);
        assert!(client.get_versioned("absent").await.unwrap().is_none());
    }

    #[tokio::test]
    async fn many_clients_share_one_server() {
        let server = StateStoreServer::bind("127.0.0.1:0", Arc::new(StateStore::new()))
            .await
            .unwrap();
        let addr = server.local_addr();
        let mut tasks = Vec::new();
        for i in 0..8 {
            tasks.push(tokio::spawn(async move {
                let c = StateStoreClient::connect(addr).await.unwrap();
                c.set(&format!("user:{i}"), vec![i as u8]).await.unwrap();
                c.get(&format!("user:{i}")).await.unwrap().unwrap()
            }));
        }
        for (i, t) in tasks.into_iter().enumerate() {
            assert_eq!(t.await.unwrap(), vec![i as u8]);
        }
        assert_eq!(server.store().len(), 8);
    }
}
