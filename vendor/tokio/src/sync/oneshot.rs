//! One-shot channel: a single value handed from one task to another.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

struct Inner<T> {
    value: Option<T>,
    tx_alive: bool,
    rx_alive: bool,
    rx_waker: Option<Waker>,
}

/// Sending half.
pub struct Sender<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

/// Receiving half; a future yielding `Result<T, RecvError>`.
pub struct Receiver<T> {
    inner: Arc<Mutex<Inner<T>>>,
}

/// Error: the sender was dropped without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError(());

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "oneshot sender dropped without sending")
    }
}

impl std::error::Error for RecvError {}

/// Error for [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing sent yet.
    Empty,
    /// Sender dropped without sending.
    Closed,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "oneshot channel empty"),
            TryRecvError::Closed => write!(f, "oneshot channel closed"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Create a oneshot channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Mutex::new(Inner {
        value: None,
        tx_alive: true,
        rx_alive: true,
        rx_waker: None,
    }));
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Send the value; returns it back if the receiver is gone.
    pub fn send(self, value: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        if !inner.rx_alive {
            return Err(value);
        }
        inner.value = Some(value);
        if let Some(w) = inner.rx_waker.take() {
            drop(inner);
            w.wake();
        }
        Ok(())
    }

    /// Whether the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.inner.lock().unwrap().rx_alive
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.lock().unwrap();
        inner.tx_alive = false;
        if let Some(w) = inner.rx_waker.take() {
            drop(inner);
            w.wake();
        }
    }
}

impl<T> Receiver<T> {
    /// Non-blocking poll for the value.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(v) = inner.value.take() {
            return Ok(v);
        }
        if inner.tx_alive {
            Err(TryRecvError::Empty)
        } else {
            Err(TryRecvError::Closed)
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner.lock().unwrap().rx_alive = false;
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(v) = inner.value.take() {
            return Poll::Ready(Ok(v));
        }
        if !inner.tx_alive {
            return Poll::Ready(Err(RecvError(())));
        }
        inner.rx_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}
