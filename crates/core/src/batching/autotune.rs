//! The autotuning batch controller: a learned ceiling over AIMD.
//!
//! Where [`AimdController`](super::AimdController) *probes* for the
//! latency knee (§4.3.1), this controller *computes* it from the
//! replica's online [`LatencyModel`](super::LatencyModel): the ceiling is
//! continuously re-derived as `b_max = largest b with α + β·b ≤
//! SLO − headroom`. A slow replica in a heterogeneous fleet therefore
//! gets its own, smaller ceiling instead of the fleet-wide knob — the
//! §4.4.1 gap this closes.
//!
//! Until the model is established (no prior, not enough batch-size
//! spread), the embedded AIMD controller governs, so cold start behaves
//! exactly like the paper's default.

use super::{AimdController, BatchController, LatencyModel};
use std::sync::Arc;
use std::time::Duration;

/// Fraction of the SLO reserved as headroom by default: the ceiling
/// targets `0.9 × SLO` so queueing and RPC jitter don't turn every
/// full batch into a violation.
pub const DEFAULT_HEADROOM: f64 = 0.1;

/// Model-driven batch ceiling with AIMD cold-start fallback.
pub struct AutotuneController {
    aimd: AimdController,
    model: Arc<LatencyModel>,
    /// `SLO − headroom`: the budget the curve is inverted against.
    budget: Duration,
    cap: usize,
}

impl AutotuneController {
    /// Create a controller targeting `slo` with `headroom` (a fraction
    /// of the SLO, clamped to `[0, 0.9]`) held back, reading — not
    /// owning — the replica's shared latency model.
    pub fn new(slo: Duration, headroom: f64, model: Arc<LatencyModel>, cap: usize) -> Self {
        let headroom = if headroom.is_finite() {
            headroom.clamp(0.0, 0.9)
        } else {
            DEFAULT_HEADROOM
        };
        let budget = slo.mul_f64(1.0 - headroom);
        AutotuneController {
            aimd: AimdController::with_defaults(slo),
            model,
            budget,
            cap: cap.max(1),
        }
    }

    /// The learned ceiling, if the model is established.
    pub fn learned_max_batch(&self) -> Option<usize> {
        self.model
            .max_batch_for(self.budget)
            .map(|b| b.clamp(1, self.cap))
    }
}

impl BatchController for AutotuneController {
    fn max_batch(&self) -> usize {
        match self.learned_max_batch() {
            Some(b) => b,
            None => self.aimd.max_batch().min(self.cap),
        }
    }

    fn record(&mut self, batch_size: usize, latency: Duration) {
        // The queue feeds the shared model once per batch; here we only
        // keep the AIMD fallback warm so losing the model (e.g. a long
        // idle period followed by drift) degrades gracefully.
        self.aimd.record(batch_size, latency);
    }

    fn name(&self) -> &'static str {
        "autotune"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::LatencyPrior;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn falls_back_to_aimd_until_established() {
        let model = Arc::new(LatencyModel::new());
        let mut c = AutotuneController::new(Duration::from_millis(20), 0.1, model, 4096);
        assert_eq!(c.max_batch(), 1); // AIMD cold start
        c.record(1, us(100));
        assert!(c.max_batch() > 1, "AIMD growth governs before the model");
    }

    #[test]
    fn learned_ceiling_replaces_aimd_once_established() {
        let model = Arc::new(LatencyModel::new());
        let c = AutotuneController::new(Duration::from_millis(20), 0.1, model.clone(), 4096);
        // Feed the shared model a 5ms/item curve, as the queue would.
        for round in 0..10 {
            for b in 1..=4usize {
                let _ = round;
                model.observe(b, us(100 + 5_000 * b as u64));
            }
        }
        // budget = 18ms → b_max ≈ (18000 − α)/5000 ≈ 3.
        let b = c.max_batch();
        assert!((2..=4).contains(&b), "learned ceiling {b}, expected ≈3");
    }

    #[test]
    fn prior_warm_start_skips_the_probe_phase() {
        let prior = LatencyPrior {
            alpha_us: 1_000.0,
            beta_us: 20.0,
        };
        let model = Arc::new(LatencyModel::with_prior(prior));
        let c = AutotuneController::new(Duration::from_millis(20), 0.1, model, 4096);
        // (18000 − 1000) / 20 = 850 — immediately, no AIMD climb.
        let b = c.max_batch();
        assert!((800..=900).contains(&b), "warm-started ceiling {b}");
    }

    #[test]
    fn ceiling_respects_the_cap_and_the_floor() {
        let fast = Arc::new(LatencyModel::with_prior(LatencyPrior {
            alpha_us: 0.0,
            beta_us: 1.0,
        }));
        let c = AutotuneController::new(Duration::from_millis(20), 0.1, fast, 64);
        assert_eq!(c.max_batch(), 64);

        let slow = Arc::new(LatencyModel::with_prior(LatencyPrior {
            alpha_us: 100_000.0,
            beta_us: 1_000.0,
        }));
        let c = AutotuneController::new(Duration::from_millis(20), 0.1, slow, 64);
        assert_eq!(c.max_batch(), 1);
    }
}
