//! The No-Op model.
//!
//! Figure 3(d) uses a No-Op container to isolate pure system overhead (RPC,
//! serialization, queueing) from model compute. This model returns a
//! constant answer in O(1).

use super::{Label, Model};

/// A model that does no work: always predicts class 0 with full confidence.
#[derive(Clone, Debug, Default)]
pub struct NoOpModel {
    num_classes: usize,
}

impl NoOpModel {
    /// Create a no-op model reporting `num_classes` classes.
    pub fn new(num_classes: usize) -> Self {
        NoOpModel {
            num_classes: num_classes.max(1),
        }
    }
}

impl Model for NoOpModel {
    fn name(&self) -> &str {
        "no-op"
    }
    fn num_classes(&self) -> usize {
        self.num_classes
    }
    fn scores(&self, _x: &[f32]) -> Vec<f32> {
        let mut s = vec![0.0; self.num_classes];
        s[0] = 1.0;
        s
    }
    fn predict(&self, _x: &[f32]) -> Label {
        0
    }
    fn predict_batch(&self, xs: &[&[f32]]) -> Vec<Label> {
        vec![0; xs.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_predicts_zero() {
        let m = NoOpModel::new(10);
        assert_eq!(m.predict(&[1.0, 2.0]), 0);
        assert_eq!(m.predict_batch(&[&[0.0f32][..], &[9.0f32][..]]), vec![0, 0]);
        assert_eq!(m.num_classes(), 10);
    }

    #[test]
    fn zero_classes_clamps_to_one() {
        let m = NoOpModel::new(0);
        assert_eq!(m.num_classes(), 1);
        assert_eq!(m.scores(&[]), vec![1.0]);
    }
}
