//! Arrival processes for load generation.

use rand::prelude::*;
use rand_distr::Exp;
use std::time::Duration;

/// How queries arrive at the system.
#[derive(Clone, Debug)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate` queries/second (exponential gaps).
    Poisson {
        /// Mean arrival rate (qps).
        rate: f64,
    },
    /// Deterministic arrivals at `rate` queries/second.
    Uniform {
        /// Arrival rate (qps).
        rate: f64,
    },
    /// On/off bursts: Poisson at `on_rate` for `on`, silent for `off`.
    Bursty {
        /// Rate during a burst (qps).
        on_rate: f64,
        /// Burst duration.
        on: Duration,
        /// Gap duration.
        off: Duration,
    },
}

impl ArrivalProcess {
    /// Long-run average rate (qps).
    pub fn mean_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Uniform { rate } => *rate,
            ArrivalProcess::Bursty { on_rate, on, off } => {
                let total = on.as_secs_f64() + off.as_secs_f64();
                if total <= 0.0 {
                    *on_rate
                } else {
                    on_rate * on.as_secs_f64() / total
                }
            }
        }
    }

    /// Build an iterator of inter-arrival gaps, seeded for repeatability.
    pub fn gaps(&self, seed: u64) -> ArrivalIter {
        ArrivalIter {
            process: self.clone(),
            rng: StdRng::seed_from_u64(seed),
            burst_elapsed: Duration::ZERO,
        }
    }
}

/// Iterator over inter-arrival gaps.
pub struct ArrivalIter {
    process: ArrivalProcess,
    rng: StdRng,
    burst_elapsed: Duration,
}

impl Iterator for ArrivalIter {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        match &self.process {
            ArrivalProcess::Poisson { rate } => {
                if *rate <= 0.0 {
                    return None;
                }
                let exp = Exp::new(*rate).ok()?;
                Some(Duration::from_secs_f64(exp.sample(&mut self.rng)))
            }
            ArrivalProcess::Uniform { rate } => {
                if *rate <= 0.0 {
                    return None;
                }
                Some(Duration::from_secs_f64(1.0 / rate))
            }
            ArrivalProcess::Bursty { on_rate, on, off } => {
                if *on_rate <= 0.0 {
                    return None;
                }
                let exp = Exp::new(*on_rate).ok()?;
                let mut gap = Duration::from_secs_f64(exp.sample(&mut self.rng));
                self.burst_elapsed += gap;
                if self.burst_elapsed >= *on {
                    // Burst over: insert the off-period, start a new burst.
                    gap += *off;
                    self.burst_elapsed = Duration::ZERO;
                }
                Some(gap)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_gaps_are_constant() {
        let p = ArrivalProcess::Uniform { rate: 100.0 };
        let gaps: Vec<Duration> = p.gaps(1).take(5).collect();
        assert!(gaps.iter().all(|&g| g == Duration::from_millis(10)));
        assert_eq!(p.mean_rate(), 100.0);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let p = ArrivalProcess::Poisson { rate: 1_000.0 };
        let total: Duration = p.gaps(42).take(10_000).sum();
        let mean_gap = total.as_secs_f64() / 10_000.0;
        assert!(
            (mean_gap - 0.001).abs() < 0.0002,
            "mean gap {mean_gap} vs expected 0.001"
        );
    }

    #[test]
    fn poisson_is_seeded_deterministic() {
        let p = ArrivalProcess::Poisson { rate: 500.0 };
        let a: Vec<Duration> = p.gaps(7).take(10).collect();
        let b: Vec<Duration> = p.gaps(7).take(10).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bursty_inserts_off_periods() {
        let p = ArrivalProcess::Bursty {
            on_rate: 1_000.0,
            on: Duration::from_millis(10),
            off: Duration::from_millis(100),
        };
        let gaps: Vec<Duration> = p.gaps(3).take(1_000).collect();
        let long_gaps = gaps
            .iter()
            .filter(|g| **g >= Duration::from_millis(100))
            .count();
        assert!(long_gaps > 0, "bursty stream must contain off-period gaps");
        // Mean rate accounts for the duty cycle.
        let expected = 1_000.0 * (10.0 / 110.0);
        assert!((p.mean_rate() - expected).abs() < 1.0);
    }

    #[test]
    fn zero_rate_terminates() {
        let p = ArrivalProcess::Poisson { rate: 0.0 };
        assert!(p.gaps(0).next().is_none());
    }
}
