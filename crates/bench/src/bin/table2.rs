//! Table 2 — the deep-learning model zoo used by the ImageNet ensemble
//! experiments, as simulated GPU specs.

use clipper_containers::table2_zoo;
use clipper_workload::{report::fmt_qps, Table};

fn main() {
    println!("== Table 2: Deep Learning Models (simulated GPU zoo) ==\n");
    let mut table = Table::new(&[
        "model",
        "layers (paper)",
        "wave size",
        "wave time",
        "peak throughput",
    ]);
    for spec in table2_zoo() {
        table.row(&[
            spec.name.clone(),
            spec.layers.clone(),
            format!("{}", spec.wave_size),
            format!("{:.0} ms", spec.wave_time.as_secs_f64() * 1e3),
            format!("{} qps", fmt_qps(spec.peak_throughput())),
        ]);
    }
    table.print();
    println!("\npaper zoo: VGG 13C+3FC, GoogLeNet 96C+5FC, ResNet 151C+1FC, CaffeNet 5C+3FC, Inception 6C+1FC+3I");
}
