//! Wire messages and their binary encoding.
//!
//! The codec is hand-rolled: every frame is
//!
//! ```text
//! +-------+---------+----------+------------+-------------+---------+
//! | magic | version | msg_type | request_id | payload_len | payload |
//! |  u32  |   u8    |    u8    |    u64     |     u32     |  bytes  |
//! +-------+---------+----------+------------+-------------+---------+
//! ```
//!
//! little-endian throughout. Feature vectors are shipped as raw `f32` runs,
//! so a batch of `b` MNIST images costs `b × 784 × 4` payload bytes — the
//! quantity the Figure-6 network-bottleneck experiment meters.
//!
//! Encoding appends to a caller-owned `Vec<u8>` ([`Message::encode_into`])
//! so a connection's frames amortize into one retained write buffer;
//! decoding borrows the payload slice ([`Message::decode`] takes `&[u8]`)
//! and copies only the values whose ownership escapes the frame (strings,
//! score vectors) — the payload itself is never re-allocated.

use crate::error::RpcError;
use crate::transport::Input;
use bytes::Bytes;
use std::sync::Arc;

/// Frame magic ("CLIP" little-endianized).
pub const MAGIC: u32 = 0xC11B_BE55;
/// Protocol version.
pub const VERSION: u8 = 1;
/// Hard cap on payload size (64 MiB) to bound memory under corruption.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// A model container's prediction for one input.
#[derive(Clone, Debug, PartialEq)]
pub enum WireOutput {
    /// Single class label (object recognition).
    Class(u32),
    /// Per-class scores.
    Scores(Vec<f32>),
    /// Label sequence (speech transcription).
    Labels(Vec<u32>),
}

impl WireOutput {
    /// The scalar label this output argmaxes to, used by ensemble voting.
    pub fn label(&self) -> u32 {
        match self {
            WireOutput::Class(c) => *c,
            WireOutput::Scores(s) => {
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for (i, &v) in s.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best as u32
            }
            WireOutput::Labels(l) => l.first().copied().unwrap_or(0),
        }
    }

    /// Approximate encoded size in bytes (for network simulation).
    pub fn wire_size(&self) -> usize {
        match self {
            WireOutput::Class(_) => 5,
            WireOutput::Scores(s) => 5 + 4 * s.len(),
            WireOutput::Labels(l) => 5 + 4 * l.len(),
        }
    }
}

/// A completed batch prediction, with container-side timing for the
/// Figure-11 latency decomposition.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PredictReply {
    /// One output per input, in order.
    pub outputs: Vec<WireOutput>,
    /// Microseconds the batch spent queued inside the container before
    /// compute started (e.g. waiting for the GPU).
    pub queue_us: u64,
    /// Microseconds of model compute.
    pub compute_us: u64,
}

/// All protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Container → Clipper: announce a model.
    Register {
        /// Container instance name (unique per connection).
        container_name: String,
        /// Model this container serves.
        model_name: String,
        /// Model version.
        model_version: u32,
    },
    /// Clipper → container: registration accepted.
    RegisterAck,
    /// Clipper → container: evaluate a batch.
    ///
    /// Inputs are `Arc`-shared feature vectors: building this message from
    /// a dispatched batch clones pointers only; the `f32` payload is read
    /// directly out of the shared vectors at encode time.
    PredictRequest {
        /// Feature vectors, one per query.
        inputs: Vec<Input>,
    },
    /// Container → Clipper: batch results.
    PredictResponse(PredictReply),
    /// Container → Clipper: the batch failed.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Liveness probe (either direction).
    Heartbeat,
    /// Liveness reply.
    HeartbeatAck,
    /// Graceful shutdown notice.
    Shutdown,
}

impl Message {
    fn msg_type(&self) -> u8 {
        match self {
            Message::Register { .. } => 1,
            Message::RegisterAck => 2,
            Message::PredictRequest { .. } => 3,
            Message::PredictResponse(_) => 4,
            Message::Error { .. } => 5,
            Message::Heartbeat => 6,
            Message::HeartbeatAck => 7,
            Message::Shutdown => 8,
        }
    }

    /// Append one full frame (header + payload) to `out`.
    ///
    /// This is the hot-path entry: a connection encodes every outbound
    /// frame into one retained buffer, so steady state allocates nothing.
    /// The payload length is patched in after the payload is written —
    /// one pass, no intermediate payload buffer.
    pub fn encode_into(&self, request_id: u64, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(VERSION);
        out.push(self.msg_type());
        out.extend_from_slice(&request_id.to_le_bytes());
        let len_at = out.len();
        out.extend_from_slice(&[0u8; 4]);
        let payload_start = out.len();
        match self {
            Message::Register {
                container_name,
                model_name,
                model_version,
            } => {
                put_string(out, container_name);
                put_string(out, model_name);
                put_u32(out, *model_version);
            }
            Message::RegisterAck
            | Message::Heartbeat
            | Message::HeartbeatAck
            | Message::Shutdown => {}
            Message::PredictRequest { inputs } => {
                put_u32(out, inputs.len() as u32);
                for input in inputs {
                    put_f32s(out, input);
                }
            }
            Message::PredictResponse(reply) => {
                put_u64(out, reply.queue_us);
                put_u64(out, reply.compute_us);
                put_u32(out, reply.outputs.len() as u32);
                for o in &reply.outputs {
                    match o {
                        WireOutput::Class(c) => {
                            out.push(0);
                            put_u32(out, *c);
                        }
                        WireOutput::Scores(s) => {
                            out.push(1);
                            put_f32s(out, s);
                        }
                        WireOutput::Labels(l) => {
                            out.push(2);
                            put_u32(out, l.len() as u32);
                            for &v in l {
                                put_u32(out, v);
                            }
                        }
                    }
                }
            }
            Message::Error { message } => {
                put_string(out, message);
            }
        }
        let payload_len = (out.len() - payload_start) as u32;
        out[len_at..len_at + 4].copy_from_slice(&payload_len.to_le_bytes());
    }

    /// Encode into a freshly allocated full frame (header + payload).
    /// Compatibility/test path — hot paths use [`Self::encode_into`].
    pub fn encode(&self, request_id: u64) -> Bytes {
        let mut out = Vec::with_capacity(self.wire_size());
        self.encode_into(request_id, &mut out);
        Bytes::from(out)
    }

    /// Decode a payload given its already-parsed header fields.
    ///
    /// Borrows the payload: nothing is copied except values whose
    /// ownership escapes the frame (strings, feature/score vectors). The
    /// returned [`Message`] is `'static` — it cannot retain a reference
    /// into `payload`, which is what makes the caller's buffer reuse
    /// sound (checked by test).
    pub fn decode(msg_type: u8, payload: &[u8]) -> Result<Message, RpcError> {
        let mut payload = payload;
        let buf = &mut payload;
        let msg = match msg_type {
            1 => {
                let container_name = get_string(buf)?;
                let model_name = get_string(buf)?;
                let model_version = get_u32(buf)?;
                Message::Register {
                    container_name,
                    model_name,
                    model_version,
                }
            }
            2 => Message::RegisterAck,
            3 => {
                let n = get_u32(buf)? as usize;
                let mut inputs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    inputs.push(Arc::new(get_f32s(buf)?));
                }
                Message::PredictRequest { inputs }
            }
            4 => {
                let queue_us = get_u64(buf)?;
                let compute_us = get_u64(buf)?;
                let n = get_u32(buf)? as usize;
                let mut outputs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let tag = get_u8(buf)?;
                    outputs.push(match tag {
                        0 => WireOutput::Class(get_u32(buf)?),
                        1 => WireOutput::Scores(get_f32s(buf)?),
                        2 => {
                            let len = get_u32(buf)? as usize;
                            let mut l = Vec::with_capacity(len.min(1 << 20));
                            for _ in 0..len {
                                l.push(get_u32(buf)?);
                            }
                            WireOutput::Labels(l)
                        }
                        t => {
                            return Err(RpcError::Protocol(format!("bad output tag {t}")));
                        }
                    });
                }
                Message::PredictResponse(PredictReply {
                    outputs,
                    queue_us,
                    compute_us,
                })
            }
            5 => Message::Error {
                message: get_string(buf)?,
            },
            6 => Message::Heartbeat,
            7 => Message::HeartbeatAck,
            8 => Message::Shutdown,
            t => return Err(RpcError::Protocol(format!("unknown message type {t}"))),
        };
        if !payload.is_empty() {
            return Err(RpcError::Protocol(format!(
                "{} trailing bytes after message type {msg_type}",
                payload.len()
            )));
        }
        Ok(msg)
    }

    /// Exact frame size in bytes (header + payload), used by the
    /// simulated network links and to pre-size encode buffers.
    pub fn wire_size(&self) -> usize {
        let payload = match self {
            Message::Register {
                container_name,
                model_name,
                ..
            } => 8 + container_name.len() + model_name.len() + 4,
            Message::RegisterAck
            | Message::Heartbeat
            | Message::HeartbeatAck
            | Message::Shutdown => 0,
            Message::PredictRequest { inputs } => {
                4 + inputs.iter().map(|i| 4 + 4 * i.len()).sum::<usize>()
            }
            Message::PredictResponse(r) => {
                20 + r.outputs.iter().map(WireOutput::wire_size).sum::<usize>()
            }
            Message::Error { message } => 4 + message.len(),
        };
        18 + payload
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_f32s(buf: &mut Vec<u8>, vals: &[f32]) {
    put_u32(buf, vals.len() as u32);
    for &v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, RpcError> {
    let (&first, rest) = buf
        .split_first()
        .ok_or_else(|| RpcError::Protocol("truncated u8".into()))?;
    *buf = rest;
    Ok(first)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, RpcError> {
    if buf.len() < 4 {
        return Err(RpcError::Protocol("truncated u32".into()));
    }
    let (head, rest) = buf.split_at(4);
    *buf = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64, RpcError> {
    if buf.len() < 8 {
        return Err(RpcError::Protocol("truncated u64".into()));
    }
    let (head, rest) = buf.split_at(8);
    *buf = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

fn get_string(buf: &mut &[u8]) -> Result<String, RpcError> {
    let len = get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(RpcError::Protocol("truncated string".into()));
    }
    let (raw, rest) = buf.split_at(len);
    let s = std::str::from_utf8(raw).map_err(|_| RpcError::Protocol("invalid utf8".into()))?;
    *buf = rest;
    Ok(s.to_owned())
}

fn get_f32s(buf: &mut &[u8]) -> Result<Vec<f32>, RpcError> {
    let len = get_u32(buf)? as usize;
    let bytes = len
        .checked_mul(4)
        .ok_or_else(|| RpcError::Protocol("f32 array length overflow".into()))?;
    if buf.len() < bytes {
        return Err(RpcError::Protocol("truncated f32 array".into()));
    }
    let (raw, rest) = buf.split_at(bytes);
    *buf = rest;
    Ok(raw
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::as_inputs;

    fn roundtrip(msg: Message) -> Message {
        let frame = msg.encode(42);
        // Parse the 18-byte header; decode the borrowed payload.
        assert_eq!(u32::from_le_bytes(frame[0..4].try_into().unwrap()), MAGIC);
        assert_eq!(frame[4], VERSION);
        let mt = frame[5];
        assert_eq!(u64::from_le_bytes(frame[6..14].try_into().unwrap()), 42);
        let plen = u32::from_le_bytes(frame[14..18].try_into().unwrap()) as usize;
        assert_eq!(frame.len() - 18, plen);
        Message::decode(mt, &frame[18..]).expect("decode")
    }

    #[test]
    fn register_roundtrips() {
        let m = Message::Register {
            container_name: "c0".into(),
            model_name: "linear-svm".into(),
            model_version: 3,
        };
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn predict_request_roundtrips() {
        let m = Message::PredictRequest {
            inputs: as_inputs(vec![vec![1.0, -2.5, 3.25], vec![], vec![0.0; 17]]),
        };
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn predict_response_roundtrips_all_output_kinds() {
        let m = Message::PredictResponse(PredictReply {
            outputs: vec![
                WireOutput::Class(9),
                WireOutput::Scores(vec![0.1, 0.9]),
                WireOutput::Labels(vec![1, 2, 3]),
            ],
            queue_us: 1_000,
            compute_us: 2_000,
        });
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn control_messages_roundtrip() {
        for m in [
            Message::RegisterAck,
            Message::Heartbeat,
            Message::HeartbeatAck,
            Message::Shutdown,
            Message::Error {
                message: "boom".into(),
            },
        ] {
            assert_eq!(roundtrip(m.clone()), m);
        }
    }

    #[test]
    fn encode_into_appends_frames_back_to_back() {
        // Two frames in one buffer decode independently — the coalesced
        // writer path depends on frame boundaries being self-describing.
        let a = Message::Heartbeat;
        let b = Message::Error {
            message: "x".into(),
        };
        let mut buf = Vec::new();
        a.encode_into(1, &mut buf);
        let split = buf.len();
        b.encode_into(2, &mut buf);
        assert_eq!(&buf[..split], &a.encode(1)[..]);
        assert_eq!(&buf[split..], &b.encode(2)[..]);
    }

    #[test]
    fn decoded_message_owns_its_data() {
        // `decode` borrows the payload but the Message must not: mutate
        // the source buffer after decoding and the message is unchanged.
        // (`Message: 'static` is the compile-time half of the claim.)
        fn assert_static<T: 'static>() {}
        assert_static::<Message>();

        let m = Message::Register {
            container_name: "c0".into(),
            model_name: "svm".into(),
            model_version: 1,
        };
        let frame = m.encode(9);
        let mut payload = frame[18..].to_vec();
        let decoded = Message::decode(1, &payload).unwrap();
        payload.fill(0xAA);
        drop(payload);
        assert_eq!(decoded, m);
    }

    #[test]
    fn unknown_type_is_protocol_error() {
        let err = Message::decode(99, &[]).unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)));
    }

    #[test]
    fn truncated_payload_is_protocol_error() {
        let m = Message::PredictRequest {
            inputs: as_inputs(vec![vec![1.0, 2.0]]),
        };
        let frame = m.encode(1);
        // Chop the last 3 bytes off the payload.
        let err = Message::decode(3, &frame[18..frame.len() - 3]).unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = Vec::new();
        put_u32(&mut payload, 0); // zero inputs
        payload.push(0xFF); // junk
        let err = Message::decode(3, &payload).unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)));
    }

    #[test]
    fn wire_size_matches_encoded_length() {
        let msgs = vec![
            Message::Heartbeat,
            Message::PredictRequest {
                inputs: as_inputs(vec![vec![1.0; 784]; 4]),
            },
            Message::PredictResponse(PredictReply {
                outputs: vec![WireOutput::Class(1), WireOutput::Scores(vec![0.5; 10])],
                queue_us: 5,
                compute_us: 6,
            }),
            Message::Register {
                container_name: "abc".into(),
                model_name: "defg".into(),
                model_version: 1,
            },
        ];
        for m in msgs {
            assert_eq!(m.wire_size(), m.encode(0).len(), "msg {m:?}");
        }
    }

    #[test]
    fn output_label_argmaxes_scores() {
        assert_eq!(WireOutput::Class(7).label(), 7);
        assert_eq!(WireOutput::Scores(vec![0.1, 0.7, 0.2]).label(), 1);
        assert_eq!(WireOutput::Labels(vec![4, 5]).label(), 4);
        assert_eq!(WireOutput::Labels(vec![]).label(), 0);
    }
}
