//! The per-replica batching queue: a pull-based worker with an explicit
//! lifecycle.
//!
//! Queries destined for a model container replica land in its queue; the
//! replica's *worker task* pulls up to the controller's current maximum
//! batch size, optionally waits `batch_wait_timeout` for an under-full
//! batch to fill (delayed batching, §4.3.2), ships the batch over the
//! transport **zero-copy** (the batch slice shares the callers' `Arc`'d
//! feature vectors; no `f32` is copied on dispatch), and distributes
//! outputs to each query's reply sink — either a direct oneshot or a
//! prediction-cache fill that wakes every joined waiter.
//!
//! # Lifecycle
//!
//! A queue moves `Running → Draining → Stopped`:
//!
//! - **Running** — accepting submissions; the worker pulls and dispatches.
//! - **Draining** — entered by [`ReplicaQueue::shutdown`]. New submissions
//!   are refused (routed elsewhere by the scheduler), but the worker keeps
//!   pulling until the queue is empty, so every already-accepted query is
//!   *completed or fail-filled* — never silently dropped. This is what
//!   makes hot replica removal lossless.
//! - **Stopped** — the worker has exited and all in-flight batches have
//!   settled; [`ReplicaQueue::drained`] resolves.
//!
//! As a backstop, [`ReplySink`] completes on drop: if a queued item is
//! destroyed without being dispatched (worker aborted, runtime teardown),
//! its sink still fail-fills — a pending prediction-cache entry is failed
//! rather than wedging its waiters forever.
//!
//! # Scheduler-visible state
//!
//! The queue exposes cheap relaxed-atomic reads the routing layer keys on:
//! [`len`](ReplicaQueue::len) (channel occupancy),
//! [`inflight`](ReplicaQueue::inflight) (pulled but unanswered queries),
//! and [`service_ewma_us_per_item`](ReplicaQueue::service_ewma_us_per_item)
//! — an EWMA of container-reported `predict_us` per query, i.e. the
//! replica's observed service rate. Their product,
//! [`backlog_estimate_ns`](ReplicaQueue::backlog_estimate_ns), is the
//! power-of-two-choices routing score.
//!
//! Timing decomposition recorded per batch (the Figure-11 bars):
//! - `queue_us`: time queries waited in this queue before dispatch;
//! - `remote_queue_us` / `predict_us`: container-reported device queueing
//!   and model compute;
//! - `overhead_us`: everything else in the round trip (serialization, RPC,
//!   scheduling).

use super::breaker::{BreakerConfig, CircuitBreaker};
use super::{BatchController, LatencyModel, LatencyPrior};
use crate::cache::{CacheFillError, CacheKey, PredictionCache};
use crate::types::{Input, Output};
use clipper_metrics::{Counter, Gauge, Histogram, Meter, Registry};
use clipper_rpc::transport::BatchTransport;
use clipper_rpc::RpcError;
use parking_lot::Mutex;
use std::future::Future;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::sync::{mpsc, oneshot, Semaphore};

/// Cloneable prediction failure (fans out to many waiters).
///
/// The variants form a typed taxonomy with a canonical HTTP mapping
/// ([`http_status`](PredictError::http_status)): callers — the HTTP
/// frontend in particular — never have to pattern-match on message
/// strings to decide between 404, 429, 500, and 504.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PredictError {
    /// The query waited past its deadline (straggler path). HTTP 504.
    Timeout,
    /// Every eligible replica queue was full — shed load instead of
    /// growing latency. HTTP 429.
    Overloaded,
    /// The model has no live replicas. HTTP 503.
    NoReplicas,
    /// The model is not registered. HTTP 404.
    ModelUnknown,
    /// The application is not registered. HTTP 404.
    AppUnknown,
    /// The caller's input was malformed (e.g. an empty feature vector).
    /// HTTP 400.
    BadInput(String),
    /// Evaluation failed (RPC or container error). HTTP 500.
    Failed(String),
    /// The upstream replica failed the batch with a typed transport
    /// error, after `attempts` dispatch attempts (> 1 means redispatch
    /// was tried and exhausted). Retryable kinds map to HTTP 503 —
    /// another replica, or the same one a moment later, may well serve
    /// the request — non-retryable kinds to HTTP 500.
    Upstream {
        /// What failed upstream.
        kind: UpstreamKind,
        /// Whether a retry elsewhere could have succeeded (mirrors
        /// [`clipper_rpc::RpcError::is_retryable`]).
        retryable: bool,
        /// Dispatch attempts consumed before giving up.
        attempts: u32,
    },
}

/// The typed cause of a [`PredictError::Upstream`] failure — the
/// [`clipper_rpc::RpcError`] taxonomy minus payloads, plus the queue's
/// own breaker refusal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpstreamKind {
    /// Underlying socket error.
    Io,
    /// The replica closed the connection mid-request.
    ConnectionClosed,
    /// The RPC waited past its deadline.
    Timeout,
    /// Malformed frame or unexpected message.
    Protocol,
    /// Dropped by fault injection.
    Injected,
    /// The container rejected the batch.
    Remote,
    /// The replica's circuit breaker was open and no sibling could take
    /// the query.
    BreakerOpen,
}

impl UpstreamKind {
    /// Classify a transport error.
    pub fn of(e: &RpcError) -> Self {
        match e {
            RpcError::Io(_) => UpstreamKind::Io,
            RpcError::ConnectionClosed => UpstreamKind::ConnectionClosed,
            RpcError::Timeout => UpstreamKind::Timeout,
            RpcError::Protocol(_) => UpstreamKind::Protocol,
            RpcError::Injected => UpstreamKind::Injected,
            RpcError::Remote(_) => UpstreamKind::Remote,
        }
    }

    /// Stable label for messages and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            UpstreamKind::Io => "io",
            UpstreamKind::ConnectionClosed => "connection_closed",
            UpstreamKind::Timeout => "timeout",
            UpstreamKind::Protocol => "protocol",
            UpstreamKind::Injected => "injected",
            UpstreamKind::Remote => "remote",
            UpstreamKind::BreakerOpen => "breaker_open",
        }
    }
}

impl std::fmt::Display for UpstreamKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl PredictError {
    /// Canonical HTTP status for this failure.
    pub fn http_status(&self) -> u16 {
        match self {
            PredictError::Timeout => 504,
            PredictError::Overloaded => 429,
            PredictError::NoReplicas => 503,
            PredictError::ModelUnknown | PredictError::AppUnknown => 404,
            PredictError::BadInput(_) => 400,
            PredictError::Failed(_) => 500,
            PredictError::Upstream { retryable, .. } => {
                if *retryable {
                    503
                } else {
                    500
                }
            }
        }
    }

    /// Stable machine-readable code for error bodies.
    pub fn code(&self) -> &'static str {
        match self {
            PredictError::Timeout => "timeout",
            PredictError::Overloaded => "overloaded",
            PredictError::NoReplicas => "no_replicas",
            PredictError::ModelUnknown => "model_unknown",
            PredictError::AppUnknown => "app_unknown",
            PredictError::BadInput(_) => "bad_input",
            PredictError::Failed(_) => "internal",
            PredictError::Upstream { .. } => "upstream",
        }
    }

    /// Whether retrying the same request later may succeed (transient
    /// capacity/timing failures, not caller or registration errors).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PredictError::Timeout
                | PredictError::Overloaded
                | PredictError::NoReplicas
                | PredictError::Upstream {
                    retryable: true,
                    ..
                }
        )
    }
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::Timeout => write!(f, "prediction timed out"),
            PredictError::Overloaded => write!(f, "replica queue overloaded"),
            PredictError::NoReplicas => write!(f, "no replicas available"),
            PredictError::ModelUnknown => write!(f, "unknown model"),
            PredictError::AppUnknown => write!(f, "unknown application"),
            PredictError::BadInput(m) => write!(f, "bad input: {m}"),
            PredictError::Failed(m) => write!(f, "prediction failed: {m}"),
            PredictError::Upstream { kind, attempts, .. } => write!(
                f,
                "upstream replica failure ({kind}) after {attempts} attempt(s)"
            ),
        }
    }
}

impl std::error::Error for PredictError {}

enum SinkKind {
    /// Fill the prediction cache (waking all joined waiters).
    Cache {
        cache: PredictionCache,
        key: CacheKey,
    },
    /// Complete a direct oneshot (cache-bypass path).
    Direct(oneshot::Sender<Result<Output, PredictError>>),
}

/// Where a completed output goes.
///
/// A sink is single-shot and **completes on drop**: if it is destroyed
/// before [`ReplySink::complete`] ran, it delivers a failure instead of
/// vanishing. For the cache variant that means the pending entry is
/// fail-filled, so cache waiters can never be wedged by a dropped queue
/// item.
pub struct ReplySink(Option<SinkKind>);

impl ReplySink {
    /// A sink that fills the prediction cache under a precomputed key.
    pub fn cache(cache: PredictionCache, key: CacheKey) -> Self {
        ReplySink(Some(SinkKind::Cache { cache, key }))
    }

    /// A sink that completes a direct oneshot.
    pub fn direct(tx: oneshot::Sender<Result<Output, PredictError>>) -> Self {
        ReplySink(Some(SinkKind::Direct(tx)))
    }

    /// Deliver the result to whoever is waiting.
    pub fn complete(mut self, result: Result<Output, PredictError>) {
        self.finish(result);
    }

    fn finish(&mut self, result: Result<Output, PredictError>) {
        match self.0.take() {
            Some(SinkKind::Cache { cache, key }) => {
                // Typed passthrough: waiters (and the HTTP taxonomy) see
                // the same `PredictError` a direct sink would deliver.
                let fill = result.map_err(CacheFillError::Predict);
                cache.fill(key, fill);
            }
            Some(SinkKind::Direct(tx)) => {
                let _ = tx.send(result);
            }
            None => {}
        }
    }
}

impl Drop for ReplySink {
    fn drop(&mut self) {
        if self.0.is_some() {
            self.finish(Err(PredictError::Failed(
                "query dropped before completion (replica shutdown)".into(),
            )));
        }
    }
}

/// One query waiting in a replica queue.
pub struct QueueItem {
    /// The feature vector.
    pub input: Input,
    /// Where the output goes.
    pub sink: ReplySink,
    /// When the query entered the queue (reset on redispatch, so each
    /// queue's wait histogram stays truthful).
    pub enqueued: Instant,
    /// Deadline budget for retry/redispatch: a retryable upstream
    /// failure redispatches the item only while `now < deadline`.
    /// `None` = no budget tracking (fail on first exhausted attempt
    /// policy still applies via `attempts`).
    pub deadline: Option<Instant>,
    /// Dispatch attempts consumed so far (0 for a fresh query).
    pub attempts: u32,
}

impl QueueItem {
    /// A fresh queue item with no retry deadline.
    pub fn new(input: Input, sink: ReplySink) -> Self {
        QueueItem {
            input,
            sink,
            enqueued: Instant::now(),
            deadline: None,
            attempts: 0,
        }
    }

    /// A fresh queue item carrying a retry-budget deadline.
    pub fn with_deadline(input: Input, sink: ReplySink, deadline: Instant) -> Self {
        QueueItem {
            deadline: Some(deadline),
            ..QueueItem::new(input, sink)
        }
    }
}

/// Queue configuration (per replica).
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Batching strategy.
    pub strategy: super::BatchStrategy,
    /// Latency objective the controller tunes against.
    pub slo: Duration,
    /// Delayed batching: how long an under-full batch waits for more
    /// queries (0 = dispatch immediately).
    pub batch_wait_timeout: Duration,
    /// Queue depth before submissions are refused (the scheduler then
    /// falls through to a sibling replica, shedding only when every
    /// replica is full).
    pub queue_capacity: usize,
    /// Hard cap on batch size.
    pub max_batch_cap: usize,
    /// Outstanding batches per replica (2 keeps a GPU's next batch queued
    /// while the current one runs, as both systems do in §6).
    pub pipeline_depth: usize,
    /// Hang detector for draining queues: the longest a drain may go
    /// **without a single query settling** before it is force-failed. A
    /// deep backlog draining slowly re-arms the deadline on every bit of
    /// progress and is never cut short; a transport whose future simply
    /// never resolves — which would otherwise wedge
    /// [`ReplicaQueue::drained`] forever — trips it. Past the deadline
    /// the in-flight dispatch tasks are aborted (dropping their queue
    /// items, whose sinks complete-on-drop) and any remaining backlog is
    /// fail-filled, so every waiter still settles.
    pub drain_deadline: Duration,
    /// Warm-start prior for the replica's online latency model (§4.4.1):
    /// typically the global curve from the `calibrate` bin, or the
    /// replica's own previously-learned curve restored from a persisted
    /// `BatchKnobs` record. `None` = cold start (the model establishes
    /// itself from live observations).
    pub latency_prior: Option<LatencyPrior>,
    /// SLO-aware admission (§4.4.1): when `true`, the scheduler consults
    /// every routable replica's latency model + backlog estimate at
    /// predict time and sheds up front (429) when no replica can meet
    /// the SLO at current depth — an honest fast failure instead of a
    /// guaranteed late answer.
    pub slo_admission: bool,
    /// Deadline-budgeted retry (§5.2.2): total dispatch attempts a query
    /// may consume when batches fail with *retryable* transport errors —
    /// each failed attempt redispatches still-within-budget items onto a
    /// different routable replica (when the queue is wired into a
    /// scheduler; standalone queues fail as before). `1` disables retry.
    pub retry_max_attempts: u32,
    /// Per-replica circuit breaker tuning (§5.2.2).
    pub breaker: BreakerConfig,
    /// Opt-in hedged dispatch (§5.2.2 straggler mitigation): when a
    /// batch's in-flight time crosses the model-derived hedge delay, the
    /// batch is re-dispatched to a sibling replica and the first success
    /// wins. `None` = no hedging.
    pub hedge: Option<HedgeConfig>,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            strategy: super::BatchStrategy::default(),
            slo: Duration::from_millis(20),
            batch_wait_timeout: Duration::ZERO,
            queue_capacity: 8_192,
            max_batch_cap: 4_096,
            pipeline_depth: 1,
            drain_deadline: Duration::from_secs(5),
            latency_prior: None,
            slo_admission: false,
            retry_max_attempts: 3,
            breaker: BreakerConfig::default(),
            hedge: None,
        }
    }
}

/// Hedged-dispatch tuning (see [`QueueConfig::hedge`]).
#[derive(Clone, Copy, Debug)]
pub struct HedgeConfig {
    /// The hedge fires when a batch's in-flight time exceeds
    /// `delay_factor ×` the replica's model-predicted batch latency — a
    /// quantile proxy: with factor 3 only genuine stragglers trigger it.
    pub delay_factor: f64,
    /// Floor for the hedge delay; also the delay used while the latency
    /// model has no estimate yet.
    pub min_delay: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            delay_factor: 3.0,
            min_delay: Duration::from_millis(2),
        }
    }
}

/// Scheduler callbacks wired into a queue at spawn time
/// ([`spawn_replica_queue_with_hooks`]); both default to `None` for
/// standalone queues, which then fail exactly as a single-replica fleet
/// would.
#[derive(Clone, Default)]
pub struct QueueHooks {
    /// Hand a retry-budgeted item back for redispatch onto a *different*
    /// routable replica. `Err(item)` = nobody could take it (the queue
    /// then fail-fills it).
    #[allow(clippy::type_complexity)]
    pub redispatch: Option<Arc<dyn Fn(QueueItem) -> Result<(), QueueItem> + Send + Sync>>,
    /// Pick a sibling replica's transport for a hedged re-dispatch (or
    /// `None` when no healthy sibling exists).
    #[allow(clippy::type_complexity)]
    pub hedge_pick: Option<Arc<dyn Fn() -> Option<Arc<dyn BatchTransport>> + Send + Sync>>,
}

/// Telemetry for one replica queue.
#[derive(Clone)]
pub struct QueueMetrics {
    /// Dispatched batch sizes.
    pub batch_size: Histogram,
    /// Full RPC round-trip per batch (µs).
    pub rpc_us: Histogram,
    /// Local queue wait per query (µs).
    pub queue_us: Histogram,
    /// Container-reported device queueing per batch (µs).
    pub remote_queue_us: Histogram,
    /// Container-reported compute per batch (µs).
    pub predict_us: Histogram,
    /// Round-trip minus container time per batch (µs).
    pub overhead_us: Histogram,
    /// Completed queries.
    pub completed: Meter,
    /// Failed queries.
    pub errors: Counter,
    /// Batches whose round trip exceeded the SLO.
    pub slo_violations: Counter,
    /// Controller's current max batch size.
    pub current_max_batch: Gauge,
    /// Queries shed because the queue was full.
    pub shed: Counter,
    /// Queries handed back for redispatch after a retryable upstream
    /// failure (recovered, not client-visible errors).
    pub retried: Counter,
    /// Batches re-dispatched to a sibling replica by hedging.
    pub hedged: Counter,
}

impl QueueMetrics {
    /// Register the queue's metrics under `prefix` in `registry`.
    pub fn register(registry: &Registry, prefix: &str) -> Self {
        QueueMetrics {
            batch_size: registry.histogram(&format!("{prefix}/batch_size")),
            rpc_us: registry.histogram(&format!("{prefix}/rpc_us")),
            queue_us: registry.histogram(&format!("{prefix}/queue_us")),
            remote_queue_us: registry.histogram(&format!("{prefix}/remote_queue_us")),
            predict_us: registry.histogram(&format!("{prefix}/predict_us")),
            overhead_us: registry.histogram(&format!("{prefix}/overhead_us")),
            completed: registry.meter(&format!("{prefix}/completed")),
            errors: registry.counter(&format!("{prefix}/errors")),
            slo_violations: registry.counter(&format!("{prefix}/slo_violations")),
            current_max_batch: registry.gauge(&format!("{prefix}/max_batch")),
            shed: registry.counter(&format!("{prefix}/shed")),
            retried: registry.counter(&format!("{prefix}/retried")),
            hedged: registry.counter(&format!("{prefix}/hedged")),
        }
    }
}

/// Lifecycle state of a replica queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueState {
    /// Accepting submissions; the worker is pulling and dispatching.
    Running,
    /// Refusing new submissions; the worker is completing what's queued.
    Draining,
    /// The worker has exited and every accepted query has settled.
    Stopped,
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_STOPPED: u8 = 2;

/// State shared between the queue handle and its worker task.
struct QueueShared {
    state: AtomicU8,
    /// Items accepted but not yet pulled by the worker (channel occupancy).
    depth: AtomicUsize,
    /// Queries pulled into batches whose replies haven't settled yet.
    inflight: AtomicUsize,
    /// EWMA of per-query service time in nanoseconds (`predict_us`/batch,
    /// falling back to the RPC round trip when the container reports no
    /// compute time).
    ewma_ns_per_item: AtomicU64,
    /// Batches failed in a row (reset by any success). A replica that only
    /// ever errors drains instantly and would otherwise look *ideal* to
    /// depth-aware routing — this is how the scheduler spots the trap.
    consecutive_errors: AtomicUsize,
    /// Externally asserted suspicion (the fleet health monitor flags a
    /// replica whose heartbeats stopped before its batches start failing).
    /// ORed into [`ReplicaQueue::is_suspect`]; cleared when a heartbeat
    /// returns.
    suspect_hint: AtomicBool,
    /// Closed by the worker on exit; `drained()` waits on it.
    done: Semaphore,
    /// Live dispatch tasks, retained so the drain watchdog can abort
    /// whatever a hung transport is still holding hostage (finished
    /// handles are pruned as new batches dispatch).
    dispatch_tasks: Mutex<Vec<tokio::task::JoinHandle<()>>>,
    /// Set by the drain watchdog once the deadline passes: batches pulled
    /// after this point are fail-filled instead of dispatched, so a hung
    /// transport can't re-wedge the drain.
    force_failed: AtomicBool,
    /// The configured drain deadline (see [`QueueConfig::drain_deadline`]).
    drain_deadline: Duration,
    /// Online `α + β·b` latency model (§4.4.1), fed once per dispatched
    /// batch; read by the autotune controller and SLO-aware admission.
    latency_model: Arc<LatencyModel>,
    /// Recycled batch-assembly buffers: dispatches return their emptied
    /// `items`/`inputs` vectors here, so steady-state batching performs
    /// zero allocations per batch.
    spare_items: Mutex<Vec<Vec<QueueItem>>>,
    spare_inputs: Mutex<Vec<Vec<Input>>>,
    /// Per-replica circuit breaker (§5.2.2): worker consults it before
    /// dispatching, feeds it every batch outcome; its tripped state ORs
    /// into [`ReplicaQueue::is_suspect`].
    breaker: CircuitBreaker,
    /// Scheduler callbacks for redispatch and hedging (empty for
    /// standalone queues).
    hooks: QueueHooks,
    /// Total dispatch attempts per query (see
    /// [`QueueConfig::retry_max_attempts`]).
    retry_max_attempts: u32,
    /// Hedged-dispatch tuning, when enabled.
    hedge: Option<HedgeConfig>,
}

/// Spare buffers retained per kind; beyond this they simply drop.
const SPARE_BUFS: usize = 4;

impl QueueShared {
    fn take_items_buf(&self) -> Vec<QueueItem> {
        self.spare_items.lock().pop().unwrap_or_default()
    }

    fn put_items_buf(&self, mut buf: Vec<QueueItem>) {
        debug_assert!(buf.is_empty());
        buf.clear();
        let mut pool = self.spare_items.lock();
        if pool.len() < SPARE_BUFS {
            pool.push(buf);
        }
    }

    fn take_inputs_buf(&self) -> Vec<Input> {
        self.spare_inputs.lock().pop().unwrap_or_default()
    }

    fn put_inputs_buf(&self, mut buf: Vec<Input>) {
        buf.clear();
        let mut pool = self.spare_inputs.lock();
        if pool.len() < SPARE_BUFS {
            pool.push(buf);
        }
    }

    fn record_service(&self, sample_ns_per_item: u64) {
        // Racy read-modify-write is fine for a routing statistic.
        let old = self.ewma_ns_per_item.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample_ns_per_item
        } else {
            (old * 7 + sample_ns_per_item * 3) / 10
        };
        self.ewma_ns_per_item.store(new, Ordering::Relaxed);
    }
}

/// Handle to a running replica queue.
pub struct ReplicaQueue {
    id: String,
    /// Dropped on shutdown: closing the channel is what lets the worker
    /// finish its pull loop once the backlog is gone.
    tx: Mutex<Option<mpsc::Sender<QueueItem>>>,
    shared: Arc<QueueShared>,
    metrics: QueueMetrics,
    capacity: usize,
    /// The worker's batch controller, shared so the handle can report the
    /// live ceiling (persistence, benches) without waiting for a pull.
    controller: Arc<Mutex<Box<dyn BatchController>>>,
}

impl ReplicaQueue {
    /// Try to enqueue a query. Refused — with the item handed back so the
    /// caller can route it elsewhere — when the queue is draining/stopped
    /// or full.
    pub fn try_submit(&self, item: QueueItem) -> Result<(), QueueItem> {
        if self.shared.state.load(Ordering::Acquire) != STATE_RUNNING {
            return Err(item);
        }
        let guard = self.tx.lock();
        let Some(tx) = guard.as_ref() else {
            return Err(item);
        };
        // Count before sending so the worker's decrement can never race
        // the counter below zero.
        self.shared.depth.fetch_add(1, Ordering::AcqRel);
        match tx.try_send(item) {
            Ok(()) => Ok(()),
            Err(mpsc::error::TrySendError::Full(item))
            | Err(mpsc::error::TrySendError::Closed(item)) => {
                self.shared.depth.fetch_sub(1, Ordering::AcqRel);
                Err(item)
            }
        }
    }

    /// Submit a query, shedding on refusal: the item's sink is completed
    /// with [`PredictError::Overloaded`] immediately. Single-replica
    /// callers use this; the scheduler prefers [`ReplicaQueue::try_submit`]
    /// so a refusal can fall through to a sibling replica.
    pub fn submit(&self, item: QueueItem) {
        if let Err(item) = self.try_submit(item) {
            self.metrics.shed.inc();
            item.sink.complete(Err(PredictError::Overloaded));
        }
    }

    /// Replica id (`model:replica`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// This queue's telemetry.
    pub fn metrics(&self) -> &QueueMetrics {
        &self.metrics
    }

    /// Current lifecycle state.
    pub fn state(&self) -> QueueState {
        match self.shared.state.load(Ordering::Acquire) {
            STATE_RUNNING => QueueState::Running,
            STATE_DRAINING => QueueState::Draining,
            _ => QueueState::Stopped,
        }
    }

    /// Queries accepted but not yet pulled by the worker (cheap relaxed
    /// read — the scheduler polls this on every routing decision).
    pub fn len(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// Whether the queue currently holds no waiting queries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queries pulled into dispatched batches whose replies haven't
    /// settled.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Relaxed)
    }

    /// Whether the queue is `Running` (submissions have a chance).
    pub fn is_accepting(&self) -> bool {
        self.shared.state.load(Ordering::Acquire) == STATE_RUNNING
    }

    /// Whether a submission would be accepted right now.
    pub fn has_room(&self) -> bool {
        self.is_accepting() && self.len() < self.capacity
    }

    /// EWMA of observed per-query service time, in microseconds.
    pub fn service_ewma_us_per_item(&self) -> f64 {
        self.shared.ewma_ns_per_item.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Whether at least one batch has completed, i.e. the service-rate
    /// EWMA carries signal. Schedulers compare raw occupancy until both
    /// candidates have an estimate — otherwise a replica that has never
    /// answered (possibly because it is wedged) would score an artificial
    /// near-zero backlog and soak up traffic.
    pub fn has_service_estimate(&self) -> bool {
        self.shared.ewma_ns_per_item.load(Ordering::Relaxed) > 0
    }

    /// Queued plus in-flight queries — the rate-free load signal.
    pub fn occupancy(&self) -> usize {
        self.len() + self.inflight()
    }

    /// Whether the replica's last few batches all failed (≥ 3 in a row),
    /// an external monitor (the fleet health loop) has flagged it, or
    /// its circuit breaker is open and still cooling down. Suspect
    /// replicas are routed to only when no clean replica has room; any
    /// successful batch clears the error streak, the monitor clears its
    /// hint when heartbeats resume, and an open breaker stops reporting
    /// tripped once its cooldown elapses (so the probe batch can route).
    pub fn is_suspect(&self) -> bool {
        self.shared.consecutive_errors.load(Ordering::Relaxed) >= 3
            || self.shared.suspect_hint.load(Ordering::Relaxed)
            || self.shared.breaker.is_tripped()
    }

    /// The replica's circuit breaker (live state, transition counters).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.shared.breaker
    }

    /// Externally assert (or clear) suspicion — the fleet health
    /// monitor's hook into p2c suspect-avoidance for replicas whose
    /// heartbeats went silent before their batches started failing.
    pub fn set_suspect_hint(&self, suspect: bool) {
        self.shared.suspect_hint.store(suspect, Ordering::Relaxed);
    }

    /// Estimated nanoseconds of work ahead of a newly enqueued query:
    /// `(queued + inflight) × service EWMA`. The power-of-two-choices
    /// routing score (a replica with no observations yet scores by
    /// occupancy alone).
    pub fn backlog_estimate_ns(&self) -> u64 {
        let items = (self.len() + self.inflight()) as u64;
        items.saturating_mul(self.shared.ewma_ns_per_item.load(Ordering::Relaxed).max(1))
    }

    /// The replica's online `α + β·b` latency model (§4.4.1).
    pub fn latency_model(&self) -> &Arc<LatencyModel> {
        &self.shared.latency_model
    }

    /// The controller's current maximum batch size — for an autotuning
    /// controller, the continuously re-derived per-replica ceiling.
    pub fn current_max_batch(&self) -> usize {
        self.controller.lock().max_batch()
    }

    /// Model-based estimate of when a query admitted *now* would
    /// complete: the current backlog plus one more query's predicted
    /// service time (`α + β`). `None` until the latency model is
    /// established — admission then gives the replica the benefit of
    /// the doubt rather than shedding on a guess.
    pub fn estimated_admission_ns(&self) -> Option<u64> {
        let one = self.shared.latency_model.predict_ns(1)?;
        Some(self.backlog_estimate_ns().saturating_add(one))
    }

    /// Begin a graceful drain: refuse new submissions, let the worker
    /// complete (or fail-fill) everything already queued, then stop.
    /// Idempotent. Await [`ReplicaQueue::drained`] for completion.
    ///
    /// A watchdog enforces [`QueueConfig::drain_deadline`]: if in-flight
    /// batches haven't resolved by then (a hung transport), their
    /// dispatch tasks are aborted — every outstanding sink fail-fills via
    /// complete-on-drop — and any backlog still queued is fail-filled
    /// directly instead of being dispatched, so the drain always
    /// terminates.
    pub fn shutdown(&self) {
        let began = self
            .shared
            .state
            .compare_exchange(
                STATE_RUNNING,
                STATE_DRAINING,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        // Closing the channel (dropping the only sender) is what ends the
        // worker's pull loop after the backlog is consumed.
        self.tx.lock().take();
        if began {
            // Note: like `spawn_replica_queue` itself, this requires the
            // (global, vendored) tokio runtime.
            let shared = self.shared.clone();
            tokio::spawn(async move {
                let mut forcing = false;
                // Occupancy only shrinks during a drain (submissions are
                // refused), so an unchanged value across a full deadline
                // means not one query settled — a hang, not a deep
                // backlog draining slowly.
                let mut last_occupancy =
                    shared.depth.load(Ordering::Relaxed) + shared.inflight.load(Ordering::Relaxed);
                loop {
                    let wait = if forcing {
                        // Re-sweep quickly until the worker announces
                        // Stopped: a dispatch spawned concurrently with a
                        // sweep might have missed the task-list snapshot.
                        Duration::from_millis(50)
                    } else {
                        shared.drain_deadline
                    };
                    // `done` closes when the worker announces Stopped, so
                    // a clean drain wakes (and ends) the watchdog
                    // immediately instead of parking it for the full
                    // deadline.
                    if tokio::time::timeout(wait, shared.done.acquire())
                        .await
                        .is_ok()
                    {
                        return; // drain complete
                    }
                    let occupancy = shared.depth.load(Ordering::Relaxed)
                        + shared.inflight.load(Ordering::Relaxed);
                    if !forcing && occupancy < last_occupancy {
                        // Progress since the last check: re-arm the full
                        // deadline instead of force-failing a healthy (if
                        // slow) drain of a deep backlog.
                        last_occupancy = occupancy;
                        continue;
                    }
                    forcing = true;
                    shared.force_failed.store(true, Ordering::Release);
                    let tasks = std::mem::take(&mut *shared.dispatch_tasks.lock());
                    for t in &tasks {
                        t.abort();
                    }
                }
            });
        }
    }

    /// Wait until the worker has exited and every accepted query settled
    /// (state `Stopped`). Must be preceded by [`ReplicaQueue::shutdown`]
    /// (directly or via replica removal), otherwise this waits forever.
    ///
    /// The drain finishes once every in-flight batch *resolves* — with an
    /// answer or an error. Transports with liveness probing (the TCP
    /// handle's heartbeats) fail their in-flight batches on a hang; for a
    /// custom transport whose future never resolves at all, the queue's
    /// [`QueueConfig::drain_deadline`] kicks in: the remaining dispatch
    /// tasks are aborted and every outstanding sink fail-fills via the
    /// complete-on-drop backstop, so this never waits forever.
    pub async fn drained(&self) {
        // The worker closes the semaphore on exit; a closed acquire is the
        // "done" signal. If it already closed, this returns immediately.
        let _ = self.shared.done.acquire().await;
    }
}

impl Drop for ReplicaQueue {
    fn drop(&mut self) {
        // Graceful even when the handle is just dropped: the worker drains
        // the backlog and exits once the channel closes. Sinks complete on
        // drop as the backstop if the runtime tears the worker down first.
        let _ = self.shared.state.compare_exchange(
            STATE_RUNNING,
            STATE_DRAINING,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.tx.get_mut().take();
    }
}

/// Spawn the pull-based worker for one replica.
pub fn spawn_replica_queue(
    id: String,
    transport: Arc<dyn BatchTransport>,
    cfg: QueueConfig,
    metrics: QueueMetrics,
) -> Arc<ReplicaQueue> {
    spawn_replica_queue_with_hooks(id, transport, cfg, metrics, QueueHooks::default())
}

/// [`spawn_replica_queue`] with recovery hooks wired in. The hooks are
/// how a standalone queue stays standalone: without a `redispatch`
/// hook, a failed batch fail-fills immediately (no retry); without a
/// `hedge_pick` hook, the hedge knob is inert. The model abstraction
/// layer supplies both so retry and hedging route across the fleet.
pub fn spawn_replica_queue_with_hooks(
    id: String,
    transport: Arc<dyn BatchTransport>,
    cfg: QueueConfig,
    metrics: QueueMetrics,
    hooks: QueueHooks,
) -> Arc<ReplicaQueue> {
    let (tx, rx) = mpsc::channel(cfg.queue_capacity.max(1));
    let latency_model = Arc::new(match cfg.latency_prior {
        Some(prior) => LatencyModel::with_prior(prior),
        None => LatencyModel::new(),
    });
    let controller = Arc::new(Mutex::new(cfg.strategy.build(
        cfg.slo,
        cfg.max_batch_cap,
        &latency_model,
    )));
    let shared = Arc::new(QueueShared {
        state: AtomicU8::new(STATE_RUNNING),
        depth: AtomicUsize::new(0),
        inflight: AtomicUsize::new(0),
        ewma_ns_per_item: AtomicU64::new(0),
        consecutive_errors: AtomicUsize::new(0),
        suspect_hint: AtomicBool::new(false),
        done: Semaphore::new(0),
        dispatch_tasks: Mutex::new(Vec::new()),
        force_failed: AtomicBool::new(false),
        drain_deadline: cfg.drain_deadline,
        latency_model,
        spare_items: Mutex::new(Vec::new()),
        spare_inputs: Mutex::new(Vec::new()),
        breaker: CircuitBreaker::new(cfg.breaker),
        hooks,
        retry_max_attempts: cfg.retry_max_attempts.max(1),
        hedge: cfg.hedge,
    });
    // Detached on purpose: the worker owns its own exit (channel close →
    // drain → Stopped), so no JoinHandle juggling is needed.
    tokio::spawn(worker_loop(
        rx,
        transport,
        controller.clone(),
        cfg.clone(),
        metrics.clone(),
        shared.clone(),
    ));
    Arc::new(ReplicaQueue {
        id,
        tx: Mutex::new(Some(tx)),
        shared,
        metrics,
        capacity: cfg.queue_capacity.max(1),
        controller,
    })
}

async fn worker_loop(
    mut rx: mpsc::Receiver<QueueItem>,
    transport: Arc<dyn BatchTransport>,
    controller: Arc<Mutex<Box<dyn BatchController>>>,
    cfg: QueueConfig,
    metrics: QueueMetrics,
    shared: Arc<QueueShared>,
) {
    let pipeline = cfg.pipeline_depth.max(1);
    let gate = Arc::new(Semaphore::new(pipeline));
    loop {
        let permit = match gate.clone().acquire_owned().await {
            Ok(p) => p,
            Err(_) => break,
        };
        // Pull: blocks until a query arrives or the channel closes (drain
        // begun and backlog consumed).
        let first = match rx.recv().await {
            Some(item) => item,
            None => break,
        };
        shared.depth.fetch_sub(1, Ordering::AcqRel);
        let max_batch = {
            let c = controller.lock();
            metrics.current_max_batch.set(c.max_batch() as i64);
            c.max_batch().min(cfg.max_batch_cap).max(1)
        };
        let mut items = shared.take_items_buf();
        items.push(first);
        if cfg.batch_wait_timeout > Duration::ZERO {
            // Delayed batching: hold the batch open briefly.
            let wait_deadline = tokio::time::Instant::now() + cfg.batch_wait_timeout;
            while items.len() < max_batch {
                match tokio::time::timeout_at(wait_deadline, rx.recv()).await {
                    Ok(Some(item)) => {
                        shared.depth.fetch_sub(1, Ordering::AcqRel);
                        items.push(item);
                    }
                    Ok(None) | Err(_) => break,
                }
            }
        } else {
            while items.len() < max_batch {
                match rx.try_recv() {
                    Ok(item) => {
                        shared.depth.fetch_sub(1, Ordering::AcqRel);
                        items.push(item);
                    }
                    Err(_) => break,
                }
            }
        }

        // Past the drain deadline the watchdog has aborted the wedged
        // in-flight batches; dispatching more at the hung transport would
        // re-wedge the drain, so the remaining backlog fail-fills here.
        if shared.force_failed.load(Ordering::Acquire) {
            let err = PredictError::Failed("replica drain deadline exceeded".into());
            metrics.errors.add(items.len() as u64);
            for item in items.drain(..) {
                item.sink.complete(Err(err.clone()));
            }
            shared.put_items_buf(items);
            drop(permit);
            continue;
        }

        // Circuit breaker: an open breaker inside its cooldown refuses
        // the batch outright. The items still get the full recovery
        // path — redispatch onto a sibling when within budget, typed
        // fail-fill otherwise — so a breaker trip is invisible to
        // clients whenever another replica can absorb the load.
        if !shared.breaker.admit_batch() {
            settle_upstream_failure(
                &mut items,
                UpstreamKind::BreakerOpen,
                true,
                &metrics,
                &shared,
            );
            shared.put_items_buf(items);
            drop(permit);
            continue;
        }

        let n = items.len();
        shared.inflight.fetch_add(n, Ordering::AcqRel);
        // The job struct travels inside the spawned future, so even if
        // the task is aborted before its first poll (drain-deadline
        // force-fail) the items settle and the counters release — in the
        // struct's field order.
        let job = BatchJob {
            items,
            inflight: InflightGuard {
                shared: shared.clone(),
                n,
            },
            permit,
        };
        let task = tokio::spawn(dispatch_batch(
            job,
            transport.clone(),
            controller.clone(),
            cfg.slo,
            metrics.clone(),
            shared.clone(),
        ));
        let mut tasks = shared.dispatch_tasks.lock();
        tasks.retain(|t| !t.is_finished());
        tasks.push(task);
    }
    // Drain finished: wait for every in-flight batch by collecting all
    // pipeline permits, then announce Stopped. Progress is guaranteed:
    // batches either resolve on their own, or the shutdown watchdog
    // aborts them at the drain deadline — releasing their permits and
    // fail-filling their sinks via complete-on-drop.
    let mut held = Vec::with_capacity(pipeline);
    for _ in 0..pipeline {
        match gate.clone().acquire_owned().await {
            Ok(p) => held.push(p),
            Err(_) => break,
        }
    }
    shared.state.store(STATE_STOPPED, Ordering::Release);
    shared.done.close();
}

/// Decrements the queue's in-flight count on drop, so the count stays
/// truthful even when a dispatch task is aborted by the drain deadline.
struct InflightGuard {
    shared: Arc<QueueShared>,
    n: usize,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(self.n, Ordering::AcqRel);
    }
}

/// Everything a dispatched batch owns. **Field order is load-bearing**:
/// when the dispatch task is aborted (drain-deadline force-fail) the
/// future drops this struct, and struct fields drop in declaration
/// order — the items settle first (their sinks fail-fill on drop), then
/// the in-flight count releases, and only then the pipeline permit. A
/// worker woken by the freed permit can therefore rely on every sink
/// having settled and the in-flight gauge reading true.
struct BatchJob {
    items: Vec<QueueItem>,
    inflight: InflightGuard,
    permit: tokio::sync::OwnedSemaphorePermit,
}

async fn dispatch_batch(
    job: BatchJob,
    transport: Arc<dyn BatchTransport>,
    controller: Arc<Mutex<Box<dyn BatchController>>>,
    slo: Duration,
    metrics: QueueMetrics,
    shared: Arc<QueueShared>,
) {
    let dispatch_time = Instant::now();
    for item in &job.items {
        metrics
            .queue_us
            .record(item.enqueued.elapsed().as_micros() as u64);
    }
    // Zero-copy batch assembly: clone Arc pointers, never feature data.
    // The buffer itself is recycled across batches (see `QueueShared`
    // spare pools), so no per-batch allocation either.
    let mut inputs = shared.take_inputs_buf();
    inputs.extend(job.items.iter().map(|i| i.input.clone()));
    let n = job.items.len();
    metrics.batch_size.record(n as u64);

    // `job` stays intact across the awaits: if the drain watchdog
    // aborts this task mid-flight, dropping it settles sinks →
    // inflight → permit, in that order (see [`BatchJob`]).
    //
    // Hedging: the primary RPC races a model-derived straggler timer.
    // If the timer fires first and a sibling transport is available,
    // the same inputs dispatch there too and the first success wins —
    // the loser's completion is simply never awaited (transport
    // futures own their request state, so dropping one is a no-op at
    // this layer).
    let mut primary = transport.predict_batch(&inputs);
    let mut hedge_won = false;
    let result = match hedge_delay(&shared, n) {
        Some(delay) => match tokio::time::timeout(delay, &mut primary).await {
            Ok(r) => r,
            Err(_) => {
                let picked = shared.hooks.hedge_pick.as_ref().and_then(|pick| pick());
                match picked {
                    Some(backup) => {
                        metrics.hedged.inc();
                        let mut hedge = backup.predict_batch(&inputs);
                        match race(&mut primary, &mut hedge).await {
                            RaceOutcome::Primary(Ok(r)) => Ok(r),
                            RaceOutcome::Hedge(Ok(r)) => {
                                hedge_won = true;
                                Ok(r)
                            }
                            // A failed primary still has a hedge in
                            // flight — give it the chance to rescue
                            // the batch before reporting the error.
                            RaceOutcome::Primary(Err(e)) => match hedge.await {
                                Ok(r) => {
                                    hedge_won = true;
                                    Ok(r)
                                }
                                Err(_) => Err(e),
                            },
                            RaceOutcome::Hedge(Err(_)) => primary.await,
                        }
                    }
                    None => primary.await,
                }
            }
        },
        None => primary.await,
    };
    shared.put_inputs_buf(inputs);
    let BatchJob {
        mut items,
        inflight,
        permit,
    } = job;
    let rpc_elapsed = dispatch_time.elapsed();
    // A hedge win says nothing about *this* replica's latency or
    // health, so the batch controller, latency model, EWMA, error
    // streak, and breaker all skip the sample — only the primary's own
    // completions feed its estimators.
    if !hedge_won {
        controller.lock().record(n, rpc_elapsed);
        shared.latency_model.observe(n, rpc_elapsed);
    }
    metrics.rpc_us.record(rpc_elapsed.as_micros() as u64);
    if rpc_elapsed > slo {
        metrics.slo_violations.inc();
    }

    match result {
        Ok(reply) if reply.outputs.len() == n => {
            metrics.remote_queue_us.record(reply.queue_us);
            metrics.predict_us.record(reply.compute_us);
            let overhead =
                (rpc_elapsed.as_micros() as u64).saturating_sub(reply.queue_us + reply.compute_us);
            metrics.overhead_us.record(overhead);
            metrics.completed.mark_n(n as u64);
            if !hedge_won {
                // Service-rate sample: container compute per query,
                // falling back to the round trip when the container
                // didn't report.
                let batch_us = if reply.compute_us > 0 {
                    reply.compute_us
                } else {
                    rpc_elapsed.as_micros() as u64
                };
                shared.record_service((batch_us.saturating_mul(1_000)) / n as u64);
                shared.consecutive_errors.store(0, Ordering::Relaxed);
                shared.breaker.record(true);
            }
            for (item, output) in items.drain(..).zip(reply.outputs) {
                item.sink.complete(Ok(output));
            }
        }
        Ok(reply) => {
            shared.consecutive_errors.fetch_add(1, Ordering::Relaxed);
            shared.breaker.record(false);
            metrics.errors.add(n as u64);
            // A malformed reply is not retryable: the replica is
            // reachable but wrong, and a different replica may well
            // agree with it.
            let err = PredictError::Failed(format!(
                "container returned {} outputs for {} inputs",
                reply.outputs.len(),
                n
            ));
            for item in items.drain(..) {
                item.sink.complete(Err(err.clone()));
            }
        }
        Err(e) => {
            shared.consecutive_errors.fetch_add(1, Ordering::Relaxed);
            shared.breaker.record(false);
            settle_upstream_failure(
                &mut items,
                UpstreamKind::of(&e),
                e.is_retryable(),
                &metrics,
                &shared,
            );
        }
    }
    shared.put_items_buf(items);
    drop(inflight);
    drop(permit);
}

/// The straggler threshold for hedged dispatch, or `None` when hedging
/// is off (no [`QueueConfig::hedge`]) or can't act (no `hedge_pick`
/// hook to find a sibling).
fn hedge_delay(shared: &QueueShared, batch: usize) -> Option<Duration> {
    let h = shared.hedge.as_ref()?;
    shared.hooks.hedge_pick.as_ref()?;
    let predicted = shared
        .latency_model
        .predict_ns(batch)
        .map(|ns| Duration::from_nanos((ns as f64 * h.delay_factor) as u64));
    Some(predicted.map_or(h.min_delay, |d| d.max(h.min_delay)))
}

enum RaceOutcome<T> {
    Primary(T),
    Hedge(T),
}

/// Race two in-flight RPCs; primary wins ties (it's polled first).
async fn race<T>(
    a: &mut (impl Future<Output = T> + Unpin),
    b: &mut (impl Future<Output = T> + Unpin),
) -> RaceOutcome<T> {
    std::future::poll_fn(|cx| {
        if let std::task::Poll::Ready(r) = std::pin::Pin::new(&mut *a).poll(cx) {
            return std::task::Poll::Ready(RaceOutcome::Primary(r));
        }
        if let std::task::Poll::Ready(r) = std::pin::Pin::new(&mut *b).poll(cx) {
            return std::task::Poll::Ready(RaceOutcome::Hedge(r));
        }
        std::task::Poll::Pending
    })
    .await
}

/// Settle a failed batch item-by-item: items that are retryable, inside
/// their deadline budget, and under the attempt cap go back to the
/// scheduler for redispatch onto a different replica; the rest
/// fail-fill with a typed [`PredictError::Upstream`]. `errors` counts
/// only the fail-filled items — a rescued item is not a client-visible
/// error.
fn settle_upstream_failure(
    items: &mut Vec<QueueItem>,
    kind: UpstreamKind,
    retryable: bool,
    metrics: &QueueMetrics,
    shared: &QueueShared,
) {
    let now = Instant::now();
    for mut item in items.drain(..) {
        item.attempts += 1;
        let within_budget = item.deadline.is_none_or(|d| now < d);
        if retryable && within_budget && item.attempts < shared.retry_max_attempts {
            if let Some(redispatch) = shared.hooks.redispatch.as_ref() {
                // Queue-wait restarts on the new queue; the deadline
                // budget, deliberately, does not.
                item.enqueued = Instant::now();
                match redispatch(item) {
                    Ok(()) => {
                        metrics.retried.inc();
                        continue;
                    }
                    Err(back) => item = back,
                }
            }
        }
        metrics.errors.inc();
        let attempts = item.attempts;
        item.sink.complete(Err(PredictError::Upstream {
            kind,
            retryable,
            attempts,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::breaker::BreakerState;
    use crate::batching::BatchStrategy;
    use clipper_rpc::message::{PredictReply, WireOutput};
    use clipper_rpc::transport::FnTransport;

    /// A transport that sleeps, then fails — for hedge/straggler tests
    /// (`FnTransport` resolves synchronously, so it can't straggle).
    struct SlowFailTransport {
        delay: Duration,
    }

    impl BatchTransport for SlowFailTransport {
        fn predict_batch(
            &self,
            _inputs: &[Input],
        ) -> clipper_rpc::transport::BoxFuture<Result<PredictReply, clipper_rpc::RpcError>>
        {
            let delay = self.delay;
            Box::pin(async move {
                tokio::time::sleep(delay).await;
                Err(clipper_rpc::RpcError::ConnectionClosed)
            })
        }

        fn id(&self) -> String {
            "slow-fail".into()
        }
    }

    fn echo_transport() -> Arc<dyn BatchTransport> {
        Arc::new(FnTransport::new("echo", |inputs: &[Input]| {
            Ok(PredictReply {
                outputs: inputs
                    .iter()
                    .map(|x| WireOutput::Class(x[0] as u32))
                    .collect(),
                queue_us: 5,
                compute_us: 10,
            })
        }))
    }

    fn test_metrics() -> QueueMetrics {
        QueueMetrics::register(&Registry::new(), "q")
    }

    fn direct_item(v: f32) -> (QueueItem, oneshot::Receiver<Result<Output, PredictError>>) {
        let (tx, rx) = oneshot::channel();
        (QueueItem::new(Arc::new(vec![v]), ReplySink::direct(tx)), rx)
    }

    #[tokio::test]
    async fn queries_flow_through_and_answers_match() {
        let q = spawn_replica_queue(
            "m:0".into(),
            echo_transport(),
            QueueConfig::default(),
            test_metrics(),
        );
        let mut rxs = Vec::new();
        for v in 0..20 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rxs.push((v, rx));
        }
        for (v, rx) in rxs {
            let out = rx.await.unwrap().unwrap();
            assert_eq!(out, Output::Class(v as u32));
        }
        assert!(q.metrics().completed.count() >= 20);
        assert_eq!(q.state(), QueueState::Running);
    }

    #[tokio::test]
    async fn dispatch_shares_the_callers_input_arcs() {
        // Zero-copy: the transport must observe the very allocation the
        // submitter enqueued, not a deep copy.
        let original: Input = Arc::new(vec![4.0]);
        let probe = original.clone();
        let t: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("ptr-check", move |inputs: &[Input]| {
                assert!(
                    inputs.iter().any(|i| Arc::ptr_eq(i, &probe)),
                    "batch must share the submitted Arc"
                );
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(0); inputs.len()],
                    queue_us: 0,
                    compute_us: 0,
                })
            }));
        let q = spawn_replica_queue("m:0".into(), t, QueueConfig::default(), test_metrics());
        let (tx, rx) = oneshot::channel();
        q.submit(QueueItem::new(original, ReplySink::direct(tx)));
        rx.await.unwrap().unwrap();
    }

    #[tokio::test]
    async fn batches_form_under_burst() {
        // A slow transport forces queries to pile up; later batches should
        // be larger than 1.
        let slow: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("slow", |inputs: &[Input]| {
                std::thread::sleep(Duration::from_millis(5));
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(0); inputs.len()],
                    queue_us: 0,
                    compute_us: 5_000,
                })
            }));
        let metrics = test_metrics();
        let q = spawn_replica_queue(
            "m:0".into(),
            slow,
            QueueConfig {
                strategy: BatchStrategy::Fixed(64),
                ..Default::default()
            },
            metrics.clone(),
        );
        let mut rxs = Vec::new();
        for v in 0..100 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rxs.push(rx);
        }
        for rx in rxs {
            rx.await.unwrap().unwrap();
        }
        let snap = metrics.batch_size.snapshot();
        assert!(
            snap.max() > 1,
            "burst should form multi-query batches, max was {}",
            snap.max()
        );
    }

    #[tokio::test]
    async fn overload_sheds_with_overloaded_error() {
        // A transport that never completes within the test window.
        let stuck: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("stuck", |inputs: &[Input]| {
                std::thread::sleep(Duration::from_millis(200));
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(0); inputs.len()],
                    queue_us: 0,
                    compute_us: 0,
                })
            }));
        let metrics = test_metrics();
        let q = spawn_replica_queue(
            "m:0".into(),
            stuck,
            QueueConfig {
                strategy: BatchStrategy::NoBatching,
                queue_capacity: 4,
                ..Default::default()
            },
            metrics.clone(),
        );
        let mut saw_overload = false;
        let mut rxs = Vec::new();
        for v in 0..64 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rxs.push(rx);
        }
        for rx in rxs {
            if let Ok(Err(PredictError::Overloaded)) = rx.await {
                saw_overload = true;
            }
        }
        assert!(saw_overload, "expected load shedding");
        assert!(metrics.shed.get() > 0);
    }

    #[tokio::test]
    async fn queue_depth_is_visible_and_try_submit_hands_items_back() {
        let stuck: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("stuck", |inputs: &[Input]| {
                std::thread::sleep(Duration::from_millis(100));
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(0); inputs.len()],
                    queue_us: 0,
                    compute_us: 0,
                })
            }));
        let q = spawn_replica_queue(
            "m:0".into(),
            stuck,
            QueueConfig {
                strategy: BatchStrategy::NoBatching,
                queue_capacity: 4,
                ..Default::default()
            },
            test_metrics(),
        );
        let mut rxs = Vec::new();
        let mut refused = None;
        // One item is pulled by the worker immediately; keep pushing until
        // the 4-slot channel itself refuses.
        for v in 0..16 {
            let (item, rx) = direct_item(v as f32);
            rxs.push(rx);
            if let Err(item) = q.try_submit(item) {
                refused = Some(item);
                break;
            }
        }
        let refused = refused.expect("a full queue must hand the item back");
        assert!(!q.has_room(), "queue should report no room when full");
        assert!(
            q.len() >= 3,
            "channel occupancy should be visible, len {}",
            q.len()
        );
        // The handed-back item is intact and routable elsewhere — complete
        // it manually to prove the sink survived.
        refused.sink.complete(Err(PredictError::Overloaded));
        drop(rxs);
    }

    #[tokio::test]
    async fn transport_failure_fails_the_batch() {
        let bad: Arc<dyn BatchTransport> = Arc::new(FnTransport::new("bad", |_: &[Input]| {
            Err(clipper_rpc::RpcError::Remote("dead".into()))
        }));
        let q = spawn_replica_queue("m:0".into(), bad, QueueConfig::default(), test_metrics());
        let (item, rx) = direct_item(1.0);
        q.submit(item);
        let err = rx.await.unwrap().unwrap_err();
        // `Remote` is non-retryable, so the single attempt fail-fills
        // with the typed upstream error (503-vs-500 decided by it).
        assert!(matches!(
            err,
            PredictError::Upstream {
                kind: UpstreamKind::Remote,
                retryable: false,
                attempts: 1,
            }
        ));
        assert_eq!(err.http_status(), 500);
    }

    #[tokio::test]
    async fn output_count_mismatch_is_an_error() {
        let short: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("short", |_: &[Input]| {
                Ok(PredictReply {
                    outputs: vec![], // wrong count
                    queue_us: 0,
                    compute_us: 0,
                })
            }));
        let q = spawn_replica_queue("m:0".into(), short, QueueConfig::default(), test_metrics());
        let (item, rx) = direct_item(1.0);
        q.submit(item);
        let err = rx.await.unwrap().unwrap_err();
        assert!(matches!(err, PredictError::Failed(ref m) if m.contains("outputs")));
    }

    #[tokio::test]
    async fn delayed_batching_holds_for_stragglers() {
        // With a 20ms wait timeout and queries arriving 2ms apart, the
        // first batch should scoop up several queries.
        let metrics = test_metrics();
        let q = spawn_replica_queue(
            "m:0".into(),
            echo_transport(),
            QueueConfig {
                strategy: BatchStrategy::Fixed(64),
                batch_wait_timeout: Duration::from_millis(20),
                ..Default::default()
            },
            metrics.clone(),
        );
        let mut rxs = Vec::new();
        for v in 0..5 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rxs.push(rx);
            tokio::time::sleep(Duration::from_millis(2)).await;
        }
        for rx in rxs {
            rx.await.unwrap().unwrap();
        }
        let snap = metrics.batch_size.snapshot();
        assert!(
            snap.max() >= 3,
            "delayed batching should group arrivals, max batch {}",
            snap.max()
        );
    }

    #[tokio::test]
    async fn cache_sink_fills_cache_and_wakes_waiters() {
        let cache = PredictionCache::new(16);
        let model = crate::types::ModelId::new("m", 1);
        let input: Input = Arc::new(vec![3.0]);
        let key = CacheKey::new(&model, &input);
        let rx = match cache.lookup_or_pending(key) {
            crate::cache::Lookup::MustCompute(rx) => rx,
            _ => panic!(),
        };
        let q = spawn_replica_queue(
            "m:0".into(),
            echo_transport(),
            QueueConfig::default(),
            test_metrics(),
        );
        q.submit(QueueItem::new(
            input.clone(),
            ReplySink::cache(cache.clone(), key),
        ));
        let out = rx.await.unwrap().unwrap();
        assert_eq!(out, Output::Class(3));
        assert_eq!(cache.fetch(key), Some(Output::Class(3)));
    }

    #[tokio::test]
    async fn dropping_a_cache_sink_fails_the_pending_entry() {
        // Regression: a queue item destroyed without dispatch must not
        // wedge cache waiters forever.
        let cache = PredictionCache::new(16);
        let model = crate::types::ModelId::new("m", 1);
        let input: Input = Arc::new(vec![9.0]);
        let key = CacheKey::new(&model, &input);
        let rx = match cache.lookup_or_pending(key) {
            crate::cache::Lookup::MustCompute(rx) => rx,
            _ => panic!(),
        };
        let item = QueueItem::new(input, ReplySink::cache(cache.clone(), key));
        drop(item);
        assert_eq!(cache.pending_len(), 0, "drop must fail-fill the entry");
        let filled = rx.await.unwrap();
        assert!(matches!(
            filled,
            Err(CacheFillError::Predict(PredictError::Failed(_)))
        ));
    }

    #[tokio::test]
    async fn shutdown_drains_the_backlog_and_stops() {
        // A modestly slow transport so a real backlog forms, then drain:
        // every accepted query must still be answered.
        let slowish: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("slowish", |inputs: &[Input]| {
                std::thread::sleep(Duration::from_millis(2));
                Ok(PredictReply {
                    outputs: inputs
                        .iter()
                        .map(|x| WireOutput::Class(x[0] as u32))
                        .collect(),
                    queue_us: 0,
                    compute_us: 2_000,
                })
            }));
        let q = spawn_replica_queue(
            "m:0".into(),
            slowish,
            QueueConfig {
                strategy: BatchStrategy::Fixed(8),
                ..Default::default()
            },
            test_metrics(),
        );
        let mut rxs = Vec::new();
        for v in 0..40 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rxs.push((v, rx));
        }
        q.shutdown();
        assert_ne!(q.state(), QueueState::Running);
        // New submissions are refused during drain.
        let (late, late_rx) = direct_item(99.0);
        assert!(q.try_submit(late).is_err(), "draining queue must refuse");
        drop(late_rx);
        // Every accepted query completes with its real answer.
        for (v, rx) in rxs {
            let out = rx.await.unwrap().unwrap();
            assert_eq!(out, Output::Class(v as u32));
        }
        q.drained().await;
        assert_eq!(q.state(), QueueState::Stopped);
        assert_eq!(q.len(), 0);
        assert_eq!(q.inflight(), 0);
    }

    #[tokio::test]
    async fn shutdown_under_load_leaves_no_pending_cache_entries() {
        // Regression for the wedged-waiter bug: shut a queue down with
        // cache-sink items queued; after the drain no pending entry may
        // remain (each is filled or fail-filled).
        let cache = PredictionCache::new(256);
        let model = crate::types::ModelId::new("m", 1);
        let slowish: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("slowish", |inputs: &[Input]| {
                std::thread::sleep(Duration::from_millis(1));
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(1); inputs.len()],
                    queue_us: 0,
                    compute_us: 1_000,
                })
            }));
        let q = spawn_replica_queue(
            "m:0".into(),
            slowish,
            QueueConfig {
                strategy: BatchStrategy::Fixed(4),
                ..Default::default()
            },
            test_metrics(),
        );
        let mut rxs = Vec::new();
        for v in 0..64 {
            let input: Input = Arc::new(vec![v as f32]);
            let key = CacheKey::new(&model, &input);
            let rx = match cache.lookup_or_pending(key) {
                crate::cache::Lookup::MustCompute(rx) => rx,
                _ => panic!("fresh key must be MustCompute"),
            };
            rxs.push(rx);
            q.submit(QueueItem::new(input, ReplySink::cache(cache.clone(), key)));
        }
        q.shutdown();
        q.drained().await;
        assert_eq!(
            cache.pending_len(),
            0,
            "drain must fill or fail-fill every pending entry"
        );
        // Every waiter was woken with *something*.
        for rx in rxs {
            let _ = rx.await.expect("waiter must be woken, not dropped");
        }
    }

    /// A transport whose batch future never resolves: the pending reply is
    /// parked on a oneshot whose sender is intentionally leaked.
    fn hung_transport() -> Arc<dyn BatchTransport> {
        struct Hung;
        impl BatchTransport for Hung {
            fn predict_batch(
                &self,
                _inputs: &[Input],
            ) -> clipper_rpc::BoxFuture<Result<PredictReply, clipper_rpc::RpcError>> {
                let (tx, rx) = oneshot::channel::<()>();
                std::mem::forget(tx);
                Box::pin(async move {
                    let _ = rx.await;
                    Err(clipper_rpc::RpcError::ConnectionClosed)
                })
            }
            fn id(&self) -> String {
                "hung".into()
            }
        }
        Arc::new(Hung)
    }

    #[tokio::test]
    async fn drain_deadline_unwedges_a_hung_transport() {
        // Regression for the ROADMAP item: a BatchTransport whose future
        // never resolves used to stall `drained()` forever. With a drain
        // deadline the remaining in-flight sinks are force-failed.
        let q = spawn_replica_queue(
            "m:0".into(),
            hung_transport(),
            QueueConfig {
                strategy: BatchStrategy::NoBatching,
                drain_deadline: Duration::from_millis(100),
                ..Default::default()
            },
            test_metrics(),
        );
        let mut rxs = Vec::new();
        for v in 0..4 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rxs.push(rx);
        }
        let start = Instant::now();
        q.shutdown();
        q.drained().await;
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "drain must not hang, took {:?}",
            start.elapsed()
        );
        assert_eq!(q.state(), QueueState::Stopped);
        assert_eq!(q.inflight(), 0, "aborted batches release in-flight");
        // Every waiter settles with an error — none is wedged.
        for rx in rxs {
            let settled = rx.await.expect("waiter woken");
            assert!(settled.is_err());
        }
    }

    #[tokio::test]
    async fn slow_but_healthy_drain_outlasting_the_deadline_is_not_cut_short() {
        // Total drain time (10 items × ~20 ms) far exceeds the 50 ms
        // deadline, but every batch makes progress — the watchdog must
        // keep re-arming and every accepted query must get its real
        // answer, not a force-fail.
        struct SlowAsync;
        impl BatchTransport for SlowAsync {
            fn predict_batch(
                &self,
                inputs: &[Input],
            ) -> clipper_rpc::BoxFuture<Result<PredictReply, clipper_rpc::RpcError>> {
                let outs: Vec<WireOutput> = inputs
                    .iter()
                    .map(|x| WireOutput::Class(x[0] as u32))
                    .collect();
                Box::pin(async move {
                    tokio::time::sleep(Duration::from_millis(20)).await;
                    Ok(PredictReply {
                        outputs: outs,
                        queue_us: 0,
                        compute_us: 20_000,
                    })
                })
            }
            fn id(&self) -> String {
                "slow-async".into()
            }
        }
        let q = spawn_replica_queue(
            "m:0".into(),
            Arc::new(SlowAsync),
            QueueConfig {
                strategy: BatchStrategy::NoBatching,
                drain_deadline: Duration::from_millis(50),
                ..Default::default()
            },
            test_metrics(),
        );
        let mut rxs = Vec::new();
        for v in 0..10 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rxs.push((v, rx));
        }
        q.shutdown();
        q.drained().await;
        for (v, rx) in rxs {
            let out = rx
                .await
                .unwrap()
                .expect("progressing drain must not force-fail");
            assert_eq!(out, Output::Class(v as u32));
        }
    }

    #[tokio::test]
    async fn drain_deadline_fails_pending_cache_entries_of_a_hung_transport() {
        let cache = PredictionCache::new(16);
        let model = crate::types::ModelId::new("m", 1);
        let q = spawn_replica_queue(
            "m:0".into(),
            hung_transport(),
            QueueConfig {
                strategy: BatchStrategy::NoBatching,
                drain_deadline: Duration::from_millis(100),
                ..Default::default()
            },
            test_metrics(),
        );
        let input: Input = Arc::new(vec![5.0]);
        let key = CacheKey::new(&model, &input);
        let rx = match cache.lookup_or_pending(key) {
            crate::cache::Lookup::MustCompute(rx) => rx,
            _ => panic!(),
        };
        q.submit(QueueItem::new(input, ReplySink::cache(cache.clone(), key)));
        q.shutdown();
        q.drained().await;
        assert_eq!(cache.pending_len(), 0, "force-fail must settle the entry");
        assert!(matches!(
            rx.await.unwrap(),
            Err(CacheFillError::Predict(PredictError::Failed(_)))
        ));
    }

    #[tokio::test]
    async fn service_rate_ewma_tracks_the_container() {
        let q = spawn_replica_queue(
            "m:0".into(),
            echo_transport(), // reports compute_us = 10 per batch
            QueueConfig {
                strategy: BatchStrategy::NoBatching,
                ..Default::default()
            },
            test_metrics(),
        );
        for v in 0..10 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rx.await.unwrap().unwrap();
        }
        let ewma = q.service_ewma_us_per_item();
        assert!(
            ewma > 0.0 && ewma < 1_000.0,
            "EWMA should reflect ~10µs batches, got {ewma}"
        );
        assert!(
            q.backlog_estimate_ns() < 1_000_000,
            "idle queue ≈ no backlog"
        );
    }

    #[tokio::test]
    async fn retryable_failure_redispatches_through_the_hook() {
        // Primary always drops the batch; the redispatch hook forwards
        // the item onto a healthy sibling queue. The client must see a
        // clean answer and the retried counter must tick.
        let flaky: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("flaky", |_: &[Input]| {
                Err(clipper_rpc::RpcError::Injected)
            }));
        let backup = spawn_replica_queue(
            "m:1".into(),
            echo_transport(),
            QueueConfig::default(),
            test_metrics(),
        );
        let backup_for_hook = backup.clone();
        let hooks = QueueHooks {
            redispatch: Some(Arc::new(move |item| backup_for_hook.try_submit(item))),
            hedge_pick: None,
        };
        let metrics = test_metrics();
        let q = spawn_replica_queue_with_hooks(
            "m:0".into(),
            flaky,
            QueueConfig::default(),
            metrics.clone(),
            hooks,
        );
        let (tx, rx) = oneshot::channel();
        q.submit(QueueItem::with_deadline(
            Arc::new(vec![7.0]),
            ReplySink::direct(tx),
            Instant::now() + Duration::from_secs(5),
        ));
        let out = rx.await.unwrap().unwrap();
        assert_eq!(out, Output::Class(7));
        assert_eq!(metrics.retried.get(), 1);
        assert_eq!(metrics.errors.get(), 0, "a rescued item is not an error");
    }

    #[tokio::test]
    async fn budget_exhaustion_fail_fills_with_a_typed_error() {
        // No sibling can take the item (hook refuses), so each attempt
        // consumes budget until the typed Upstream error surfaces.
        let flaky: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("flaky", |_: &[Input]| {
                Err(clipper_rpc::RpcError::Timeout)
            }));
        let hooks = QueueHooks {
            redispatch: Some(Arc::new(Err)), // nobody will take it
            hedge_pick: None,
        };
        let q = spawn_replica_queue_with_hooks(
            "m:0".into(),
            flaky,
            QueueConfig::default(),
            test_metrics(),
            hooks,
        );
        let (tx, rx) = oneshot::channel();
        q.submit(QueueItem::with_deadline(
            Arc::new(vec![1.0]),
            ReplySink::direct(tx),
            Instant::now() + Duration::from_secs(5),
        ));
        let err = rx.await.unwrap().unwrap_err();
        assert!(matches!(
            err,
            PredictError::Upstream {
                kind: UpstreamKind::Timeout,
                retryable: true,
                attempts: 1,
            }
        ));
        assert_eq!(err.http_status(), 503, "retryable upstream is a 503");
    }

    #[tokio::test]
    async fn breaker_opens_and_sheds_to_the_redispatch_hook() {
        // Trip the breaker with a failure streak, then confirm the
        // worker refuses batches up front (BreakerOpen) while the
        // redispatch hook keeps rescuing in-budget items.
        let flaky: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("flaky", |_: &[Input]| {
                Err(clipper_rpc::RpcError::ConnectionClosed)
            }));
        let backup = spawn_replica_queue(
            "m:1".into(),
            echo_transport(),
            QueueConfig::default(),
            test_metrics(),
        );
        let backup_for_hook = backup.clone();
        let hooks = QueueHooks {
            redispatch: Some(Arc::new(move |item| backup_for_hook.try_submit(item))),
            hedge_pick: None,
        };
        let cfg = QueueConfig {
            strategy: BatchStrategy::NoBatching,
            breaker: BreakerConfig {
                streak: 2,
                cooldown: Duration::from_secs(30),
                ..Default::default()
            },
            ..Default::default()
        };
        let q = spawn_replica_queue_with_hooks("m:0".into(), flaky, cfg, test_metrics(), hooks);
        for v in 0..6 {
            let (tx, rx) = oneshot::channel();
            q.submit(QueueItem::with_deadline(
                Arc::new(vec![v as f32]),
                ReplySink::direct(tx),
                Instant::now() + Duration::from_secs(5),
            ));
            let out = rx.await.unwrap().unwrap();
            assert_eq!(out, Output::Class(v));
        }
        assert_eq!(q.breaker().state(), BreakerState::Open);
        assert!(q.is_suspect(), "an open breaker marks the queue suspect");
        assert!(q.breaker().opened() >= 1);
    }

    #[tokio::test]
    async fn breaker_open_and_drain_settle_every_sink_exactly_once() {
        // Breaker-open shed racing a graceful drain on the same queue:
        // every sink settles exactly once and the drain completes.
        let flaky: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("flaky", |_: &[Input]| {
                Err(clipper_rpc::RpcError::ConnectionClosed)
            }));
        let cfg = QueueConfig {
            strategy: BatchStrategy::NoBatching,
            breaker: BreakerConfig {
                streak: 1,
                cooldown: Duration::from_secs(30),
                ..Default::default()
            },
            ..Default::default()
        };
        let q = spawn_replica_queue("m:0".into(), flaky, cfg, test_metrics());
        let mut rxs = Vec::new();
        for v in 0..16 {
            let (tx, rx) = oneshot::channel();
            q.submit(QueueItem::new(
                Arc::new(vec![v as f32]),
                ReplySink::direct(tx),
            ));
            rxs.push(rx);
        }
        q.shutdown();
        q.shutdown(); // idempotent alongside the breaker trip
        q.drained().await;
        for rx in rxs {
            assert!(rx.await.unwrap().is_err(), "all sinks settle with errors");
        }
        assert_eq!(q.state(), QueueState::Stopped);
    }

    #[tokio::test]
    async fn redispatch_never_lands_on_a_draining_queue() {
        // The sibling is draining: try_submit must bounce the item back
        // so it fail-fills instead of sneaking into a closing backlog.
        let flaky: Arc<dyn BatchTransport> =
            Arc::new(FnTransport::new("flaky", |_: &[Input]| {
                Err(clipper_rpc::RpcError::Injected)
            }));
        let draining = spawn_replica_queue(
            "m:1".into(),
            echo_transport(),
            QueueConfig::default(),
            test_metrics(),
        );
        draining.shutdown();
        draining.drained().await;
        let draining_for_hook = draining.clone();
        let hooks = QueueHooks {
            redispatch: Some(Arc::new(move |item| draining_for_hook.try_submit(item))),
            hedge_pick: None,
        };
        let q = spawn_replica_queue_with_hooks(
            "m:0".into(),
            flaky,
            QueueConfig::default(),
            test_metrics(),
            hooks,
        );
        let (tx, rx) = oneshot::channel();
        q.submit(QueueItem::with_deadline(
            Arc::new(vec![1.0]),
            ReplySink::direct(tx),
            Instant::now() + Duration::from_secs(5),
        ));
        let err = rx.await.unwrap().unwrap_err();
        assert!(matches!(err, PredictError::Upstream { .. }));
    }

    #[tokio::test]
    async fn hedge_rescues_a_straggling_primary() {
        // Primary hangs far past the hedge delay; the hedge transport
        // answers instantly and its result wins.
        let stuck: Arc<dyn BatchTransport> = Arc::new(SlowFailTransport {
            delay: Duration::from_secs(30),
        });
        let hooks = QueueHooks {
            redispatch: None,
            hedge_pick: Some(Arc::new(|| {
                Some(Arc::new(FnTransport::new("backup", |inputs: &[Input]| {
                    Ok(PredictReply {
                        outputs: inputs
                            .iter()
                            .map(|x| WireOutput::Class(x[0] as u32))
                            .collect(),
                        queue_us: 0,
                        compute_us: 0,
                    })
                })) as Arc<dyn BatchTransport>)
            })),
        };
        let metrics = test_metrics();
        let cfg = QueueConfig {
            strategy: BatchStrategy::NoBatching,
            hedge: Some(HedgeConfig {
                delay_factor: 3.0,
                min_delay: Duration::from_millis(5),
            }),
            ..Default::default()
        };
        let q = spawn_replica_queue_with_hooks("m:0".into(), stuck, cfg, metrics.clone(), hooks);
        let (tx, rx) = oneshot::channel();
        q.submit(QueueItem::new(Arc::new(vec![9.0]), ReplySink::direct(tx)));
        let out = rx.await.unwrap().unwrap();
        assert_eq!(out, Output::Class(9));
        assert_eq!(metrics.hedged.get(), 1);
    }

    #[tokio::test]
    async fn hedge_with_both_sides_failing_settles_every_sink_once() {
        // Primary is slow-then-dead, hedge fails fast: the batch must
        // still settle exactly once per sink (pending_len bookkeeping
        // proves no double-complete and no leak).
        let slow_dead: Arc<dyn BatchTransport> = Arc::new(SlowFailTransport {
            delay: Duration::from_millis(20),
        });
        let hooks = QueueHooks {
            redispatch: None,
            hedge_pick: Some(Arc::new(|| {
                Some(Arc::new(FnTransport::new("bad-backup", |_: &[Input]| {
                    Err(clipper_rpc::RpcError::ConnectionClosed)
                })) as Arc<dyn BatchTransport>)
            })),
        };
        let cfg = QueueConfig {
            strategy: BatchStrategy::NoBatching,
            hedge: Some(HedgeConfig {
                delay_factor: 3.0,
                min_delay: Duration::from_millis(2),
            }),
            ..Default::default()
        };
        let cache = PredictionCache::new(16);
        let model = crate::types::ModelId::new("m", 1);
        let input: Input = Arc::new(vec![4.0]);
        let key = CacheKey::new(&model, &input);
        let q = spawn_replica_queue_with_hooks("m:0".into(), slow_dead, cfg, test_metrics(), hooks);
        let rx = match cache.lookup_or_pending(key) {
            crate::cache::Lookup::MustCompute(rx) => rx,
            _ => panic!(),
        };
        q.submit(QueueItem::new(input, ReplySink::cache(cache.clone(), key)));
        let filled = rx.await.unwrap();
        assert!(matches!(
            filled,
            Err(CacheFillError::Predict(PredictError::Upstream { .. }))
        ));
        assert_eq!(cache.pending_len(), 0, "every sink settled exactly once");
    }
}
