//! §4.2 — prediction caching accelerates feedback processing.
//!
//! A four-model ensemble (the paper's: random forest, logistic regression,
//! linear SVM ×2) receives feedback for recently-served queries. With the
//! cache, the feedback join finds all four predictions hot; without it,
//! every observation re-evaluates every model. The paper measured 1.6×
//! (≈6K → 11K observations/second).
//!
//! Also sweeps cache capacity to show the hit-rate cliff (ablation).

use clipper_bench::{distinct_input, phase_duration};
use clipper_containers::{
    ContainerConfig, ContainerLogic, LatencyProfile, LocalContainerTransport, ModelContainer,
    TimingModel,
};
use clipper_core::{AppConfig, BatchConfig, Clipper, Feedback, ModelId, PolicyKind};
use clipper_workload::report::fmt_qps;
use clipper_workload::{run_closed_loop, Table};
use std::time::Duration;

fn build_stack(cache_capacity: usize, enabled: bool) -> Clipper {
    let mut builder = Clipper::builder().cache_capacity(cache_capacity);
    if !enabled {
        builder = builder.disable_cache();
    }
    let clipper = builder.build();
    let mut ids = Vec::new();
    for name in [
        "random-forest",
        "logreg",
        "linear-svm-sk",
        "linear-svm-spark",
    ] {
        let id = ModelId::new(name, 1);
        clipper.add_model(id.clone(), BatchConfig::default());
        let container = ModelContainer::new(ContainerConfig {
            name: format!("{name}:0"),
            model_name: name.to_string(),
            model_version: 1,
            logic: ContainerLogic::Fixed(clipper_rpc::message::WireOutput::Class(1)),
            // Evaluation costs real time, so recomputation hurts.
            timing: TimingModel::Profile(LatencyProfile::deterministic(
                Duration::from_micros(300),
                Duration::from_micros(15),
            )),
            seed: 3,
        });
        clipper
            .add_replica(&id, LocalContainerTransport::new(container))
            .expect("replica");
        ids.push(id);
    }
    clipper.register_app(
        AppConfig::new("ensemble", ids)
            .with_policy(PolicyKind::Exp4 { eta: 0.2 })
            .with_slo(Duration::from_millis(50)),
    );
    clipper
}

/// Measure feedback observations/second over recently-predicted inputs.
async fn feedback_throughput(clipper: Clipper, distinct_inputs: u64) -> f64 {
    // Serve predictions first so the cache (if any) is warm.
    for seq in 0..distinct_inputs {
        let _ = clipper
            .predict("ensemble", None, distinct_input(0, seq, 16))
            .await;
    }
    let c = clipper.clone();
    let report = run_closed_loop(32, phase_duration(), move |_client, seq| {
        let clipper = c.clone();
        async move {
            clipper
                .feedback(
                    "ensemble",
                    None,
                    distinct_input(0, seq % distinct_inputs, 16),
                    Feedback::class(1),
                )
                .await
                .is_ok()
        }
    })
    .await;
    report.throughput()
}

#[tokio::main(flavor = "multi_thread", worker_threads = 8)]
async fn main() {
    println!("== §4.2: Caching Accelerates Feedback Processing ==\n");
    let inputs = 2_000u64;

    let with_cache = feedback_throughput(build_stack(65_536, true), inputs).await;
    let without_cache = feedback_throughput(build_stack(0, false), inputs).await;

    let mut table = Table::new(&["configuration", "feedback obs/sec"]);
    table.row(&["cache enabled".into(), fmt_qps(with_cache)]);
    table.row(&["cache disabled".into(), fmt_qps(without_cache)]);
    table.print();
    println!(
        "\nspeedup: {:.2}x (paper: 1.6x, ≈6K → 11K obs/s on a 4-model ensemble)\n",
        with_cache / without_cache.max(1.0)
    );

    // Ablation: capacity sweep. Hit rate collapses once the working set
    // exceeds capacity, and feedback throughput follows.
    println!("cache capacity ablation ({inputs} distinct hot inputs x 4 models):");
    let mut table = Table::new(&["capacity", "feedback obs/sec", "hit rate"]);
    for capacity in [512usize, 2_048, 8_192, 32_768] {
        let clipper = build_stack(capacity, true);
        let thr = feedback_throughput(clipper.clone(), inputs).await;
        let stats = clipper.abstraction().cache().stats();
        table.row(&[
            format!("{capacity}"),
            fmt_qps(thr),
            // Pending joins count as served-without-evaluation (§4.2).
            format!("{:.1}%", stats.hit_rate() * 100.0),
        ]);
    }
    table.print();
}
