//! Brute-force k-nearest-neighbors classifier.
//!
//! Like the kernel SVM, inference cost scales with the training set —
//! useful as a second "expensive" container profile in experiments.

use super::{Label, Model};
use crate::datasets::Dataset;
use crate::linalg::sq_dist;

/// Hyperparameters for [`Knn::train`].
#[derive(Clone, Debug)]
pub struct KnnConfig {
    /// Number of neighbors that vote.
    pub k: usize,
    /// Cap on stored reference examples (first N of the train split).
    pub max_references: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig {
            k: 5,
            max_references: 2_000,
        }
    }
}

/// k-NN over a stored reference set; scores are neighbor-vote fractions
/// weighted by inverse distance.
pub struct Knn {
    name: String,
    num_classes: usize,
    k: usize,
    refs: Vec<(Vec<f32>, Label)>,
}

impl Knn {
    /// "Training" = storing (up to `max_references`) examples.
    pub fn train(dataset: &Dataset, cfg: &KnnConfig, _seed: u64) -> Self {
        let refs = dataset
            .train
            .iter()
            .take(cfg.max_references)
            .map(|e| (e.x.clone(), e.y))
            .collect();
        Knn {
            name: "knn".into(),
            num_classes: dataset.num_classes(),
            k: cfg.k.max(1),
            refs,
        }
    }

    /// Number of stored references.
    pub fn num_references(&self) -> usize {
        self.refs.len()
    }
}

impl Model for Knn {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_classes(&self) -> usize {
        self.num_classes
    }
    fn scores(&self, x: &[f32]) -> Vec<f32> {
        // Partial selection of the k nearest by linear scan.
        let mut nearest: Vec<(f32, Label)> = Vec::with_capacity(self.k + 1);
        for (rx, ry) in &self.refs {
            let d = sq_dist(rx, x);
            if nearest.len() < self.k {
                nearest.push((d, *ry));
                nearest.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            } else if let Some(last) = nearest.last() {
                if d < last.0 {
                    nearest.pop();
                    nearest.push((d, *ry));
                    nearest.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                }
            }
        }
        let mut s = vec![0.0f32; self.num_classes];
        for (d, y) in nearest {
            s[y as usize] += 1.0 / (1.0 + d);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;
    use crate::eval::accuracy;

    #[test]
    fn knn_learns() {
        let ds = DatasetSpec::speech_like()
            .with_train_size(390)
            .with_test_size(100)
            .with_difficulty(0.3)
            .generate(77);
        let m = Knn::train(&ds, &KnnConfig::default(), 0);
        let acc = accuracy(&m, &ds.test);
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn reference_budget_enforced() {
        let ds = DatasetSpec::speech_like()
            .with_train_size(100)
            .with_test_size(10)
            .generate(77);
        let m = Knn::train(
            &ds,
            &KnnConfig {
                k: 3,
                max_references: 40,
            },
            0,
        );
        assert_eq!(m.num_references(), 40);
    }

    #[test]
    fn k_of_one_matches_nearest_reference_label() {
        let ds = DatasetSpec::speech_like()
            .with_train_size(50)
            .with_test_size(1)
            .generate(77);
        let m = Knn::train(
            &ds,
            &KnnConfig {
                k: 1,
                max_references: 50,
            },
            0,
        );
        // Query an exact training point: its own label must win.
        let e = &ds.train[7];
        assert_eq!(m.predict(&e.x), e.y);
    }
}
