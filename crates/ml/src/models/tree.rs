//! CART decision trees and bagged random forests.
//!
//! Forests are the paper's workhorse for the straggler-mitigation study
//! (Figure 9 uses SK-Learn random forests on MNIST): per-query cost is a
//! handful of comparisons per tree, and ensemble accuracy grows with the
//! number of trees — exactly the accuracy-vs-latency trade the selection
//! layer navigates.

use super::Model;
use crate::datasets::{Dataset, Example};
use rand::prelude::*;

/// Hyperparameters for [`DecisionTree::train`].
#[derive(Clone, Debug)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
    /// Number of candidate features per split; `None` = all features.
    pub feature_subsample: Option<usize>,
    /// Candidate thresholds tried per feature.
    pub thresholds_per_feature: usize,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        DecisionTreeConfig {
            max_depth: 10,
            min_samples_split: 4,
            feature_subsample: None,
            thresholds_per_feature: 8,
        }
    }
}

enum Node {
    Leaf {
        /// Class-probability histogram at the leaf.
        probs: Vec<f32>,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A single CART-style classification tree (gini impurity).
pub struct DecisionTree {
    name: String,
    num_classes: usize,
    root: Node,
}

struct TreeBuilder<'a> {
    examples: &'a [Example],
    num_classes: usize,
    cfg: &'a DecisionTreeConfig,
    rng: StdRng,
}

impl<'a> TreeBuilder<'a> {
    fn class_histogram(&self, idx: &[usize]) -> Vec<f32> {
        let mut h = vec![0.0f32; self.num_classes];
        for &i in idx {
            h[self.examples[i].y as usize] += 1.0;
        }
        let total: f32 = h.iter().sum();
        if total > 0.0 {
            for v in h.iter_mut() {
                *v /= total;
            }
        }
        h
    }

    fn gini(hist: &[f32]) -> f32 {
        1.0 - hist.iter().map(|p| p * p).sum::<f32>()
    }

    fn build(&mut self, idx: &mut [usize], depth: usize) -> Node {
        let hist = self.class_histogram(idx);
        let pure = hist.iter().any(|&p| p >= 0.9999);
        if depth >= self.cfg.max_depth || idx.len() < self.cfg.min_samples_split || pure {
            return Node::Leaf { probs: hist };
        }

        let d = self.examples[0].x.len();
        let n_feats = self.cfg.feature_subsample.unwrap_or(d).min(d);
        let mut features: Vec<usize> = (0..d).collect();
        features.shuffle(&mut self.rng);
        features.truncate(n_feats);

        let parent_gini = Self::gini(&hist);
        let mut best: Option<(usize, f32, f32)> = None; // (feature, threshold, gain)

        for &f in &features {
            // Candidate thresholds from random example values of feature f.
            for _ in 0..self.cfg.thresholds_per_feature {
                let pick = idx[self.rng.random_range(0..idx.len())];
                let t = self.examples[pick].x[f];
                let (mut lh, mut rh) = (
                    vec![0.0f32; self.num_classes],
                    vec![0.0f32; self.num_classes],
                );
                let (mut ln, mut rn) = (0f32, 0f32);
                for &i in idx.iter() {
                    if self.examples[i].x[f] <= t {
                        lh[self.examples[i].y as usize] += 1.0;
                        ln += 1.0;
                    } else {
                        rh[self.examples[i].y as usize] += 1.0;
                        rn += 1.0;
                    }
                }
                if ln == 0.0 || rn == 0.0 {
                    continue;
                }
                for v in lh.iter_mut() {
                    *v /= ln;
                }
                for v in rh.iter_mut() {
                    *v /= rn;
                }
                let total = ln + rn;
                let weighted = (ln / total) * Self::gini(&lh) + (rn / total) * Self::gini(&rh);
                let gain = parent_gini - weighted;
                if best.is_none_or(|(_, _, bg)| gain > bg) {
                    best = Some((f, t, gain));
                }
            }
        }

        match best {
            Some((f, t, gain)) if gain > 1e-6 => {
                let (mut left_idx, mut right_idx): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| self.examples[i].x[f] <= t);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return Node::Leaf { probs: hist };
                }
                let left = self.build(&mut left_idx, depth + 1);
                let right = self.build(&mut right_idx, depth + 1);
                Node::Split {
                    feature: f,
                    threshold: t,
                    left: Box::new(left),
                    right: Box::new(right),
                }
            }
            _ => Node::Leaf { probs: hist },
        }
    }
}

impl DecisionTree {
    /// Train on the dataset's train split.
    pub fn train(dataset: &Dataset, cfg: &DecisionTreeConfig, seed: u64) -> Self {
        Self::train_on(&dataset.train, dataset.num_classes(), cfg, seed)
    }

    /// Train on an explicit example set (used by forests for bootstrap bags).
    pub fn train_on(
        examples: &[Example],
        num_classes: usize,
        cfg: &DecisionTreeConfig,
        seed: u64,
    ) -> Self {
        assert!(!examples.is_empty(), "cannot train a tree on zero examples");
        let mut builder = TreeBuilder {
            examples,
            num_classes,
            cfg,
            rng: StdRng::seed_from_u64(seed),
        };
        let mut idx: Vec<usize> = (0..examples.len()).collect();
        let root = builder.build(&mut idx, 0);
        DecisionTree {
            name: "decision-tree".into(),
            num_classes,
            root,
        }
    }

    /// Tree depth (longest root-to-leaf path), for reporting.
    pub fn depth(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(left).max(walk(right)),
            }
        }
        walk(&self.root)
    }
}

impl Model for DecisionTree {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_classes(&self) -> usize {
        self.num_classes
    }
    fn scores(&self, x: &[f32]) -> Vec<f32> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { probs } => return probs.clone(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

/// Hyperparameters for [`RandomForest::train`].
#[derive(Clone, Debug)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree config; `feature_subsample` defaults to √d when `None`.
    pub tree: DecisionTreeConfig,
    /// Bootstrap sample fraction per tree.
    pub bootstrap_fraction: f64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            num_trees: 16,
            tree: DecisionTreeConfig::default(),
            bootstrap_fraction: 0.8,
        }
    }
}

/// Bagged ensemble of decision trees; scores are averaged leaf histograms.
pub struct RandomForest {
    name: String,
    num_classes: usize,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Train `num_trees` trees on bootstrap bags of the train split.
    pub fn train(dataset: &Dataset, cfg: &RandomForestConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = dataset.train.len();
        let bag = ((n as f64 * cfg.bootstrap_fraction) as usize).max(1);
        let d = dataset.num_features();
        let mut tree_cfg = cfg.tree.clone();
        if tree_cfg.feature_subsample.is_none() {
            tree_cfg.feature_subsample = Some((d as f64).sqrt().ceil() as usize);
        }
        let trees = (0..cfg.num_trees)
            .map(|t| {
                let bag_examples: Vec<Example> = (0..bag)
                    .map(|_| dataset.train[rng.random_range(0..n)].clone())
                    .collect();
                DecisionTree::train_on(
                    &bag_examples,
                    dataset.num_classes(),
                    &tree_cfg,
                    seed.wrapping_add(t as u64 + 1),
                )
            })
            .collect();
        RandomForest {
            name: "random-forest".into(),
            num_classes: dataset.num_classes(),
            trees,
        }
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Model for RandomForest {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_classes(&self) -> usize {
        self.num_classes
    }
    fn scores(&self, x: &[f32]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.num_classes];
        for tree in &self.trees {
            let s = tree.scores(x);
            for (a, v) in acc.iter_mut().zip(s.iter()) {
                *a += v;
            }
        }
        let nt = self.trees.len().max(1) as f32;
        for a in acc.iter_mut() {
            *a /= nt;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;
    use crate::eval::accuracy;

    fn small_ds() -> Dataset {
        DatasetSpec::speech_like()
            .with_train_size(390)
            .with_test_size(100)
            .with_difficulty(0.3)
            .generate(55)
    }

    #[test]
    fn tree_learns_something() {
        let ds = small_ds();
        let m = DecisionTree::train(&ds, &DecisionTreeConfig::default(), 3);
        let acc = accuracy(&m, &ds.test);
        // Single trees on 39 classes are weak but must beat chance (1/39).
        assert!(acc > 0.15, "accuracy {acc}");
        assert!(m.depth() <= 10);
    }

    #[test]
    fn forest_beats_single_tree() {
        let ds = small_ds();
        let tree = DecisionTree::train(&ds, &DecisionTreeConfig::default(), 3);
        let forest = RandomForest::train(&ds, &RandomForestConfig::default(), 3);
        let ta = accuracy(&tree, &ds.test);
        let fa = accuracy(&forest, &ds.test);
        assert!(fa >= ta, "forest {fa} vs tree {ta}");
        assert_eq!(forest.num_trees(), 16);
    }

    #[test]
    fn leaf_scores_are_probabilities() {
        let ds = small_ds();
        let m = DecisionTree::train(&ds, &DecisionTreeConfig::default(), 3);
        let s = m.scores(&ds.test[0].x);
        let sum: f32 = s.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-4,
            "leaf histogram sums to 1, got {sum}"
        );
    }

    #[test]
    fn max_depth_is_respected() {
        let ds = small_ds();
        let cfg = DecisionTreeConfig {
            max_depth: 3,
            ..Default::default()
        };
        let m = DecisionTree::train(&ds, &cfg, 3);
        assert!(m.depth() <= 3);
    }

    #[test]
    #[should_panic(expected = "zero examples")]
    fn empty_training_set_panics() {
        DecisionTree::train_on(&[], 10, &DecisionTreeConfig::default(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = small_ds();
        let a = RandomForest::train(&ds, &RandomForestConfig::default(), 12);
        let b = RandomForest::train(&ds, &RandomForestConfig::default(), 12);
        assert_eq!(a.scores(&ds.test[0].x), b.scores(&ds.test[0].x));
    }
}
