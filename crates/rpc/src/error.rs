//! RPC error types.

use std::fmt;

/// Errors surfaced by the RPC layer and every [`crate::BatchTransport`].
#[derive(Debug)]
pub enum RpcError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The peer closed the connection (pending requests are failed).
    ConnectionClosed,
    /// The request waited past its deadline (straggler-mitigation path).
    Timeout,
    /// Malformed frame or unexpected message.
    Protocol(String),
    /// Dropped by fault injection.
    Injected,
    /// The container rejected the batch (e.g. handler panic).
    Remote(String),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "io error: {e}"),
            RpcError::ConnectionClosed => write!(f, "connection closed"),
            RpcError::Timeout => write!(f, "request timed out"),
            RpcError::Protocol(m) => write!(f, "protocol error: {m}"),
            RpcError::Injected => write!(f, "dropped by fault injection"),
            RpcError::Remote(m) => write!(f, "remote error: {m}"),
        }
    }
}

impl std::error::Error for RpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RpcError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e)
    }
}

impl RpcError {
    /// Whether the caller may retry on another replica (transient faults).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RpcError::ConnectionClosed | RpcError::Timeout | RpcError::Injected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(RpcError::Timeout.to_string().contains("timed out"));
        assert!(RpcError::Protocol("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn retryability_classification() {
        assert!(RpcError::Timeout.is_retryable());
        assert!(RpcError::ConnectionClosed.is_retryable());
        assert!(RpcError::Injected.is_retryable());
        assert!(!RpcError::Protocol("x".into()).is_retryable());
        assert!(!RpcError::Remote("x".into()).is_retryable());
    }

    #[test]
    fn io_error_converts_and_chains() {
        let e: RpcError = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe").into();
        assert!(matches!(e, RpcError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
