//! Calibration probes.
//!
//! Default mode times a representative model container across batch
//! sizes and least-squares fits the latency curve `latency(b) ≈ α + β·b`,
//! emitting a JSON prior consumable as `QueueConfig::latency_prior` —
//! the global warm start for each replica's online latency model
//! (§4.4.1). A freshly attached replica seeded with this prior starts
//! from a sane batch ceiling instead of probing from 1.
//!
//! `--accuracy` runs the original model-error-vs-difficulty probes used
//! to pick experiment constants; they are unrelated to latency.

use clipper_ml::datasets::DatasetSpec;
use clipper_ml::eval::{accuracy, top_k_accuracy};
use clipper_ml::models::*;
use std::time::Instant;

fn main() {
    if std::env::args().any(|a| a == "--accuracy") {
        accuracy_probes();
    } else {
        latency_calibration();
    }
}

/// Time `predict_batch` over a sweep of batch sizes and fit α + β·b.
fn latency_calibration() {
    // A representative container: an MLP over cifar-like features sits
    // in the middle of the model zoo cost-wise.
    let ds = DatasetSpec::cifar_like()
        .with_train_size(600)
        .with_test_size(512)
        .with_difficulty(0.18)
        .generate(17);
    let model = Mlp::train(
        &ds,
        &MlpConfig {
            hidden: vec![64],
            epochs: 3,
            lr: 0.08,
        },
        1,
    );

    let pool: Vec<&[f32]> = ds.test.iter().map(|e| e.x.as_slice()).collect();
    let sweep: &[usize] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];
    const REPS: usize = 25;

    // Warm up caches/allocator so the b=1 point is not polluted.
    for _ in 0..3 {
        let _ = model.predict_batch(&pool[..64.min(pool.len())]);
    }

    println!("batch  mean_us");
    let mut points: Vec<(f64, f64)> = Vec::with_capacity(sweep.len());
    for &b in sweep {
        let batch: Vec<&[f32]> = (0..b).map(|i| pool[i % pool.len()]).collect();
        let start = Instant::now();
        for _ in 0..REPS {
            let labels = model.predict_batch(&batch);
            assert_eq!(labels.len(), b);
        }
        let mean_us = start.elapsed().as_secs_f64() * 1e6 / REPS as f64;
        println!("{b:>5}  {mean_us:>8.1}");
        points.push((b as f64, mean_us));
    }

    let (alpha_us, beta_us) = least_squares(&points);
    // The prior is machine-wide guidance, not ground truth: the online
    // per-replica fit re-learns the real curve within a few dozen
    // batches. Clamp to non-negative so a noisy intercept cannot emit a
    // nonsense prior.
    let alpha_us = alpha_us.max(0.0);
    let beta_us = beta_us.max(0.0);
    println!("fitted: latency(b) ≈ {alpha_us:.1}µs + {beta_us:.2}µs·b");
    println!("{{\"alpha_us\": {alpha_us:.1}, \"beta_us\": {beta_us:.2}}}");
}

/// Ordinary least squares over (b, latency) points: (intercept, slope).
fn least_squares(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let mean_b = points.iter().map(|p| p.0).sum::<f64>() / n;
    let mean_l = points.iter().map(|p| p.1).sum::<f64>() / n;
    let var: f64 = points.iter().map(|p| (p.0 - mean_b).powi(2)).sum();
    let cov: f64 = points.iter().map(|p| (p.0 - mean_b) * (p.1 - mean_l)).sum();
    let beta = if var > 0.0 { cov / var } else { 0.0 };
    (mean_l - beta * mean_b, beta)
}

fn accuracy_probes() {
    println!("cifar-like n=900 (fig7 zoo): err by difficulty");
    for difficulty in [0.12f32, 0.18, 0.25] {
        let ds = DatasetSpec::cifar_like()
            .with_train_size(900)
            .with_test_size(400)
            .with_difficulty(difficulty)
            .generate(11);
        let svm = LinearSvm::train(
            &ds,
            &LinearSvmConfig {
                epochs: 3,
                ..Default::default()
            },
            3,
        );
        let lr = LogisticRegression::train(
            &ds,
            &LogisticRegressionConfig {
                epochs: 3,
                ..Default::default()
            },
            2,
        );
        let mlp = Mlp::train(
            &ds,
            &MlpConfig {
                hidden: vec![48],
                epochs: 4,
                lr: 0.08,
            },
            1,
        );
        let rf = RandomForest::train(
            &ds,
            &RandomForestConfig {
                num_trees: 12,
                ..Default::default()
            },
            4,
        );
        let knn = Knn::train(
            &ds,
            &KnnConfig {
                k: 5,
                max_references: 1_000,
            },
            5,
        );
        println!(
            "  d={difficulty}: svm={:.3} lr={:.3} mlp={:.3} rf={:.3} knn={:.3}",
            1.0 - accuracy(&svm, &ds.test),
            1.0 - accuracy(&lr, &ds.test),
            1.0 - accuracy(&mlp, &ds.test),
            1.0 - accuracy(&rf, &ds.test),
            1.0 - accuracy(&knn, &ds.test),
        );
    }
    println!("imagenet-like 200 classes n=5000: logreg top-5 err");
    for difficulty in [0.12f32, 0.18, 0.25] {
        let mut spec = DatasetSpec::imagenet_like();
        spec.num_classes = 200;
        let ds = spec
            .with_train_size(5_000)
            .with_test_size(300)
            .with_difficulty(difficulty)
            .generate(13);
        let m = LogisticRegression::train(
            &ds,
            &LogisticRegressionConfig {
                epochs: 2,
                ..Default::default()
            },
            3,
        );
        println!(
            "  d={difficulty}: top5 err={:.3}",
            1.0 - top_k_accuracy(&m, &ds.test, 5)
        );
    }
    println!("mnist-like: linear svm err (fig8 staggering)");
    for difficulty in [0.2f32, 0.3] {
        for train in [30usize, 80, 200, 800, 1600] {
            let ds = DatasetSpec::mnist_like()
                .with_train_size(train)
                .with_test_size(400)
                .with_difficulty(difficulty)
                .generate(31);
            let m = LinearSvm::train(&ds, &LinearSvmConfig::default(), 3);
            println!(
                "  d={difficulty} n={train}: err={:.3}",
                1.0 - accuracy(&m, &ds.test)
            );
        }
    }
    println!("mnist-like single trees (fig9): err by difficulty");
    for difficulty in [0.2f32, 0.3] {
        let ds = DatasetSpec::mnist_like()
            .with_train_size(900)
            .with_test_size(400)
            .with_difficulty(difficulty)
            .generate(23);
        let tree = DecisionTree::train(
            &ds,
            &DecisionTreeConfig {
                max_depth: 8,
                feature_subsample: Some(48),
                ..Default::default()
            },
            3,
        );
        let rf = RandomForest::train(
            &ds,
            &RandomForestConfig {
                num_trees: 16,
                ..Default::default()
            },
            4,
        );
        println!(
            "  d={difficulty}: tree={:.3} rf16={:.3}",
            1.0 - accuracy(&tree, &ds.test),
            1.0 - accuracy(&rf, &ds.test)
        );
    }
}
