//! Image classification with ensembles and robust confidence (§5.2).
//!
//! Five models of varying quality serve a CIFAR-shaped object-recognition
//! app. The Exp4 policy combines them; queries where the ensemble
//! disagrees fall back to a default action instead of guessing — the
//! paper's "robust predictions" pattern (Figure 7).
//!
//! ```sh
//! cargo run --release --example image_classification
//! ```

use clipper::containers::{
    ContainerConfig, ContainerLogic, LocalContainerTransport, ModelContainer, TimingModel,
};
use clipper::core::{AppConfig, Clipper, Feedback, ModelId, Output, PolicyKind};
use clipper::ml::datasets::DatasetSpec;
use clipper::ml::models::{
    DecisionTree, DecisionTreeConfig, LinearSvm, LinearSvmConfig, LogisticRegression,
    LogisticRegressionConfig, Mlp, MlpConfig, Model, RandomForest, RandomForestConfig,
};
use std::sync::Arc;
use std::time::Duration;

#[tokio::main]
async fn main() {
    println!("== Image classification with a learned ensemble ==\n");

    let dataset = DatasetSpec::cifar_like()
        .with_train_size(500)
        .with_test_size(300)
        .with_difficulty(0.25)
        .generate(7);

    // Five heterogeneous models, as in Table 2 — deliberately spanning a
    // range of accuracies.
    let models: Vec<(&str, Arc<dyn Model>)> = vec![
        (
            "mlp",
            Arc::new(Mlp::train(&dataset, &MlpConfig::default(), 1)),
        ),
        (
            "logreg",
            Arc::new(LogisticRegression::train(
                &dataset,
                &LogisticRegressionConfig::default(),
                2,
            )),
        ),
        (
            "linear-svm",
            Arc::new(LinearSvm::train(&dataset, &LinearSvmConfig::default(), 3)),
        ),
        (
            "random-forest",
            Arc::new(RandomForest::train(
                &dataset,
                &RandomForestConfig {
                    num_trees: 8,
                    ..Default::default()
                },
                4,
            )),
        ),
        (
            "tree",
            Arc::new(DecisionTree::train(
                &dataset,
                &DecisionTreeConfig::default(),
                5,
            )),
        ),
    ];

    let clipper = Clipper::builder().build();
    let mut ids = Vec::new();
    println!("individual model accuracy on holdout:");
    for (name, model) in models {
        let acc = clipper::ml::eval::accuracy(model.as_ref(), &dataset.test);
        println!("  {name:<14} {:.1}%", acc * 100.0);
        let id = ModelId::new(name, 1);
        clipper.add_model(id.clone(), Default::default());
        let container = ModelContainer::new(ContainerConfig {
            name: format!("{name}:0"),
            model_name: name.to_string(),
            model_version: 1,
            logic: ContainerLogic::Classifier(model),
            timing: TimingModel::Measured,
            seed: 11,
        });
        clipper
            .add_replica(&id, LocalContainerTransport::new(container))
            .expect("replica");
        ids.push(id);
    }

    clipper.register_app(
        AppConfig::new("vision", ids)
            .with_policy(PolicyKind::Exp4 { eta: 0.3 })
            .with_slo(Duration::from_millis(50))
            .with_default_output(Output::Class(u32::MAX)), // sentinel default action
    );

    // Serve with feedback; split results by confidence (4/5-agree style).
    let threshold = 0.8;
    let (mut conf_total, mut conf_correct) = (0u32, 0u32);
    let (mut unsure_total, mut unsure_correct) = (0u32, 0u32);
    let mut defaults = 0u32;
    for example in &dataset.test {
        let input = Arc::new(example.x.clone());
        let p = clipper
            .predict("vision", None, input.clone())
            .await
            .unwrap();
        let right = p.output.label() == example.y;
        if p.output == Output::Class(u32::MAX) {
            defaults += 1;
        } else if p.is_confident(threshold) {
            conf_total += 1;
            conf_correct += right as u32;
        } else {
            unsure_total += 1;
            unsure_correct += right as u32;
        }
        clipper
            .feedback("vision", None, input, Feedback::class(example.y))
            .await
            .unwrap();
    }

    println!("\nensemble with confidence threshold {threshold}:");
    println!(
        "  confident: {conf_total} queries, {:.1}% correct",
        100.0 * conf_correct as f64 / conf_total.max(1) as f64
    );
    println!(
        "  unsure:    {unsure_total} queries, {:.1}% correct (app takes default action)",
        100.0 * unsure_correct as f64 / unsure_total.max(1) as f64
    );
    println!("  defaulted: {defaults} queries (no model answered in time)");

    let state = clipper.policy_state("vision", None).unwrap();
    println!("\nlearned Exp4 weights after feedback:");
    for (m, p) in state.models.iter().zip(state.probabilities()) {
        println!("  {:<14} {:.3}", m.name, p);
    }
}
