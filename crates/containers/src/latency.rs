//! Latency profiles: the measured batch-size→latency curves of Figure 3.
//!
//! The paper observes "a stable linear relationship between batch size and
//! latency across several of the modeling frameworks" (§4.3.1) — the basis
//! for both the AIMD and quantile-regression batching strategies. A
//! [`LatencyProfile`] is that linear model plus multiplicative noise.

use rand::prelude::*;
use std::time::{Duration, Instant};

/// A linear batch-latency model: `latency(b) = base + per_item · b`,
/// times `(1 ± jitter)`.
#[derive(Clone, Debug)]
pub struct LatencyProfile {
    /// Fixed per-batch cost (RPC dispatch, interpreter overhead, ...).
    pub base: Duration,
    /// Marginal cost per input in the batch.
    pub per_item: Duration,
    /// Multiplicative noise fraction; 0.05 = ±5% uniform.
    pub jitter_frac: f64,
}

impl LatencyProfile {
    /// A profile with no noise.
    pub fn deterministic(base: Duration, per_item: Duration) -> Self {
        LatencyProfile {
            base,
            per_item,
            jitter_frac: 0.0,
        }
    }

    /// A profile with ±`jitter_frac` uniform noise.
    pub fn with_jitter(mut self, jitter_frac: f64) -> Self {
        self.jitter_frac = jitter_frac;
        self
    }

    /// Expected latency for a batch of `n` (no noise).
    pub fn expected(&self, n: usize) -> Duration {
        self.base + self.per_item.mul_f64(n as f64)
    }

    /// Sampled latency for a batch of `n`.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> Duration {
        let mean = self.expected(n);
        if self.jitter_frac <= 0.0 {
            return mean;
        }
        let factor = 1.0 + self.jitter_frac * (rng.random::<f64>() * 2.0 - 1.0);
        mean.mul_f64(factor.max(0.0))
    }

    /// Largest batch size whose *expected* latency fits under `slo`
    /// (the quantity Figure 3 reads off each curve). Returns 0 when even a
    /// single-item batch misses the objective.
    pub fn max_batch_under(&self, slo: Duration) -> usize {
        if self.expected(1) > slo {
            return 0;
        }
        if self.per_item.is_zero() {
            return usize::MAX;
        }
        let budget = slo.saturating_sub(self.base);
        (budget.as_nanos() / self.per_item.as_nanos().max(1)) as usize
    }
}

/// Sleep for `target` with sub-millisecond accuracy.
///
/// OS sleeps are only accurate to ~100µs; latency profiles in the tens of
/// microseconds (the linear SVM) need better. Sleep coarse, then spin the
/// remainder. Must be called from a blocking context (container worker
/// threads), never from the async reactor.
pub fn precise_sleep(target: Duration) {
    let start = Instant::now();
    const SPIN_WINDOW: Duration = Duration::from_micros(200);
    if target > SPIN_WINDOW {
        std::thread::sleep(target - SPIN_WINDOW);
    }
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_is_linear() {
        let p = LatencyProfile::deterministic(Duration::from_millis(1), Duration::from_micros(20));
        assert_eq!(p.expected(0), Duration::from_millis(1));
        assert_eq!(p.expected(100), Duration::from_millis(3));
    }

    #[test]
    fn sample_without_jitter_is_expected() {
        let p = LatencyProfile::deterministic(Duration::from_millis(2), Duration::from_micros(10));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.sample(50, &mut rng), p.expected(50));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let p = LatencyProfile::deterministic(Duration::from_millis(10), Duration::ZERO)
            .with_jitter(0.1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = p.sample(1, &mut rng);
            assert!(s >= Duration::from_millis(9) && s <= Duration::from_millis(11));
        }
    }

    #[test]
    fn max_batch_under_slo() {
        // base 1ms, 20µs/item: at 20ms SLO → (20-1)ms / 20µs = 950 items.
        let p = LatencyProfile::deterministic(Duration::from_millis(1), Duration::from_micros(20));
        assert_eq!(p.max_batch_under(Duration::from_millis(20)), 950);
        // Kernel-SVM-like: 3.3ms/item → only 5 items fit (0.5ms base).
        let k =
            LatencyProfile::deterministic(Duration::from_micros(500), Duration::from_micros(3300));
        assert_eq!(k.max_batch_under(Duration::from_millis(20)), 5);
    }

    #[test]
    fn max_batch_zero_when_single_item_misses() {
        let p = LatencyProfile::deterministic(Duration::from_millis(50), Duration::from_millis(1));
        assert_eq!(p.max_batch_under(Duration::from_millis(20)), 0);
    }

    #[test]
    fn precise_sleep_hits_target() {
        for target_us in [100u64, 500, 2_000] {
            let target = Duration::from_micros(target_us);
            let start = Instant::now();
            precise_sleep(target);
            let actual = start.elapsed();
            assert!(actual >= target, "slept {actual:?} < target {target:?}");
            // Allow generous upper slack on a shared machine.
            assert!(
                actual < target + Duration::from_millis(5),
                "slept {actual:?}, way past {target:?}"
            );
        }
    }
}
