//! The prediction cache (§4.2).
//!
//! A function cache for `Predict(m, x) -> y` with two jobs:
//!
//! 1. **Pre-materialization** — frequent queries are answered without
//!    evaluating the model. Eviction is CLOCK (second-chance), the
//!    algorithm the paper cites; selection happens *above* the cache, so
//!    policy changes never invalidate entries.
//! 2. **Join point** — a *pending* entry represents an in-flight
//!    computation. Duplicate concurrent queries, and feedback joins that
//!    arrive shortly after a prediction (§5), attach as waiters instead of
//!    re-evaluating the model — the paper's non-blocking `request`/`fetch`
//!    API.
//!
//! # Scaling design
//!
//! The cache is **sharded**: `shard_count()` independent CLOCK rings (a
//! power of two, sized from the host's parallelism), each behind its own
//! mutex and each owning its own index and pending-waiter map. A key's
//! shard is chosen by fingerprint bits, so concurrent probes for different
//! keys almost never contend on a lock. Hit/miss/eviction/pending-join
//! counts are relaxed per-shard atomics aggregated only in
//! [`PredictionCache::stats`], so telemetry never re-serializes the
//! shards.
//!
//! Keys are 128-bit fingerprints of `(model, input)` built in a **single
//! streaming pass** over the input ([`CacheKey::new`]); inputs themselves
//! are not stored. The two 64-bit halves come from independently seeded
//! lanes of one hasher: one half indexes the shard's hash map directly
//! (via an identity hasher, so probes never rehash), the other selects the
//! shard. With two independent 64-bit halves, collisions are negligible at
//! serving scale.

use crate::types::{Input, ModelId, Output};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tokio::sync::oneshot;

/// Cloneable failure delivered to cache waiters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheFillError {
    /// The model evaluation failed (carries a human-readable reason).
    Failed(String),
    /// Typed predict failure passed through intact, so waiters — and the
    /// HTTP error taxonomy behind them — keep the kind, retryability, and
    /// status mapping instead of a flattened string.
    Predict(crate::batching::queue::PredictError),
}

type FillResult = Result<Output, CacheFillError>;

/// Counts every input-hashing pass ([`CacheKey::new`] invocations), so
/// tests can assert the predict hot path hashes each input exactly once.
/// Debug-only: in release builds the hot path carries no process-global
/// atomic (which would put one contended cache line back on every
/// predict).
#[cfg(debug_assertions)]
static KEY_BUILDS: AtomicU64 = AtomicU64::new(0);

/// 128-bit `(model, input)` fingerprint, built in one streaming pass.
///
/// `Copy`, 16 bytes: compute it once at the top of a request and thread it
/// by value through every cache call. Distinct models never collide
/// because the model id is folded into the hash state before the input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheKey {
    fp: [u64; 2],
}

/// Two independently seeded accumulator lanes fed by one pass over the
/// data. Each absorbed word updates both lanes (distinct rotations and
/// multipliers), and [`finish`](TwoLaneHasher::finish) applies a distinct
/// finalizer per lane — one hashing pass, two 64-bit halves.
struct TwoLaneHasher {
    h1: u64,
    h2: u64,
}

/// splitmix64 finalizer: full-avalanche mix of one word.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TwoLaneHasher {
    #[inline]
    fn new() -> Self {
        TwoLaneHasher {
            h1: 0x9E37_79B9_7F4A_7C15, // golden-ratio seed
            h2: 0xC2B2_AE3D_27D4_EB4F, // xxh64 prime seed
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let m = mix64(v);
        self.h1 = (self.h1 ^ m)
            .rotate_left(27)
            .wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        self.h2 = (self.h2 ^ m.rotate_left(32))
            .rotate_left(31)
            .wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    }

    #[inline]
    fn finish(self) -> [u64; 2] {
        [mix64(self.h1), mix64(self.h2 ^ 0x165667B19E3779F9)]
    }
}

impl CacheKey {
    /// Build the key for `(model, input)` in a single pass over the input.
    pub fn new(model: &ModelId, input: &Input) -> Self {
        #[cfg(debug_assertions)]
        KEY_BUILDS.fetch_add(1, Ordering::Relaxed);
        let mut h = TwoLaneHasher::new();
        let name = model.name.as_bytes();
        h.write_u64(((model.version as u64) << 32) ^ name.len() as u64);
        for chunk in name.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            h.write_u64(u64::from_le_bytes(buf));
        }
        h.write_u64(input.len() as u64);
        let mut pairs = input.chunks_exact(2);
        for pair in &mut pairs {
            h.write_u64(((pair[0].to_bits() as u64) << 32) | pair[1].to_bits() as u64);
        }
        if let [last] = pairs.remainder() {
            h.write_u64(last.to_bits() as u64 ^ 0x8000_0000_0000_0000);
        }
        CacheKey { fp: h.finish() }
    }

    /// Construct a key directly from fingerprint halves. Test/bench aid:
    /// lets load generators synthesize key populations without building
    /// input vectors.
    #[doc(hidden)]
    pub fn from_fingerprint(a: u64, b: u64) -> Self {
        CacheKey { fp: [a, b] }
    }

    /// Total [`CacheKey::new`] invocations so far, process-wide. Tests use
    /// before/after deltas to prove the hot path hashes each input once.
    /// Counts only in debug builds (always 0 in release — the counter is
    /// compiled out of the hot path).
    #[doc(hidden)]
    pub fn build_count() -> u64 {
        #[cfg(debug_assertions)]
        {
            KEY_BUILDS.load(Ordering::Relaxed)
        }
        #[cfg(not(debug_assertions))]
        {
            0
        }
    }
}

impl Hash for CacheKey {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The fingerprint is already uniform; hand one half to the hasher.
        state.write_u64(self.fp[0]);
    }
}

/// Identity hasher for pre-hashed keys: `finish` returns the written word
/// verbatim, so map probes do no rehashing at all.
#[derive(Default)]
pub struct FingerprintHasher(u64);

impl Hasher for FingerprintHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by CacheKey, which writes one u64).
        for &b in bytes {
            self.0 = mix64(self.0 ^ b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type FpMap<V> = HashMap<CacheKey, V, BuildHasherDefault<FingerprintHasher>>;

/// Outcome of a cache lookup.
pub enum Lookup {
    /// Value present.
    Hit(Output),
    /// Another caller is computing this entry; await the receiver.
    Pending(oneshot::Receiver<FillResult>),
    /// This caller must trigger the computation, then await the receiver
    /// (the computation's completion flows back through [`PredictionCache::fill`]).
    MustCompute(oneshot::Receiver<FillResult>),
}

/// Aggregated cache telemetry (see [`PredictionCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from a stored value.
    pub hits: u64,
    /// Probes that found neither a value nor an in-flight computation.
    pub misses: u64,
    /// Completed entries displaced by CLOCK.
    pub evictions: u64,
    /// Probes that joined an in-flight computation instead of
    /// re-evaluating — the §4.2 feedback-join path. Not misses: no model
    /// evaluation results from them.
    pub pending_joins: u64,
}

impl CacheStats {
    /// All probes: hits + misses + pending joins.
    pub fn probes(&self) -> u64 {
        self.hits + self.misses + self.pending_joins
    }

    /// Fraction of probes served without triggering a model evaluation
    /// (hits and pending joins).
    pub fn hit_rate(&self) -> f64 {
        let p = self.probes();
        if p == 0 {
            return 0.0;
        }
        (self.hits + self.pending_joins) as f64 / p as f64
    }
}

struct Slot {
    key: CacheKey,
    value: Output,
    referenced: bool,
}

struct ShardInner {
    /// CLOCK ring. `None` slots are free.
    slots: Vec<Option<Slot>>,
    hand: usize,
    /// key → slot index (identity-hashed: probes never rehash).
    index: FpMap<usize>,
    /// In-flight computations and their waiters.
    pending: FpMap<Vec<oneshot::Sender<FillResult>>>,
}

struct Shard {
    inner: Mutex<ShardInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    pending_joins: AtomicU64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            inner: Mutex::new(ShardInner {
                slots: (0..capacity).map(|_| None).collect(),
                hand: 0,
                index: FpMap::default(),
                pending: FpMap::default(),
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pending_joins: AtomicU64::new(0),
        }
    }

    /// CLOCK insert: find a victim slot (second chance), replace it.
    fn store(&self, inner: &mut ShardInner, key: CacheKey, value: Output) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot_idx) = inner.index.get(&key) {
            // Refresh in place.
            if let Some(slot) = inner.slots[slot_idx].as_mut() {
                slot.value = value;
                slot.referenced = true;
            }
            return;
        }
        // Advance the hand until a free slot or an unreferenced victim.
        loop {
            let hand = inner.hand;
            inner.hand = (inner.hand + 1) % self.capacity;
            match inner.slots[hand].as_mut() {
                None => {
                    inner.slots[hand] = Some(Slot {
                        key,
                        value,
                        referenced: true,
                    });
                    inner.index.insert(key, hand);
                    return;
                }
                Some(slot) if slot.referenced => {
                    slot.referenced = false; // second chance
                }
                Some(slot) => {
                    let old_key = slot.key;
                    inner.index.remove(&old_key);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    inner.slots[hand] = Some(Slot {
                        key,
                        value,
                        referenced: true,
                    });
                    inner.index.insert(key, hand);
                    return;
                }
            }
        }
    }
}

/// Concurrent sharded CLOCK-evicted prediction cache. Clone shares the
/// cache.
#[derive(Clone)]
pub struct PredictionCache {
    shards: Arc<[Shard]>,
    shard_mask: u64,
    capacity: usize,
}

/// Shard count for `capacity` on this host: the next power of two above
/// the available parallelism (capped at 64), reduced so every shard owns
/// at least one slot whenever the cache stores values at all.
fn default_shard_count(capacity: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut n = cores.next_power_of_two().min(64);
    while n > 1 && capacity > 0 && capacity < n {
        n /= 2;
    }
    n
}

impl PredictionCache {
    /// Create a cache holding up to `capacity` completed predictions,
    /// sharded for this host's parallelism. Capacity 0 disables value
    /// storage but keeps the pending-join machinery (in-flight dedup
    /// still works).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, default_shard_count(capacity))
    }

    /// Create a cache with an explicit shard count (rounded up to a power
    /// of two, minimum 1). `capacity` is distributed across shards; with
    /// fewer slots than shards some shards store nothing, so prefer
    /// [`PredictionCache::new`] unless you need determinism (tests) or a
    /// contention baseline (benchmarks).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let built: Vec<Shard> = (0..n)
            .map(|i| Shard::new(capacity / n + usize::from(i < capacity % n)))
            .collect();
        PredictionCache {
            shards: built.into(),
            shard_mask: (n - 1) as u64,
            capacity,
        }
    }

    /// Number of independent shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total completed-entry capacity across shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn shard(&self, key: CacheKey) -> &Shard {
        // fp[1] selects the shard; fp[0] indexes within it — independent
        // halves, so shard choice and bucket choice never correlate.
        &self.shards[(key.fp[1] & self.shard_mask) as usize]
    }

    /// Which shard `key` lives in (test/bench introspection).
    #[doc(hidden)]
    pub fn shard_of(&self, key: CacheKey) -> usize {
        (key.fp[1] & self.shard_mask) as usize
    }

    /// Snapshot of one shard's occupied slots as `(key, referenced)`
    /// pairs, in CLOCK-ring order starting at the hand (test
    /// introspection for eviction-invariant checks).
    #[doc(hidden)]
    pub fn shard_slots(&self, shard: usize) -> Vec<(CacheKey, bool)> {
        let s = &self.shards[shard];
        let inner = s.inner.lock();
        let cap = inner.slots.len();
        (0..cap)
            .map(|i| (inner.hand + i) % cap)
            .filter_map(|i| inner.slots[i].as_ref())
            .map(|slot| (slot.key, slot.referenced))
            .collect()
    }

    /// Non-blocking fetch (the paper's `fetch`): value if present.
    ///
    /// A probe that finds an in-flight computation counts as a
    /// `pending_join`, not a miss — no model evaluation results from it.
    pub fn fetch(&self, key: CacheKey) -> Option<Output> {
        let shard = self.shard(key);
        let mut inner = shard.inner.lock();
        if let Some(&slot_idx) = inner.index.get(&key) {
            if let Some(slot) = inner.slots[slot_idx].as_mut() {
                slot.referenced = true;
                let value = slot.value.clone();
                drop(inner);
                shard.hits.fetch_add(1, Ordering::Relaxed);
                return Some(value);
            }
        }
        let in_flight = inner.pending.contains_key(&key);
        drop(inner);
        if in_flight {
            shard.pending_joins.fetch_add(1, Ordering::Relaxed);
        } else {
            shard.misses.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// The paper's `request`: returns the value, attaches to an in-flight
    /// computation, or instructs the caller to compute.
    pub fn lookup_or_pending(&self, key: CacheKey) -> Lookup {
        let shard = self.shard(key);
        let mut inner = shard.inner.lock();
        if let Some(&slot_idx) = inner.index.get(&key) {
            if let Some(slot) = inner.slots[slot_idx].as_mut() {
                slot.referenced = true;
                let value = slot.value.clone();
                drop(inner);
                shard.hits.fetch_add(1, Ordering::Relaxed);
                return Lookup::Hit(value);
            }
        }
        let (tx, rx) = oneshot::channel();
        match inner.pending.get_mut(&key) {
            Some(waiters) => {
                waiters.push(tx);
                drop(inner);
                shard.pending_joins.fetch_add(1, Ordering::Relaxed);
                Lookup::Pending(rx)
            }
            None => {
                inner.pending.insert(key, vec![tx]);
                drop(inner);
                shard.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::MustCompute(rx)
            }
        }
    }

    /// Complete an in-flight computation: store the value (on success),
    /// wake every waiter. Waiters are woken outside the shard lock.
    pub fn fill(&self, key: CacheKey, result: FillResult) {
        let shard = self.shard(key);
        let waiters = {
            let mut inner = shard.inner.lock();
            if let Ok(ref value) = result {
                shard.store(&mut inner, key, value.clone());
            }
            inner.pending.remove(&key)
        };
        if let Some(waiters) = waiters {
            for w in waiters {
                let _ = w.send(result.clone());
            }
        }
    }

    /// Fail an in-flight computation: wake every waiter with the error,
    /// store nothing. The `MustCompute` caller uses this when it cannot
    /// start the evaluation it claimed (e.g. no live replicas).
    pub fn fail_pending(&self, key: CacheKey, reason: impl Into<String>) {
        self.fill(key, Err(CacheFillError::Failed(reason.into())));
    }

    /// Aggregated counters across all shards. Reads relaxed per-shard
    /// atomics only — never takes a shard lock.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for shard in self.shards.iter() {
            s.hits += shard.hits.load(Ordering::Relaxed);
            s.misses += shard.misses.load(Ordering::Relaxed);
            s.evictions += shard.evictions.load(Ordering::Relaxed);
            s.pending_joins += shard.pending_joins.load(Ordering::Relaxed);
        }
        s
    }

    /// Number of completed entries currently stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().index.len()).sum()
    }

    /// Whether the cache holds no completed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of in-flight computations.
    pub fn pending_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.lock().pending.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn input(vals: &[f32]) -> Input {
        Arc::new(vals.to_vec())
    }

    fn model(n: &str) -> ModelId {
        ModelId::new(n, 1)
    }

    fn key(n: &str, vals: &[f32]) -> CacheKey {
        CacheKey::new(&model(n), &input(vals))
    }

    #[test]
    fn fetch_miss_then_fill_then_hit() {
        let cache = PredictionCache::new(4);
        let k = key("m", &[1.0, 2.0]);
        assert!(cache.fetch(k).is_none());
        cache.fill(k, Ok(Output::Class(3)));
        assert_eq!(cache.fetch(k), Some(Output::Class(3)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn key_is_deterministic() {
        // (The exactly-one-pass-per-predict property is asserted in
        // `tests/hash_passes.rs`, which owns its process — the build
        // counter is process-global, so counting here would race with
        // sibling tests.)
        let m = model("m");
        let x = input(&[1.0, 2.0, 3.0]);
        assert_eq!(CacheKey::new(&m, &x), CacheKey::new(&m, &x));
    }

    #[test]
    fn keys_differ_across_models_versions_and_inputs() {
        let x = input(&[1.0, 2.0]);
        let keys = [
            CacheKey::new(&model("a"), &x),
            CacheKey::new(&model("b"), &x),
            CacheKey::new(&ModelId::new("a", 2), &x),
            CacheKey::new(&model("a"), &input(&[1.0, 2.0, 0.0])),
            CacheKey::new(&model("a"), &input(&[2.0, 1.0])),
        ];
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j], "key {i} vs {j}");
            }
        }
    }

    #[tokio::test]
    async fn must_compute_then_waiters_join() {
        let cache = PredictionCache::new(4);
        let k = key("m", &[5.0]);
        let first = cache.lookup_or_pending(k);
        let rx1 = match first {
            Lookup::MustCompute(rx) => rx,
            _ => panic!("first lookup must be MustCompute"),
        };
        // Second lookup joins as a waiter.
        let rx2 = match cache.lookup_or_pending(k) {
            Lookup::Pending(rx) => rx,
            _ => panic!("second lookup must be Pending"),
        };
        assert_eq!(cache.pending_len(), 1);
        cache.fill(k, Ok(Output::Class(7)));
        assert_eq!(rx1.await.unwrap().unwrap(), Output::Class(7));
        assert_eq!(rx2.await.unwrap().unwrap(), Output::Class(7));
        assert_eq!(cache.pending_len(), 0);
        // Third lookup hits.
        assert!(matches!(cache.lookup_or_pending(k), Lookup::Hit(_)));
        let s = cache.stats();
        assert_eq!(s.pending_joins, 1, "the second lookup was a join");
        assert_eq!(s.misses, 1, "only the MustCompute probe was a miss");
    }

    #[test]
    fn fetch_during_pending_counts_as_join_not_miss() {
        let cache = PredictionCache::new(4);
        let k = key("m", &[5.0]);
        let _rx = cache.lookup_or_pending(k); // MustCompute → 1 miss
        assert!(cache.fetch(k).is_none());
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.pending_joins, 1, "fetch saw the in-flight entry");
    }

    #[tokio::test]
    async fn fill_error_propagates_and_is_not_cached() {
        let cache = PredictionCache::new(4);
        let k = key("m", &[9.0]);
        let rx = match cache.lookup_or_pending(k) {
            Lookup::MustCompute(rx) => rx,
            _ => panic!(),
        };
        cache.fail_pending(k, "boom");
        assert!(rx.await.unwrap().is_err());
        assert!(cache.fetch(k).is_none(), "errors are not cached");
    }

    #[test]
    fn distinct_models_do_not_collide() {
        let cache = PredictionCache::new(4);
        let x = [1.0];
        cache.fill(key("a", &x), Ok(Output::Class(1)));
        cache.fill(key("b", &x), Ok(Output::Class(2)));
        assert_eq!(cache.fetch(key("a", &x)), Some(Output::Class(1)));
        assert_eq!(cache.fetch(key("b", &x)), Some(Output::Class(2)));
    }

    #[test]
    fn clock_evicts_unreferenced_first() {
        // Single shard so the CLOCK sweep is deterministic.
        let cache = PredictionCache::with_shards(2, 1);
        let (a, b, c) = (key("m", &[1.0]), key("m", &[2.0]), key("m", &[3.0]));
        cache.fill(a, Ok(Output::Class(1)));
        cache.fill(b, Ok(Output::Class(2)));
        // Touch `a` so it has its reference bit set; `b`'s gets cleared by
        // the first hand sweep and `b` becomes the victim.
        cache.fetch(a);
        cache.fill(c, Ok(Output::Class(3)));
        assert_eq!(cache.len(), 2);
        assert!(cache.fetch(c).is_some(), "new entry stored");
        let survivors = [cache.fetch(a).is_some(), cache.fetch(b).is_some()];
        assert_eq!(
            survivors.iter().filter(|&&s| s).count(),
            1,
            "exactly one old entry survives"
        );
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn refresh_same_key_does_not_grow() {
        let cache = PredictionCache::new(2);
        let k = key("m", &[1.0]);
        cache.fill(k, Ok(Output::Class(1)));
        cache.fill(k, Ok(Output::Class(2)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.fetch(k), Some(Output::Class(2)));
    }

    #[test]
    fn zero_capacity_joins_but_never_stores() {
        let cache = PredictionCache::new(0);
        let k = key("m", &[1.0]);
        assert!(matches!(cache.lookup_or_pending(k), Lookup::MustCompute(_)));
        cache.fill(k, Ok(Output::Class(1)));
        assert!(cache.fetch(k).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_under_churn_keeps_capacity_bound() {
        let cache = PredictionCache::with_shards(8, 1);
        for i in 0..100 {
            cache.fill(key("m", &[i as f32]), Ok(Output::Class(i)));
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.stats().evictions, 92);
    }

    #[test]
    fn sharding_spreads_keys_and_respects_capacity() {
        let cache = PredictionCache::with_shards(64, 8);
        assert_eq!(cache.shard_count(), 8);
        let mut shards_used = HashSet::new();
        for i in 0..256u32 {
            let k = key("m", &[i as f32]);
            shards_used.insert(cache.shard_of(k));
            cache.fill(k, Ok(Output::Class(i)));
            assert!(cache.len() <= 64);
        }
        assert!(
            shards_used.len() >= 6,
            "256 keys should land in most of 8 shards, got {}",
            shards_used.len()
        );
    }

    #[test]
    fn default_shard_count_never_outnumbers_slots() {
        for capacity in [1usize, 2, 3, 5, 7, 64, 0] {
            let cache = PredictionCache::new(capacity);
            if capacity > 0 {
                assert!(
                    cache.shard_count() <= capacity,
                    "capacity {capacity}: {} shards",
                    cache.shard_count()
                );
            }
            assert!(cache.shard_count().is_power_of_two());
        }
    }

    /// Satellite: K concurrent `lookup_or_pending` calls on one key yield
    /// exactly one `MustCompute`; all K−1 `Pending` waiters observe the
    /// fill. The fill happens only after every task has reported its
    /// lookup outcome, so the counts are deterministic regardless of
    /// scheduling.
    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn concurrent_lookups_yield_one_computer_and_all_observe_fill() {
        let cache = PredictionCache::new(64);
        let k = key("m", &[42.0]);
        const K: usize = 16;
        let (report_tx, mut report_rx) = tokio::sync::mpsc::channel::<bool>(K);
        let mut tasks = Vec::new();
        for _ in 0..K {
            let cache = cache.clone();
            let report_tx = report_tx.clone();
            tasks.push(tokio::spawn(async move {
                let (was_computer, rx) = match cache.lookup_or_pending(k) {
                    Lookup::MustCompute(rx) => (true, rx),
                    Lookup::Pending(rx) => (false, rx),
                    Lookup::Hit(_) => panic!("nothing fills before all lookups are in"),
                };
                report_tx.send(was_computer).await.unwrap();
                (was_computer, rx.await.unwrap())
            }));
        }
        drop(report_tx);
        // Wait until every task has performed its lookup, then fill once.
        // (Count to K rather than draining to channel-close: each task
        // keeps its sender alive while it awaits the fill.)
        for _ in 0..K {
            report_rx.recv().await.expect("every task reports");
        }
        cache.fill(k, Ok(Output::Class(9)));

        let mut computers = 0;
        for t in tasks {
            let (was_computer, result) = t.await.unwrap();
            computers += usize::from(was_computer);
            assert_eq!(result.unwrap(), Output::Class(9));
        }
        assert_eq!(computers, 1, "exactly one caller computes");
        assert_eq!(cache.pending_len(), 0);
        let s = cache.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.pending_joins as usize, K - 1);
    }

    /// Satellite: the fail path also wakes every waiter, with the error.
    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn concurrent_waiters_all_observe_fail_pending() {
        let cache = PredictionCache::new(64);
        let k = key("m", &[7.0]);
        let rx0 = match cache.lookup_or_pending(k) {
            Lookup::MustCompute(rx) => rx,
            _ => panic!("first must compute"),
        };
        let mut waiters = Vec::new();
        for _ in 0..8 {
            match cache.lookup_or_pending(k) {
                Lookup::Pending(rx) => waiters.push(rx),
                _ => panic!("subsequent lookups must join"),
            }
        }
        cache.fail_pending(k, "no replicas");
        assert!(matches!(
            rx0.await.unwrap(),
            Err(CacheFillError::Failed(ref m)) if m == "no replicas"
        ));
        for rx in waiters {
            assert!(rx.await.unwrap().is_err());
        }
        assert_eq!(cache.pending_len(), 0);
        assert!(cache.fetch(k).is_none(), "failures are not cached");
    }

    /// Reference model of one CLOCK shard used by the eviction proptest.
    fn unreferenced_set(cache: &PredictionCache, shard: usize) -> HashSet<u64> {
        cache
            .shard_slots(shard)
            .into_iter()
            .filter(|(_, referenced)| !referenced)
            .map(|(k, _)| k.fp[0])
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// CLOCK never exceeds capacity, and never evicts a `referenced`
        /// entry while an unreferenced one exists in the same shard.
        #[test]
        fn clock_eviction_invariants(
            capacity in 1usize..12,
            ops in proptest::collection::vec((0u32..48, any::<bool>()), 1..200),
        ) {
            let cache = PredictionCache::with_shards(capacity, 1);
            for (id, is_fill) in ops {
                let k = CacheKey::from_fingerprint(id as u64, 0);
                if is_fill && cache.fetch(k).is_none() {
                    let stored: HashSet<u64> =
                        cache.shard_slots(0).into_iter().map(|(k, _)| k.fp[0]).collect();
                    let unreferenced = unreferenced_set(&cache, 0);
                    let evictions_before = cache.stats().evictions;
                    cache.fill(k, Ok(Output::Class(id)));
                    let after: HashSet<u64> =
                        cache.shard_slots(0).into_iter().map(|(k, _)| k.fp[0]).collect();
                    let evicted: Vec<u64> = stored.difference(&after).copied().collect();
                    if cache.stats().evictions > evictions_before {
                        prop_assert!(evicted.len() == 1, "one eviction must remove one key");
                        if !unreferenced.is_empty() {
                            prop_assert!(
                                unreferenced.contains(&evicted[0]),
                                "evicted a referenced entry while {:?} were unreferenced",
                                unreferenced
                            );
                        }
                    } else {
                        prop_assert!(evicted.is_empty(), "no eviction counted but a key vanished");
                    }
                }
                prop_assert!(cache.len() <= capacity, "len {} > capacity {}", cache.len(), capacity);
            }
        }
    }
}
