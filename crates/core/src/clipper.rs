//! The Clipper facade: applications, prediction, and feedback.
//!
//! `predict` walks the full §3 request path: selection policy chooses
//! models → per-model lookups flow through the prediction cache and
//! adaptive batching queues → results are gathered **only until the
//! latency deadline** (straggler mitigation, §5.2.2) → the policy combines
//! whatever arrived, substituting each missing model's running-default
//! output and reporting agreement-based confidence.
//!
//! `feedback` joins ground truth against the cached predictions of every
//! candidate model (the join the prediction cache accelerates, §4.2) and
//! folds the result into the per-context policy state.
//!
//! # Control plane (§3, §6.3)
//!
//! Applications and model versions are managed *at runtime*, without
//! restarting the serving tier:
//!
//! - app lifecycle: [`register_app`](Clipper::register_app) /
//!   [`update_app`](Clipper::update_app) /
//!   [`unregister_app`](Clipper::unregister_app);
//! - model-version lifecycle: each model name has a *current version*
//!   (the indirection apps resolve through), a rollback history, and a
//!   parking lot for drained versions.
//!   [`rollout_model`](Clipper::rollout_model) atomically repoints every
//!   referencing app at the new version, waits for predicts that already
//!   selected the old version to settle (they complete against the
//!   version they chose), then drains the old version's replicas through
//!   the queues' graceful-drain machinery — zero dropped queries.
//!   [`rollback_model`](Clipper::rollback_model) restores the previous
//!   version, re-attaching the transports the rollout parked.
//!
//! Registrations persist to the statestore (mirroring the paper's Redis
//! configuration state); [`rehydrate`](Clipper::rehydrate) rebuilds the
//! registry from it after a restart.

use crate::abstraction::{BatchConfig, ModelAbstractionLayer, SchedulerPolicy};
use crate::api::{
    self, ApiError, AppRecord, ModelRecord, ModelView, RehydrateReport, ReplicaRecord,
    RolloutOutcome, SyncReport,
};
use crate::batching::queue::PredictError;
use crate::batching::ReplicaQueue;
use crate::fleet::{Fleet, FleetConfig};
use crate::selection::{build_policy, SelectionPolicy, SelectionStateManager};
use crate::types::{AppConfig, AppUpdate, Feedback, Input, ModelId, Output, Prediction};
use clipper_metrics::{Counter, Histogram, Meter, Registry};
use clipper_rpc::transport::BatchTransport;
use clipper_statestore::StateStore;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use tokio::sync::mpsc;

/// Builder for a [`Clipper`] instance.
pub struct ClipperBuilder {
    cache_capacity: usize,
    cache_enabled: bool,
    registry: Registry,
    statestore: Option<Arc<StateStore>>,
    fleet_config: FleetConfig,
}

impl Default for ClipperBuilder {
    fn default() -> Self {
        ClipperBuilder {
            cache_capacity: 32_768,
            cache_enabled: true,
            registry: Registry::new(),
            statestore: None,
            fleet_config: FleetConfig::default(),
        }
    }
}

impl ClipperBuilder {
    /// Prediction-cache capacity (entries). Default 32768.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Disable the prediction cache entirely (ablation / §4.2 comparison).
    pub fn disable_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Use an existing metrics registry.
    pub fn registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    /// Use an existing statestore (e.g. one served over TCP to mirror the
    /// paper's external-Redis deployment).
    pub fn statestore(mut self, store: Arc<StateStore>) -> Self {
        self.statestore = Some(store);
        self
    }

    /// Timing knobs for the fleet manager (heartbeat interval, suspect
    /// and expiry thresholds) — applied when [`Clipper::fleet`] first
    /// constructs it.
    pub fn fleet_config(mut self, cfg: FleetConfig) -> Self {
        self.fleet_config = cfg;
        self
    }

    /// Build the instance.
    pub fn build(self) -> Clipper {
        let registry = self.registry;
        let mal = ModelAbstractionLayer::new(self.cache_capacity, registry.clone());
        let store = self
            .statestore
            .unwrap_or_else(|| Arc::new(StateStore::new()));
        Clipper {
            inner: Arc::new(Inner {
                mal,
                apps: RwLock::new(HashMap::new()),
                models_dir: RwLock::new(HashMap::new()),
                state_mgr: SelectionStateManager::new(store.clone()),
                store,
                cache_enabled: self.cache_enabled,
                predictions: registry.meter("clipper/predictions"),
                latency_us: registry.histogram("clipper/latency_us"),
                feedback_count: registry.meter("clipper/feedback"),
                defaults_used: registry.counter("clipper/defaults_used"),
                substitutions: registry.counter("clipper/straggler_substitutions"),
                registry,
                fleet_cfg: self.fleet_config,
                fleet: OnceLock::new(),
            }),
        }
    }
}

struct App {
    cfg: AppConfig,
    policy: Box<dyn SelectionPolicy>,
}

/// A drained model version kept revivable: its configuration and its
/// still-connected transports. Rollback re-attaches them behind fresh
/// queues.
struct ParkedVersion {
    cfg: BatchConfig,
    policy: SchedulerPolicy,
    transports: Vec<Arc<dyn BatchTransport>>,
}

/// Per-model-name version directory: the current-version indirection that
/// apps resolve through, plus the rollback stack and the parking lot.
struct ModelDir {
    current: u32,
    versions: Vec<u32>,
    history: Vec<u32>,
    parked: HashMap<u32, ParkedVersion>,
}

impl ModelDir {
    fn record(&self, name: &str) -> ModelRecord {
        ModelRecord {
            name: name.to_string(),
            current: self.current,
            versions: self.versions.clone(),
            history: self.history.clone(),
            batch: Vec::new(),
        }
    }
}

struct Inner {
    mal: Arc<ModelAbstractionLayer>,
    apps: RwLock<HashMap<String, Arc<App>>>,
    /// Lock ordering: `models_dir` before `apps`; never the reverse.
    models_dir: RwLock<HashMap<String, ModelDir>>,
    state_mgr: SelectionStateManager,
    store: Arc<StateStore>,
    cache_enabled: bool,
    registry: Registry,
    predictions: Meter,
    latency_us: Histogram,
    feedback_count: Meter,
    defaults_used: Counter,
    substitutions: Counter,
    fleet_cfg: FleetConfig,
    /// Lazily constructed on first [`Clipper::fleet`] call — a deployment
    /// that never touches the fleet surface pays nothing for it.
    fleet: OnceLock<Fleet>,
}

impl Inner {
    fn persist_app(&self, cfg: &AppConfig) {
        if let Ok(bytes) = serde_json::to_vec(&AppRecord::from(cfg)) {
            self.store.set(&api::app_key(&cfg.name), bytes);
        }
    }

    fn persist_model(&self, name: &str) {
        let record = {
            let dirs = self.models_dir.read();
            let Some(dir) = dirs.get(name) else {
                return;
            };
            let mut rec = dir.record(name);
            // Persist each version's batch knobs — live versions from the
            // abstraction layer, rolled-away versions from the parking
            // lot — so rehydrate() restores them instead of silently
            // resetting rolled-out models to default batching.
            for &v in &dir.versions {
                let id = ModelId::new(name, v);
                let cfg = self
                    .mal
                    .model_config(&id)
                    .or_else(|| dir.parked.get(&v).map(|p| p.cfg.clone()));
                if let Some(cfg) = cfg {
                    // Harvest each live replica's learned curve (§4.4.1)
                    // alongside the version's knobs, so a rehydrated
                    // fleet serves with its tuned per-replica ceilings.
                    // Parked versions have no live queues; their replica
                    // list is simply empty.
                    let replicas = self
                        .mal
                        .replica_tunes(&id)
                        .iter()
                        .map(api::ReplicaTuneRecord::from)
                        .collect();
                    rec.batch.push(api::VersionBatchKnobs {
                        version: v,
                        knobs: (&cfg).into(),
                        replicas,
                    });
                }
            }
            rec
        };
        if let Ok(bytes) = serde_json::to_vec(&record) {
            self.store.set(&api::model_key(name), bytes);
        }
    }

    /// Register one persisted version with the abstraction layer: its
    /// batch knobs, plus any learned per-replica tuning — stashed so the
    /// matching replicas warm-start when they re-attach.
    fn adopt_version(&self, rec: &ModelRecord, v: u32) {
        let cfg = rec
            .knobs_for(v)
            .cloned()
            .map(api::BatchKnobs::into_config)
            .unwrap_or_default();
        let id = ModelId::new(&rec.name, v);
        self.mal.add_model(id.clone(), cfg);
        if let Some(vk) = rec.batch.iter().find(|vb| vb.version == v) {
            if !vk.replicas.is_empty() {
                self.mal
                    .set_replica_tunes(&id, vk.replicas.iter().map(Into::into).collect());
            }
        }
    }
}

/// The Clipper prediction-serving system.
#[derive(Clone)]
pub struct Clipper {
    inner: Arc<Inner>,
}

impl Clipper {
    /// Start building an instance.
    pub fn builder() -> ClipperBuilder {
        ClipperBuilder::default()
    }

    /// Register (or replace) an application — name, candidate models,
    /// policy, SLO. Upsert semantics; the registration persists to the
    /// statestore. Use [`try_register_app`](Self::try_register_app) for
    /// create-only semantics (the control plane's `POST`).
    pub fn register_app(&self, cfg: AppConfig) {
        self.inner.persist_app(&cfg);
        let policy = build_policy(&cfg.policy);
        let name = cfg.name.clone();
        self.inner
            .apps
            .write()
            .insert(name, Arc::new(App { cfg, policy }));
    }

    /// Create-only app registration: refuses a duplicate name (409), an
    /// empty candidate set (400), and a candidate model that is not
    /// registered (404).
    pub fn try_register_app(&self, cfg: AppConfig) -> Result<(), ApiError> {
        if cfg.candidate_models.is_empty() {
            return Err(ApiError::BadRequest(
                "candidate_models must not be empty".into(),
            ));
        }
        for m in &cfg.candidate_models {
            if !self.inner.mal.has_model(m) {
                return Err(ApiError::ModelUnknown(m.to_string()));
            }
        }
        {
            // Check-and-insert under one write lock: two concurrent
            // creates of the same name must yield exactly one 201 — the
            // loser gets the 409, never a silent replace.
            let mut apps = self.inner.apps.write();
            if apps.contains_key(&cfg.name) {
                return Err(ApiError::AppExists(cfg.name.clone()));
            }
            let policy = build_policy(&cfg.policy);
            apps.insert(
                cfg.name.clone(),
                Arc::new(App {
                    cfg: cfg.clone(),
                    policy,
                }),
            );
        }
        self.inner.persist_app(&cfg);
        Ok(())
    }

    /// Live-update an application with a [`AppUpdate`] delta. The swap is
    /// atomic: in-flight predicts finish under the configuration they
    /// started with; the next predict sees the amended one. Learned
    /// policy state survives — when the candidate set changes, per-model
    /// weights carry over by model name. Returns the amended config.
    pub fn update_app(&self, name: &str, update: AppUpdate) -> Result<AppConfig, ApiError> {
        if let Some(models) = &update.candidate_models {
            // An empty candidate set would brick the app: selection would
            // have nothing to choose from (and would wipe learned state).
            if models.is_empty() {
                return Err(ApiError::BadRequest(
                    "candidate_models must not be empty".into(),
                ));
            }
            for m in models {
                if !self.inner.mal.has_model(m) {
                    return Err(ApiError::ModelUnknown(m.to_string()));
                }
            }
        }
        let cfg = {
            let mut apps = self.inner.apps.write();
            let app = apps
                .get_mut(name)
                .ok_or_else(|| ApiError::AppUnknown(name.to_string()))?;
            let cfg = app.cfg.clone().apply(update);
            let policy = build_policy(&cfg.policy);
            *app = Arc::new(App {
                cfg: cfg.clone(),
                policy,
            });
            cfg
        };
        self.inner.persist_app(&cfg);
        Ok(cfg)
    }

    /// Unregister an application: it stops routing immediately (predicts
    /// return `AppUnknown` → 404), its persisted registration and its
    /// per-context selection state are deleted. In-flight predicts that
    /// already resolved the app finish normally.
    pub fn unregister_app(&self, name: &str) -> Result<(), ApiError> {
        self.inner
            .apps
            .write()
            .remove(name)
            .ok_or_else(|| ApiError::AppUnknown(name.to_string()))?;
        self.inner.store.del(&api::app_key(name));
        for key in self
            .inner
            .store
            .keys_with_prefix(&format!("selstate/{name}/"))
        {
            self.inner.store.del(&key);
        }
        Ok(())
    }

    /// The registered configuration of one app.
    pub fn app_config(&self, name: &str) -> Option<AppConfig> {
        self.inner.apps.read().get(name).map(|a| a.cfg.clone())
    }

    /// Register a model version with per-replica batching configuration
    /// and the default depth-aware scheduler (power-of-two-choices). The
    /// first registered version of a name becomes its *current* version;
    /// later versions are rollout candidates until
    /// [`rollout_model`](Self::rollout_model) promotes them. Returns
    /// whether the version was newly registered (`false`: it already
    /// existed and keeps its original configuration).
    pub fn add_model(&self, id: ModelId, cfg: BatchConfig) -> bool {
        self.add_model_with_policy(id, cfg, SchedulerPolicy::default())
    }

    /// Register a model version with an explicit replica-scheduling
    /// policy. See [`add_model`](Self::add_model).
    pub fn add_model_with_policy(
        &self,
        id: ModelId,
        cfg: BatchConfig,
        policy: SchedulerPolicy,
    ) -> bool {
        if !self
            .inner
            .mal
            .add_model_with_policy(id.clone(), cfg, policy)
        {
            // Duplicate version: the MAL keeps the original config, the
            // directory already lists the version — nothing to persist.
            return false;
        }
        {
            let mut dirs = self.inner.models_dir.write();
            let dir = dirs.entry(id.name.clone()).or_insert_with(|| ModelDir {
                current: id.version,
                versions: Vec::new(),
                history: Vec::new(),
                parked: HashMap::new(),
            });
            if !dir.versions.contains(&id.version) {
                dir.versions.push(id.version);
                dir.versions.sort_unstable();
            }
        }
        self.inner.persist_model(&id.name);
        true
    }

    /// Re-persist `name`'s record to the statestore, capturing the
    /// current batch knobs *and* each live replica's learned latency
    /// model (§4.4.1) so a later [`rehydrate`](Self::rehydrate) restores
    /// a tuned fleet instead of cold controllers. Returns `false` for an
    /// unknown model. Rollouts and registrations checkpoint implicitly;
    /// call this to capture tuning learned since.
    pub fn checkpoint_model(&self, name: &str) -> bool {
        if !self.inner.models_dir.read().contains_key(name) {
            return false;
        }
        self.inner.persist_model(name);
        true
    }

    /// The version predicts for `name` currently resolve to.
    pub fn current_version(&self, name: &str) -> Option<u32> {
        self.inner.models_dir.read().get(name).map(|d| d.current)
    }

    /// The model catalog: every model name with its version directory and
    /// the live scheduler state of its current version, sorted by name.
    pub fn model_views(&self) -> Vec<ModelView> {
        let dirs = self.inner.models_dir.read();
        let mut views: Vec<ModelView> = dirs
            .iter()
            .map(|(name, dir)| self.view_of(name, dir))
            .collect();
        drop(dirs);
        views.sort_by(|a, b| a.name.cmp(&b.name));
        views
    }

    /// One model's catalog entry.
    pub fn model_view(&self, name: &str) -> Option<ModelView> {
        self.inner
            .models_dir
            .read()
            .get(name)
            .map(|dir| self.view_of(name, dir))
    }

    fn view_of(&self, name: &str, dir: &ModelDir) -> ModelView {
        let id = ModelId::new(name, dir.current);
        let mal = &self.inner.mal;
        ModelView {
            name: name.to_string(),
            current_version: dir.current,
            versions: dir.versions.clone(),
            history: dir.history.clone(),
            replicas: mal.replica_queue_ids(&id),
            queue_depth: mal.queue_depth(&id),
            inflight: mal.inflight(&id),
        }
    }

    /// Roll `name` forward (or sideways) to `to_version`, which must be a
    /// registered version with at least one live replica (a parked
    /// version is revived from its retained transports). Atomically
    /// repoints every app referencing the old version, waits for predicts
    /// that already selected the old version to settle against it, then
    /// gracefully drains the old version's replicas — every accepted
    /// query completes or fail-fills; nothing is dropped and no pending
    /// cache entry is left wedged. The old version parks, revivable by
    /// [`rollback_model`](Self::rollback_model).
    pub async fn rollout_model(
        &self,
        name: &str,
        to_version: u32,
    ) -> Result<RolloutOutcome, ApiError> {
        self.rollout_inner(name, to_version).await
    }

    /// Undo the most recent rollout of `name`: restore the previous
    /// version (reviving its parked replicas), repoint apps back, and
    /// drain the version being rolled back. Errors with
    /// [`ApiError::NoRolloutHistory`] when nothing was rolled out.
    pub async fn rollback_model(&self, name: &str) -> Result<RolloutOutcome, ApiError> {
        let prev = {
            let mut dirs = self.inner.models_dir.write();
            let dir = dirs
                .get_mut(name)
                .ok_or_else(|| ApiError::ModelUnknown(name.to_string()))?;
            dir.history
                .pop()
                .ok_or_else(|| ApiError::NoRolloutHistory(name.to_string()))?
        };
        match self.rollout_inner(name, prev).await {
            Ok(outcome) => Ok(outcome),
            Err(e) => {
                // Undo the pop so a failed rollback stays retryable.
                if let Some(dir) = self.inner.models_dir.write().get_mut(name) {
                    dir.history.push(prev);
                }
                Err(e)
            }
        }
    }

    async fn rollout_inner(&self, name: &str, to_version: u32) -> Result<RolloutOutcome, ApiError> {
        let mal = self.inner.mal.clone();
        let to_id = ModelId::new(name, to_version);
        let from_version = {
            let mut dirs = self.inner.models_dir.write();
            let dir = dirs
                .get_mut(name)
                .ok_or_else(|| ApiError::ModelUnknown(name.to_string()))?;
            if dir.current == to_version {
                return Err(ApiError::AlreadyCurrent {
                    model: name.to_string(),
                    version: to_version,
                });
            }
            if !mal.has_model(&to_id) {
                // Revive a parked version from its retained transports.
                let parked = dir.parked.remove(&to_version).ok_or({
                    ApiError::VersionUnknown {
                        model: name.to_string(),
                        version: to_version,
                    }
                })?;
                mal.add_model_with_policy(to_id.clone(), parked.cfg, parked.policy);
                for t in parked.transports {
                    let _ = mal.add_replica(&to_id, t);
                }
            }
            if mal.replica_count(&to_id) == 0 {
                return Err(ApiError::NoReplicasForVersion {
                    model: name.to_string(),
                    version: to_version,
                });
            }
            let from = dir.current;
            dir.current = to_version;
            dir.history.push(from);
            if !dir.versions.contains(&to_version) {
                dir.versions.push(to_version);
                dir.versions.sort_unstable();
            }
            from
        };

        // Atomically repoint every app referencing name:vFROM. The old
        // App values are retained so we can wait for predicts that
        // captured them to settle.
        let mut repointed_apps = Vec::new();
        let mut old_apps = Vec::new();
        let mut repointed_cfgs = Vec::new();
        let mut max_slo = Duration::ZERO;
        {
            let mut apps = self.inner.apps.write();
            for (app_name, app) in apps.iter_mut() {
                let refers_from = app
                    .cfg
                    .candidate_models
                    .iter()
                    .any(|m| m.name == name && m.version == from_version);
                let refers_to = app
                    .cfg
                    .candidate_models
                    .iter()
                    .any(|m| m.name == name && m.version == to_version);
                // An app referencing *both* versions is deliberately
                // comparing them (A/B) — rewriting would collapse its
                // candidate set into duplicates. Leave it pinned.
                if !refers_from || refers_to {
                    continue;
                }
                let mut cfg = app.cfg.clone();
                for m in &mut cfg.candidate_models {
                    if m.name == name && m.version == from_version {
                        m.version = to_version;
                    }
                }
                max_slo = max_slo.max(cfg.slo);
                let policy = build_policy(&cfg.policy);
                let prev = std::mem::replace(
                    app,
                    Arc::new(App {
                        cfg: cfg.clone(),
                        policy,
                    }),
                );
                old_apps.push(prev);
                repointed_apps.push(app_name.clone());
                repointed_cfgs.push(cfg);
            }
        }
        for cfg in &repointed_cfgs {
            self.inner.persist_app(cfg);
        }

        // Quiesce: predicts that selected the old version hold a clone of
        // the replaced App Arc and always return by their SLO deadline
        // (straggler mitigation); wait for those clones to drop — bounded
        // by 2×SLO plus margin — so no in-flight query still targets the
        // old version when its queues begin draining.
        let quiesce_deadline = Instant::now() + max_slo * 2 + Duration::from_millis(250);
        while !old_apps.iter().all(|a| Arc::strong_count(a) == 1) {
            if Instant::now() >= quiesce_deadline {
                break;
            }
            tokio::time::sleep(Duration::from_millis(1)).await;
        }
        // Margin for per-model fan-out tasks to reach their dispatch.
        tokio::time::sleep(Duration::from_millis(10)).await;

        // Drain the old version through the graceful-drain machinery and
        // park it (configuration + transports) for rollback — unless an
        // app still references it explicitly (A/B pinning), in which case
        // it stays live and `drained_replicas` reports 0.
        let from_id = ModelId::new(name, from_version);
        let still_referenced = self
            .inner
            .apps
            .read()
            .values()
            .any(|a| a.cfg.candidate_models.contains(&from_id));
        let mut drained_replicas = 0;
        if still_referenced {
            self.inner.persist_model(name);
            return Ok(RolloutOutcome {
                model: name.to_string(),
                from_version,
                to_version,
                repointed_apps,
                drained_replicas,
            });
        }
        if let Ok(removed) = mal.remove_model(&from_id) {
            drained_replicas = removed.queues.len();
            if let Some(dir) = self.inner.models_dir.write().get_mut(name) {
                dir.parked.insert(
                    from_version,
                    ParkedVersion {
                        cfg: removed.cfg,
                        policy: removed.policy,
                        transports: removed.transports,
                    },
                );
            }
            for q in &removed.queues {
                q.drained().await;
            }
        }
        self.inner.persist_model(name);
        Ok(RolloutOutcome {
            model: name.to_string(),
            from_version,
            to_version,
            repointed_apps,
            drained_replicas,
        })
    }

    /// Rebuild the registry from the statestore's persisted configuration
    /// (the paper's external-Redis config state): model version
    /// directories and app registrations written by earlier instances.
    /// Already-registered names are left untouched, and a corrupt record
    /// is skipped (reported in [`RehydrateReport::skipped`]) rather than
    /// aborting the rest of the recovery. Each version is restored with
    /// the batch knobs it was persisted with ([`ModelRecord::batch`]);
    /// only records predating knob persistence fall back to default
    /// batching. Replicas re-attach afterwards via
    /// [`add_replica`](Self::add_replica).
    pub fn rehydrate(&self) -> RehydrateReport {
        let store = &self.inner.store;
        let mut report = RehydrateReport::default();
        for key in store.keys_with_prefix(api::MODEL_KEY_PREFIX) {
            let Some(bytes) = store.get(&key) else {
                continue;
            };
            let Ok(rec) = serde_json::from_slice::<ModelRecord>(&bytes) else {
                report.skipped.push(key);
                continue;
            };
            {
                let mut dirs = self.inner.models_dir.write();
                if dirs.contains_key(&rec.name) {
                    continue;
                }
                dirs.insert(
                    rec.name.clone(),
                    ModelDir {
                        current: rec.current,
                        versions: rec.versions.clone(),
                        history: rec.history.clone(),
                        parked: HashMap::new(),
                    },
                );
            }
            for &v in &rec.versions {
                self.inner.adopt_version(&rec, v);
            }
            report.models += 1;
        }
        for key in store.keys_with_prefix(api::APP_KEY_PREFIX) {
            let Some(bytes) = store.get(&key) else {
                continue;
            };
            let Ok(rec) = serde_json::from_slice::<AppRecord>(&bytes) else {
                report.skipped.push(key);
                continue;
            };
            if self.inner.apps.read().contains_key(&rec.name) {
                continue;
            }
            let cfg = rec.into_config();
            let policy = build_policy(&cfg.policy);
            self.inner
                .apps
                .write()
                .insert(cfg.name.clone(), Arc::new(App { cfg, policy }));
            report.apps += 1;
        }
        // Fleet replica registrations: adopt each live record into the
        // membership view (attaching through a matching launcher when one
        // is registered; otherwise the container's own re-dial — or the
        // monitor's expiry — settles it). Expired tombstones are left in
        // the store untouched: they answer late heartbeats with 410 and
        // carry the warm start for re-registration.
        for key in store.keys_with_prefix(api::REPLICA_KEY_PREFIX) {
            let Some(bytes) = store.get(&key) else {
                continue;
            };
            let Ok(rec) = serde_json::from_slice::<ReplicaRecord>(&bytes) else {
                report.skipped.push(key);
                continue;
            };
            if self.fleet().adopt_record(rec) {
                report.replicas += 1;
            }
        }
        report
    }

    /// Reconcile this frontend's in-memory registry against the
    /// statestore — the fan-in counterpart of [`rehydrate`]: where
    /// rehydrate fills an *empty* registry after a restart, `sync_config`
    /// runs on a *live* frontend whose persisted records another frontend
    /// (sharing the store) may have moved underneath it.
    ///
    /// Per model record: unknown names are adopted wholesale
    /// (directory + versions with their persisted batch knobs); known
    /// names adopt any versions they lack; and when the persisted
    /// *current* pointer differs from the local one, the full local
    /// rollout path runs — repoint referencing apps, quiesce in-flight
    /// predicts, gracefully drain the outgoing version's local replicas —
    /// so convergence loses nothing, exactly like a locally-initiated
    /// rollout. A pointer move whose target version has no local replicas
    /// is deferred (reported in [`SyncReport::pending`]) and retried by a
    /// later pass, after replicas attach.
    ///
    /// Per app record: unknown apps are adopted, changed records replace
    /// the local registration (next predict sees it; in-flight predicts
    /// finish under the config they captured), and local apps whose
    /// record was deleted are unregistered locally.
    ///
    /// Note the prediction caches need no cross-frontend invalidation on
    /// rollout: cache keys embed the full `ModelId` (name *and* version),
    /// so entries for an outgoing version simply stop being looked up and
    /// age out under CLOCK reclamation.
    ///
    /// [`rehydrate`]: Self::rehydrate
    pub async fn sync_config(&self) -> SyncReport {
        let store = self.inner.store.clone();
        let mut report = SyncReport::default();

        // Models first: adopting directories/pointer moves also repoints
        // local apps through the rollout path, which the app pass below
        // then observes as already-converged.
        for key in store.keys_with_prefix(api::MODEL_KEY_PREFIX) {
            let Some(bytes) = store.get(&key) else {
                continue;
            };
            let Ok(rec) = serde_json::from_slice::<ModelRecord>(&bytes) else {
                report.skipped.push(key);
                continue;
            };
            let known = self.inner.models_dir.read().contains_key(&rec.name);
            if !known {
                self.inner
                    .models_dir
                    .write()
                    .entry(rec.name.clone())
                    .or_insert_with(|| ModelDir {
                        current: rec.current,
                        versions: rec.versions.clone(),
                        history: rec.history.clone(),
                        parked: HashMap::new(),
                    });
                for &v in &rec.versions {
                    self.inner.adopt_version(&rec, v);
                }
                report.adopted_models += 1;
                continue;
            }
            // Adopt versions the local directory lacks — directly, not via
            // `add_model`, which would persist the *local* (still-stale)
            // current pointer over the record we are adopting.
            {
                let mut dirs = self.inner.models_dir.write();
                let dir = dirs.get_mut(&rec.name).expect("checked above");
                for &v in &rec.versions {
                    if !dir.versions.contains(&v) {
                        dir.versions.push(v);
                        dir.versions.sort_unstable();
                        self.inner.adopt_version(&rec, v);
                        report.adopted_versions += 1;
                    }
                }
            }
            let local_current = self.current_version(&rec.name);
            if local_current != Some(rec.current) {
                match self.rollout_inner(&rec.name, rec.current).await {
                    Ok(_) => report.repointed += 1,
                    Err(_) => report
                        .pending
                        .push(format!("{}:v{}", rec.name, rec.current)),
                }
            }
        }

        // Apps: adopt new, replace changed, drop deleted.
        let mut persisted_names = Vec::new();
        for key in store.keys_with_prefix(api::APP_KEY_PREFIX) {
            let Some(bytes) = store.get(&key) else {
                continue;
            };
            let Ok(rec) = serde_json::from_slice::<AppRecord>(&bytes) else {
                report.skipped.push(key);
                continue;
            };
            persisted_names.push(rec.name.clone());
            let local = self
                .inner
                .apps
                .read()
                .get(&rec.name)
                .map(|a| AppRecord::from(&a.cfg));
            match local {
                Some(ref cur) if *cur == rec => {}
                found => {
                    let cfg = rec.into_config();
                    let policy = build_policy(&cfg.policy);
                    self.inner
                        .apps
                        .write()
                        .insert(cfg.name.clone(), Arc::new(App { cfg, policy }));
                    if found.is_some() {
                        report.updated_apps += 1;
                    } else {
                        report.adopted_apps += 1;
                    }
                }
            }
        }
        let local_apps = self.apps();
        for name in local_apps {
            // Only a truly absent key means "deleted elsewhere" — a
            // present-but-corrupt record was skipped above, not removed.
            if !persisted_names.contains(&name)
                && store.get(&api::app_key(&name)).is_none()
                && self.inner.apps.write().remove(&name).is_some()
            {
                report.removed_apps += 1;
            }
        }

        // Fleet replicas: adopt records another frontend registered, so
        // the fan-in group shares one membership view. Same semantics as
        // the rehydrate pass; records already known locally are no-ops.
        for key in store.keys_with_prefix(api::REPLICA_KEY_PREFIX) {
            let Some(bytes) = store.get(&key) else {
                continue;
            };
            let Ok(rec) = serde_json::from_slice::<ReplicaRecord>(&bytes) else {
                report.skipped.push(key);
                continue;
            };
            if self.fleet().adopt_record(rec) {
                report.adopted_replicas += 1;
            }
        }
        report
    }

    /// Hot-remove and gracefully drain every replica of `id` the
    /// scheduler currently marks suspect (≥3 consecutive failed batches,
    /// or an external suspect hint from the fleet health monitor) — the
    /// ops response to a replica that started failing mid-run. Returns
    /// the drained queue ids. Callers decide policy (this will happily
    /// remove the last replica if everything is suspect).
    ///
    /// Idempotent against the fleet's expiry path racing on the same
    /// queue id (a dead replica is usually both silent *and* failing):
    /// `remove_replica` removes under the replica write lock, so exactly
    /// one caller wins each queue — the loser skips it, nothing
    /// double-drains, and each side's drain accounting counts only the
    /// queues it actually won.
    pub async fn drain_suspect_replicas(&self, id: &ModelId) -> Vec<String> {
        let mut removed = Vec::new();
        for qid in self.inner.mal.suspect_queue_ids(id) {
            if let Ok(queue) = self.inner.mal.remove_replica(id, &qid) {
                queue.drained().await;
                removed.push(qid);
            }
        }
        removed
    }

    /// Attach a container replica to a model — safe mid-traffic. Returns
    /// the replica's queue id (the handle for hot removal).
    pub fn add_replica(
        &self,
        id: &ModelId,
        transport: Arc<dyn BatchTransport>,
    ) -> Result<String, PredictError> {
        self.inner.mal.add_replica(id, transport)
    }

    /// Hot-remove one replica by queue id: it stops receiving queries
    /// immediately and drains gracefully (no query dropped, no cache
    /// entry wedged). Await `drained()` on the returned queue to observe
    /// completion.
    pub fn remove_replica(
        &self,
        id: &ModelId,
        queue_id: &str,
    ) -> Result<Arc<ReplicaQueue>, PredictError> {
        self.inner.mal.remove_replica(id, queue_id)
    }

    /// Remove (and gracefully drain) all replicas of a model.
    pub fn remove_replicas(&self, id: &ModelId) {
        self.inner.mal.remove_replicas(id);
    }

    /// The fleet manager (replica self-registration, heartbeat health,
    /// autoscaling) — constructed lazily on first use, over this
    /// instance's abstraction layer, statestore, and metrics registry.
    pub fn fleet(&self) -> Fleet {
        self.inner
            .fleet
            .get_or_init(|| {
                Fleet::new(
                    self.inner.mal.clone(),
                    self.inner.store.clone(),
                    &self.inner.registry,
                    self.inner.fleet_cfg.clone(),
                )
            })
            .clone()
    }

    /// The underlying model abstraction layer.
    pub fn abstraction(&self) -> &Arc<ModelAbstractionLayer> {
        &self.inner.mal
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The contextual selection-state manager.
    pub fn state_manager(&self) -> &SelectionStateManager {
        &self.inner.state_mgr
    }

    /// Registered application names.
    pub fn apps(&self) -> Vec<String> {
        self.inner.apps.read().keys().cloned().collect()
    }

    /// The backing statestore (configuration + selection state).
    pub fn store(&self) -> &Arc<StateStore> {
        &self.inner.store
    }

    fn app(&self, name: &str) -> Result<Arc<App>, PredictError> {
        self.inner
            .apps
            .read()
            .get(name)
            .cloned()
            .ok_or(PredictError::AppUnknown)
    }

    /// Fetch (and lazily reconcile) the selection state for an app. After
    /// an app update or a model-version rollout the stored state may
    /// reference the previous candidate set; it is remapped — weights
    /// carried over by model name — before any selection keys on it.
    fn app_state(
        &self,
        app_name: &str,
        context: Option<&str>,
        app: &App,
    ) -> Result<crate::selection::PolicyState, PredictError> {
        let state = self
            .inner
            .state_mgr
            .get_or_init(
                app_name,
                context,
                app.policy.as_ref(),
                &app.cfg.candidate_models,
                app.cfg.seed,
            )
            .map_err(|e| PredictError::Failed(e.to_string()))?;
        if state.models == app.cfg.candidate_models {
            return Ok(state);
        }
        self.inner
            .state_mgr
            .update(
                app_name,
                context,
                app.policy.as_ref(),
                &app.cfg.candidate_models,
                app.cfg.seed,
                |s| {
                    s.remap_models(&app.cfg.candidate_models);
                },
            )
            .map_err(|e| PredictError::Failed(e.to_string()))
    }

    /// Serve one prediction for `app`, optionally under a user/session
    /// `context` (§5.3). Always returns by the app's SLO deadline (plus
    /// scheduling noise): stragglers are substituted, and if *nothing*
    /// arrived the app's default output is returned with zero confidence.
    pub async fn predict(
        &self,
        app_name: &str,
        context: Option<&str>,
        input: Input,
    ) -> Result<Prediction, PredictError> {
        let start = Instant::now();
        if input.is_empty() {
            return Err(PredictError::BadInput("empty feature vector".into()));
        }
        let app = self.app(app_name)?;
        let state = self.app_state(app_name, context, &app)?;

        let mut selected = app.policy.select(&state, &input);
        if selected.is_empty() {
            return Err(PredictError::Failed("policy selected no models".into()));
        }
        let deadline = start + app.cfg.slo;

        // Single-candidate fast path — the common shape (one model per
        // app) and the predict hot path. Calls the MAL inline instead of
        // standing up an mpsc channel plus a spawned fan-out task per
        // request. The SLO deadline still applies: on timeout the
        // in-flight call moves to a background task so cache waiters
        // settle and the model's running default keeps refreshing,
        // exactly as the spawned fan-out would.
        if selected.len() == 1 {
            // The future carries the ModelId through and hands it back,
            // so the completed path reuses the one clone as the preds
            // key instead of cloning again.
            let mut call = Box::pin({
                let mal = self.inner.mal.clone();
                let model = selected[0].clone();
                let input = input.clone();
                let use_cache = self.inner.cache_enabled;
                async move {
                    let result = mal.predict(&model, input, use_cache).await;
                    (model, result)
                }
            });
            let budget = deadline.saturating_duration_since(Instant::now());
            let (model, arrived) = match tokio::time::timeout(budget, &mut call).await {
                Ok((model, Ok(out))) => (model, Some(out)),
                Ok((model, Err(_))) => (model, None),
                Err(_) => {
                    // Straggler: let it finish off-path.
                    tokio::spawn(call);
                    (selected.pop().expect("len == 1"), None)
                }
            };
            let fresh = arrived.is_some();
            let substituted = match arrived {
                Some(out) => Some(out),
                None => {
                    let default = self.inner.mal.default_output(&model);
                    if default.is_some() {
                        self.inner.substitutions.inc();
                    }
                    default
                }
            };
            let prediction = match substituted {
                Some(out) => {
                    let mut preds = HashMap::with_capacity(1);
                    preds.insert(model, out);
                    let (output, confidence) = app.policy.combine(&state, &input, &preds);
                    Prediction {
                        output,
                        confidence,
                        models_used: usize::from(fresh),
                        models_missing: usize::from(!fresh),
                        latency: start.elapsed(),
                    }
                }
                None => {
                    self.inner.defaults_used.inc();
                    Prediction {
                        output: app.cfg.default_output.clone(),
                        confidence: 0.0,
                        models_used: 0,
                        models_missing: 1,
                        latency: start.elapsed(),
                    }
                }
            };
            self.inner.predictions.mark();
            self.inner
                .latency_us
                .record(prediction.latency.as_micros() as u64);
            return Ok(prediction);
        }

        // Fan out; each model reports back over the channel as it lands.
        let (tx, mut rx) =
            mpsc::channel::<(ModelId, Result<Output, PredictError>)>(selected.len().max(1));
        for model in selected.iter().cloned() {
            let mal = self.inner.mal.clone();
            let input = input.clone();
            let tx = tx.clone();
            let use_cache = self.inner.cache_enabled;
            tokio::spawn(async move {
                let result = mal.predict(&model, input, use_cache).await;
                let _ = tx.send((model, result)).await;
            });
        }
        drop(tx);

        // Gather until the SLO deadline (straggler mitigation).
        let mut preds: HashMap<ModelId, Output> = HashMap::new();
        let mut settled = 0usize;
        while settled < selected.len() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match tokio::time::timeout(deadline - now, rx.recv()).await {
                Ok(Some((model, Ok(out)))) => {
                    preds.insert(model, out);
                    settled += 1;
                }
                Ok(Some((_, Err(_)))) => {
                    settled += 1;
                }
                Ok(None) => break,
                Err(_) => break, // deadline reached
            }
        }

        let arrived = preds.len();
        let missing = selected.len() - arrived;

        // Substitute each missing model's running default (§5.2.2) so the
        // ensemble can still vote, with the loss of accuracy reflected in
        // the agreement-based confidence.
        if missing > 0 {
            for model in &selected {
                if !preds.contains_key(model) {
                    if let Some(default) = self.inner.mal.default_output(model) {
                        preds.insert(model.clone(), default);
                        self.inner.substitutions.inc();
                    }
                }
            }
        }

        let prediction = if preds.is_empty() {
            self.inner.defaults_used.inc();
            Prediction {
                output: app.cfg.default_output.clone(),
                confidence: 0.0,
                models_used: 0,
                models_missing: selected.len(),
                latency: start.elapsed(),
            }
        } else {
            let (output, confidence) = app.policy.combine(&state, &input, &preds);
            Prediction {
                output,
                confidence,
                models_used: arrived,
                models_missing: missing,
                latency: start.elapsed(),
            }
        };

        self.inner.predictions.mark();
        self.inner
            .latency_us
            .record(prediction.latency.as_micros() as u64);
        Ok(prediction)
    }

    /// Join application feedback with the candidate models' predictions
    /// for `input` and fold it into the context's policy state.
    pub async fn feedback(
        &self,
        app_name: &str,
        context: Option<&str>,
        input: Input,
        feedback: Feedback,
    ) -> Result<(), PredictError> {
        if input.is_empty() {
            return Err(PredictError::BadInput("empty feature vector".into()));
        }
        let app = self.app(app_name)?;

        // Join feedback with predictions through the cache: recent
        // predictions hit; unseen inputs are evaluated.
        let (tx, mut rx) = mpsc::channel::<(ModelId, Result<Output, PredictError>)>(
            app.cfg.candidate_models.len().max(1),
        );
        for model in app.cfg.candidate_models.iter().cloned() {
            let mal = self.inner.mal.clone();
            let input = input.clone();
            let tx = tx.clone();
            let use_cache = self.inner.cache_enabled;
            tokio::spawn(async move {
                let result = mal.predict(&model, input, use_cache).await;
                let _ = tx.send((model, result)).await;
            });
        }
        drop(tx);
        let mut preds: HashMap<ModelId, Output> = HashMap::new();
        while let Some((model, result)) = rx.recv().await {
            if let Ok(out) = result {
                preds.insert(model, out);
            }
        }

        self.inner
            .state_mgr
            .update(
                app_name,
                context,
                app.policy.as_ref(),
                &app.cfg.candidate_models,
                app.cfg.seed,
                |state| {
                    // Post-rollout/update the stored state may reference
                    // the previous candidate set; remap before observing.
                    state.remap_models(&app.cfg.candidate_models);
                    app.policy.observe(state, &input, &feedback, &preds);
                },
            )
            .map_err(|e| PredictError::Failed(e.to_string()))?;
        self.inner.feedback_count.mark();
        Ok(())
    }

    /// Current policy state for `(app, context)` — used by reports.
    pub fn policy_state(
        &self,
        app_name: &str,
        context: Option<&str>,
    ) -> Result<crate::selection::PolicyState, PredictError> {
        let app = self.app(app_name)?;
        self.app_state(app_name, context, &app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::BatchStrategy;
    use crate::types::PolicyKind;
    use clipper_rpc::message::{PredictReply, WireOutput};
    use std::time::Duration;

    /// A transport answering `label`, optionally after an async delay
    /// (async so single-threaded test runtimes keep their timers running).
    struct ConstTransport {
        label: u32,
        delay: Option<Duration>,
    }

    impl BatchTransport for ConstTransport {
        fn predict_batch(
            &self,
            inputs: &[Input],
        ) -> clipper_rpc::BoxFuture<Result<PredictReply, clipper_rpc::RpcError>> {
            let (label, delay, n) = (self.label, self.delay, inputs.len());
            Box::pin(async move {
                if let Some(d) = delay {
                    tokio::time::sleep(d).await;
                }
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(label); n],
                    queue_us: 0,
                    compute_us: 100,
                })
            })
        }
        fn id(&self) -> String {
            format!("const-{}", self.label)
        }
    }

    fn const_transport(label: u32, delay: Option<Duration>) -> Arc<dyn BatchTransport> {
        Arc::new(ConstTransport { label, delay })
    }

    fn setup(labels: &[u32], policy: PolicyKind, slo: Duration) -> (Clipper, Vec<ModelId>) {
        let clipper = Clipper::builder().build();
        let models: Vec<ModelId> = labels
            .iter()
            .enumerate()
            .map(|(i, _)| ModelId::new(&format!("m{i}"), 1))
            .collect();
        for (i, &label) in labels.iter().enumerate() {
            clipper.add_model(models[i].clone(), BatchConfig::default());
            clipper
                .add_replica(&models[i], const_transport(label, None))
                .unwrap();
        }
        clipper.register_app(
            AppConfig::new("app", models.clone())
                .with_policy(policy)
                .with_slo(slo),
        );
        (clipper, models)
    }

    #[tokio::test]
    async fn predict_returns_the_models_answer() {
        let (clipper, _) = setup(
            &[4],
            PolicyKind::Static { model_index: 0 },
            Duration::from_millis(100),
        );
        let p = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(4));
        assert_eq!(p.confidence, 1.0);
        assert_eq!(p.models_used, 1);
        assert_eq!(p.models_missing, 0);
    }

    #[tokio::test]
    async fn unknown_app_errors() {
        let (clipper, _) = setup(
            &[1],
            PolicyKind::Static { model_index: 0 },
            Duration::from_millis(100),
        );
        let err = clipper
            .predict("ghost", None, Arc::new(vec![1.0]))
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::AppUnknown);
    }

    #[tokio::test]
    async fn ensemble_majority_wins_with_agreement_confidence() {
        let (clipper, _) = setup(
            &[7, 7, 2],
            PolicyKind::MajorityVote,
            Duration::from_millis(200),
        );
        let p = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(7));
        assert!((p.confidence - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.models_used, 3);
    }

    #[tokio::test]
    async fn straggler_is_substituted_not_waited_for() {
        // Model 0 answers instantly with 5; model 1 takes 150ms — far past
        // the 40ms SLO.
        let clipper = Clipper::builder().build();
        let m0 = ModelId::new("fast", 1);
        let m1 = ModelId::new("slow", 1);
        clipper.add_model(m0.clone(), BatchConfig::default());
        clipper.add_model(m1.clone(), BatchConfig::default());
        clipper.add_replica(&m0, const_transport(5, None)).unwrap();
        clipper
            .add_replica(&m1, const_transport(9, Some(Duration::from_millis(150))))
            .unwrap();
        clipper.register_app(
            AppConfig::new("app", vec![m0.clone(), m1.clone()])
                .with_policy(PolicyKind::MajorityVote)
                .with_slo(Duration::from_millis(40)),
        );
        let start = Instant::now();
        let p = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(120),
            "must not wait for the straggler, took {elapsed:?}"
        );
        assert_eq!(p.output, Output::Class(5));
        assert_eq!(p.models_used, 1);
        assert_eq!(p.models_missing, 1);
        assert!(p.confidence <= 1.0);
    }

    #[tokio::test]
    async fn all_models_missing_returns_default_output() {
        let clipper = Clipper::builder().build();
        let m = ModelId::new("slow", 1);
        clipper.add_model(m.clone(), BatchConfig::default());
        clipper
            .add_replica(&m, const_transport(1, Some(Duration::from_millis(200))))
            .unwrap();
        clipper.register_app(
            AppConfig::new("app", vec![m])
                .with_policy(PolicyKind::MajorityVote)
                .with_slo(Duration::from_millis(30))
                .with_default_output(Output::Class(42)),
        );
        let p = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(42));
        assert_eq!(p.confidence, 0.0);
        assert_eq!(p.models_used, 0);
    }

    #[tokio::test]
    async fn feedback_shifts_exp3_toward_the_accurate_model() {
        // Model 0 always answers 0 (wrong); model 1 answers 1 (right).
        let (clipper, models) = setup(
            &[0, 1],
            PolicyKind::Exp3 { eta: 0.5 },
            Duration::from_millis(100),
        );
        for i in 0..60 {
            let input: Input = Arc::new(vec![i as f32]);
            clipper
                .feedback("app", None, input, Feedback::class(1))
                .await
                .unwrap();
        }
        let state = clipper.policy_state("app", None).unwrap();
        let idx_good = state.index_of(&models[1]).unwrap();
        let probs = state.probabilities();
        assert!(
            probs[idx_good] > 0.8,
            "good model should dominate: {probs:?}"
        );
    }

    #[tokio::test]
    async fn contexts_learn_independently() {
        let (clipper, models) = setup(
            &[0, 1],
            PolicyKind::Exp3 { eta: 0.5 },
            Duration::from_millis(100),
        );
        // User A's truth is 1 (model 1 right); user B's truth is 0.
        for i in 0..50 {
            clipper
                .feedback(
                    "app",
                    Some("userA"),
                    Arc::new(vec![i as f32]),
                    Feedback::class(1),
                )
                .await
                .unwrap();
            clipper
                .feedback(
                    "app",
                    Some("userB"),
                    Arc::new(vec![1000.0 + i as f32]),
                    Feedback::class(0),
                )
                .await
                .unwrap();
        }
        let sa = clipper.policy_state("app", Some("userA")).unwrap();
        let sb = clipper.policy_state("app", Some("userB")).unwrap();
        let good_a = sa.probabilities()[sa.index_of(&models[1]).unwrap()];
        let good_b = sb.probabilities()[sb.index_of(&models[0]).unwrap()];
        assert!(good_a > 0.7, "user A favors model 1: {good_a}");
        assert!(good_b > 0.7, "user B favors model 0: {good_b}");
    }

    #[tokio::test]
    async fn cached_predictions_accelerate_feedback() {
        let (clipper, _) = setup(
            &[1, 1],
            PolicyKind::Exp4 { eta: 0.2 },
            Duration::from_millis(100),
        );
        let input: Input = Arc::new(vec![5.0]);
        clipper.predict("app", None, input.clone()).await.unwrap();
        // Give the cache a moment to fill both models.
        tokio::time::sleep(Duration::from_millis(20)).await;
        let before = clipper.abstraction().cache().stats();
        clipper
            .feedback("app", None, input, Feedback::class(1))
            .await
            .unwrap();
        let after = clipper.abstraction().cache().stats();
        assert!(
            after.hits > before.hits,
            "feedback join should hit the cache: {} -> {}",
            before.hits,
            after.hits
        );
    }

    #[tokio::test]
    async fn empty_input_is_bad_input_not_internal() {
        let (clipper, _) = setup(
            &[1],
            PolicyKind::Static { model_index: 0 },
            Duration::from_millis(50),
        );
        let err = clipper
            .predict("app", None, Arc::new(vec![]))
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::BadInput("empty feature vector".into()));
        assert_eq!(err.http_status(), 400);
        let err = clipper
            .feedback("app", None, Arc::new(vec![]), Feedback::class(1))
            .await
            .unwrap_err();
        assert!(matches!(err, PredictError::BadInput(_)));
    }

    #[tokio::test]
    async fn try_register_app_refuses_duplicates_and_unknown_models() {
        let (clipper, models) = setup(
            &[1],
            PolicyKind::Static { model_index: 0 },
            Duration::from_millis(50),
        );
        let dup = clipper.try_register_app(AppConfig::new("app", models.clone()));
        assert!(matches!(dup, Err(crate::api::ApiError::AppExists(_))));
        let ghost =
            clipper.try_register_app(AppConfig::new("other", vec![ModelId::new("missing", 1)]));
        assert!(matches!(ghost, Err(crate::api::ApiError::ModelUnknown(_))));
        clipper
            .try_register_app(AppConfig::new("other", models))
            .unwrap();
    }

    #[tokio::test]
    async fn update_app_applies_delta_live_and_persists() {
        let (clipper, models) = setup(
            &[3],
            PolicyKind::Static { model_index: 0 },
            Duration::from_millis(50),
        );
        let cfg = clipper
            .update_app(
                "app",
                crate::types::AppUpdate::new()
                    .with_slo(Duration::from_millis(75))
                    .with_policy(PolicyKind::MajorityVote),
            )
            .unwrap();
        assert_eq!(cfg.slo, Duration::from_millis(75));
        // The next predict runs under the amended config.
        let p = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(3));
        // Persisted record reflects the update.
        let bytes = clipper
            .store()
            .get(&crate::api::app_key("app"))
            .expect("app persisted");
        let rec: crate::api::AppRecord = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(rec.slo_ms, 75);
        assert_eq!(rec.candidate_models, models);
        // Unknown app → typed error.
        assert!(matches!(
            clipper.update_app("ghost", crate::types::AppUpdate::new()),
            Err(crate::api::ApiError::AppUnknown(_))
        ));
        // An empty candidate set would brick the app — refused, and the
        // app keeps serving with its previous set.
        assert!(matches!(
            clipper.update_app(
                "app",
                crate::types::AppUpdate::new().with_candidate_models(vec![])
            ),
            Err(crate::api::ApiError::BadRequest(_))
        ));
        let p = clipper
            .predict("app", None, Arc::new(vec![2.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(3));
    }

    #[tokio::test]
    async fn unregister_app_stops_routing_and_cleans_state() {
        let (clipper, _) = setup(
            &[1],
            PolicyKind::Static { model_index: 0 },
            Duration::from_millis(50),
        );
        clipper
            .feedback("app", Some("u1"), Arc::new(vec![1.0]), Feedback::class(1))
            .await
            .unwrap();
        clipper.unregister_app("app").unwrap();
        let err = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::AppUnknown);
        assert!(clipper.store().get(&crate::api::app_key("app")).is_none());
        assert!(clipper.store().keys_with_prefix("selstate/app/").is_empty());
        assert!(matches!(
            clipper.unregister_app("app"),
            Err(crate::api::ApiError::AppUnknown(_))
        ));
    }

    #[tokio::test]
    async fn rollout_repoints_apps_and_rollback_revives_the_old_version() {
        let clipper = Clipper::builder().build();
        let v1 = ModelId::new("m", 1);
        let v2 = ModelId::new("m", 2);
        clipper.add_model(v1.clone(), BatchConfig::default());
        clipper.add_replica(&v1, const_transport(1, None)).unwrap();
        clipper.add_model(v2.clone(), BatchConfig::default());
        clipper.add_replica(&v2, const_transport(2, None)).unwrap();
        assert_eq!(clipper.current_version("m"), Some(1));
        clipper.register_app(
            AppConfig::new("app", vec![v1.clone()])
                .with_policy(PolicyKind::Static { model_index: 0 })
                .with_slo(Duration::from_millis(50)),
        );
        let p = clipper
            .predict("app", None, Arc::new(vec![0.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(1));

        let outcome = clipper.rollout_model("m", 2).await.unwrap();
        assert_eq!(outcome.from_version, 1);
        assert_eq!(outcome.to_version, 2);
        assert_eq!(outcome.repointed_apps, vec!["app".to_string()]);
        assert_eq!(outcome.drained_replicas, 1);
        assert_eq!(clipper.current_version("m"), Some(2));
        assert_eq!(
            clipper.app_config("app").unwrap().candidate_models,
            vec![v2.clone()]
        );
        let p = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(2), "served by the new version");
        assert_eq!(clipper.abstraction().cache().pending_len(), 0);

        // Rollback restores v1 — including its replicas, revived from the
        // transports the rollout parked.
        let back = clipper.rollback_model("m").await.unwrap();
        assert_eq!(back.to_version, 1);
        assert_eq!(clipper.current_version("m"), Some(1));
        let p = clipper
            .predict("app", None, Arc::new(vec![2.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(1), "old version serves again");
        assert_eq!(clipper.abstraction().cache().pending_len(), 0);
    }

    #[tokio::test]
    async fn rollout_guards_bad_targets() {
        let clipper = Clipper::builder().build();
        let v1 = ModelId::new("m", 1);
        clipper.add_model(v1.clone(), BatchConfig::default());
        clipper.add_replica(&v1, const_transport(1, None)).unwrap();
        assert!(matches!(
            clipper.rollout_model("ghost", 2).await,
            Err(crate::api::ApiError::ModelUnknown(_))
        ));
        assert!(matches!(
            clipper.rollout_model("m", 1).await,
            Err(crate::api::ApiError::AlreadyCurrent { .. })
        ));
        assert!(matches!(
            clipper.rollout_model("m", 9).await,
            Err(crate::api::ApiError::VersionUnknown { .. })
        ));
        // A registered but replica-less version is refused.
        clipper.add_model(ModelId::new("m", 2), BatchConfig::default());
        assert!(matches!(
            clipper.rollout_model("m", 2).await,
            Err(crate::api::ApiError::NoReplicasForVersion { .. })
        ));
        // Nothing rolled out yet → nothing to roll back.
        assert!(matches!(
            clipper.rollback_model("m").await,
            Err(crate::api::ApiError::NoRolloutHistory(_))
        ));
    }

    #[tokio::test]
    async fn rollout_keeps_learned_policy_weights_by_model_name() {
        // Exp3 learns that "good" beats "bad"; rolling "good" to v2 must
        // keep the learned weight rather than resetting the bandit.
        let clipper = Clipper::builder().build();
        let good1 = ModelId::new("good", 1);
        let bad = ModelId::new("bad", 1);
        clipper.add_model(good1.clone(), BatchConfig::default());
        clipper
            .add_replica(&good1, const_transport(1, None))
            .unwrap();
        clipper.add_model(bad.clone(), BatchConfig::default());
        clipper.add_replica(&bad, const_transport(0, None)).unwrap();
        clipper.register_app(
            AppConfig::new("app", vec![good1.clone(), bad.clone()])
                .with_policy(PolicyKind::Exp3 { eta: 0.5 })
                .with_slo(Duration::from_millis(100)),
        );
        for i in 0..40 {
            clipper
                .feedback("app", None, Arc::new(vec![i as f32]), Feedback::class(1))
                .await
                .unwrap();
        }
        let before = clipper.policy_state("app", None).unwrap();
        let w_good = before.weights[before.index_of(&good1).unwrap()];

        let good2 = ModelId::new("good", 2);
        clipper.add_model(good2.clone(), BatchConfig::default());
        clipper
            .add_replica(&good2, const_transport(1, None))
            .unwrap();
        clipper.rollout_model("good", 2).await.unwrap();

        let after = clipper.policy_state("app", None).unwrap();
        let idx = after.index_of(&good2).expect("state remapped to v2");
        assert_eq!(
            after.weights[idx], w_good,
            "learned weight carries across the version bump"
        );
        assert_eq!(after.total, before.total);
    }

    #[tokio::test]
    async fn registry_rehydrates_from_the_statestore() {
        let store = Arc::new(clipper_statestore::StateStore::new());
        {
            let first = Clipper::builder().statestore(store.clone()).build();
            let v1 = ModelId::new("m", 1);
            let v2 = ModelId::new("m", 2);
            first.add_model(v1.clone(), BatchConfig::default());
            first.add_replica(&v1, const_transport(1, None)).unwrap();
            first.add_model(v2.clone(), BatchConfig::default());
            first.add_replica(&v2, const_transport(2, None)).unwrap();
            first.register_app(
                AppConfig::new("app", vec![v1])
                    .with_policy(PolicyKind::Static { model_index: 0 })
                    .with_slo(Duration::from_millis(42)),
            );
            first.rollout_model("m", 2).await.unwrap();
        }
        // A fresh frontend instance over the same store restores the
        // registry: versions, current pointer, history, app config.
        let second = Clipper::builder().statestore(store).build();
        let report = second.rehydrate();
        assert_eq!((report.models, report.apps), (1, 1));
        assert!(report.skipped.is_empty());
        assert_eq!(second.current_version("m"), Some(2));
        let view = second.model_view("m").unwrap();
        assert_eq!(view.versions, vec![1, 2]);
        assert_eq!(view.history, vec![1]);
        let cfg = second.app_config("app").unwrap();
        assert_eq!(cfg.candidate_models, vec![ModelId::new("m", 2)]);
        assert_eq!(cfg.slo, Duration::from_millis(42));
        // Replicas re-attach and serving resumes.
        second
            .add_replica(&ModelId::new("m", 2), const_transport(2, None))
            .unwrap();
        let p = second
            .predict("app", None, Arc::new(vec![5.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(2));
        // Rehydration is idempotent.
        let again = second.rehydrate();
        assert_eq!((again.models, again.apps), (0, 0));
    }

    #[tokio::test]
    async fn rehydrate_restores_persisted_batch_knobs() {
        // The PR-4 gap: rolled-out models used to rehydrate with default
        // batching, silently discarding their tuned knobs.
        let store = Arc::new(clipper_statestore::StateStore::new());
        let tuned = BatchConfig {
            strategy: crate::BatchStrategy::Fixed(7),
            slo: Duration::from_micros(900),
            batch_wait_timeout: Duration::from_millis(3),
            queue_capacity: 123,
            max_batch_cap: 64,
            pipeline_depth: 2,
            drain_deadline: Duration::from_secs(9),
            ..BatchConfig::default()
        };
        {
            let first = Clipper::builder().statestore(store.clone()).build();
            let v1 = ModelId::new("m", 1);
            let v2 = ModelId::new("m", 2);
            first.add_model(v1.clone(), BatchConfig::default());
            first.add_replica(&v1, const_transport(1, None)).unwrap();
            first.add_model(v2.clone(), tuned.clone());
            first.add_replica(&v2, const_transport(2, None)).unwrap();
            // Roll v2 current so v1 parks — parked versions must persist
            // their knobs too (from the parking lot, not the live MAL).
            first.rollout_model("m", 2).await.unwrap();
        }
        let second = Clipper::builder().statestore(store).build();
        let report = second.rehydrate();
        assert_eq!(report.models, 1);
        let restored = second
            .abstraction()
            .model_config(&ModelId::new("m", 2))
            .expect("v2 restored");
        assert_eq!(restored.strategy, tuned.strategy);
        assert_eq!(restored.slo, tuned.slo);
        assert_eq!(restored.batch_wait_timeout, tuned.batch_wait_timeout);
        assert_eq!(restored.queue_capacity, tuned.queue_capacity);
        assert_eq!(restored.max_batch_cap, tuned.max_batch_cap);
        assert_eq!(restored.pipeline_depth, tuned.pipeline_depth);
        assert_eq!(restored.drain_deadline, tuned.drain_deadline);
        // The parked old version's knobs survived as well (defaults).
        let v1_cfg = second
            .abstraction()
            .model_config(&ModelId::new("m", 1))
            .expect("v1 restored");
        assert_eq!(v1_cfg.queue_capacity, BatchConfig::default().queue_capacity);
    }

    #[tokio::test]
    async fn checkpoint_persists_learned_replica_tunes_for_rehydrate() {
        let store = Arc::new(clipper_statestore::StateStore::new());
        let cfg = BatchConfig {
            strategy: crate::BatchStrategy::Autotune { headroom: 0.1 },
            slo: Duration::from_millis(20),
            ..BatchConfig::default()
        };
        {
            let first = Clipper::builder().statestore(store.clone()).build();
            let id = ModelId::new("m", 1);
            first.add_model(id.clone(), cfg.clone());
            first.add_replica(&id, const_transport(1, None)).unwrap();
            // Teach the replica its curve: 100µs + 50µs·b.
            let model = first
                .abstraction()
                .replica_latency_model(&id, "m:v1:0")
                .unwrap();
            for round in 0..10 {
                for b in 1..=16usize {
                    let _ = round;
                    model.observe(b, Duration::from_micros(100 + 50 * b as u64));
                }
            }
            assert!(model.is_established());
            assert!(first.checkpoint_model("m"));
            assert!(!first.checkpoint_model("ghost"));
        }
        // A fresh frontend rehydrates and re-attaches the replica: it
        // must serve with the learned per-replica curve and ceiling, not
        // a cold controller probing from scratch.
        let second = Clipper::builder().statestore(store).build();
        second.rehydrate();
        let id = ModelId::new("m", 1);
        second.add_replica(&id, const_transport(1, None)).unwrap();
        let restored = second
            .abstraction()
            .replica_latency_model(&id, "m:v1:0")
            .unwrap();
        assert!(restored.is_established(), "warm start from persisted tune");
        assert!(
            (restored.beta_us() - 50.0).abs() < 20.0,
            "restored beta {} expected ≈50",
            restored.beta_us()
        );
        // The autotune controller inverts the restored curve at once:
        // b_max ≈ (0.9·20ms − α)/β ≈ 350, nowhere near a cold start.
        let tunes = second.abstraction().replica_tunes(&id);
        assert_eq!(tunes.len(), 1);
        assert_eq!(tunes[0].queue_id, "m:v1:0");
        assert!(
            tunes[0].b_max > 100,
            "ceiling should come from the learned curve, got {}",
            tunes[0].b_max
        );
    }

    /// Two frontends over one store: A owns the initial registration, B
    /// rehydrates from it and attaches its own replicas (the soak's
    /// fan-in construction).
    async fn two_frontends() -> (Clipper, Clipper, Arc<clipper_statestore::StateStore>) {
        let store = Arc::new(clipper_statestore::StateStore::new());
        let a = Clipper::builder().statestore(store.clone()).build();
        let v1 = ModelId::new("m", 1);
        let v2 = ModelId::new("m", 2);
        a.add_model(v1.clone(), BatchConfig::default());
        a.add_replica(&v1, const_transport(1, None)).unwrap();
        a.add_model(v2.clone(), BatchConfig::default());
        a.add_replica(&v2, const_transport(2, None)).unwrap();
        a.register_app(
            AppConfig::new("app", vec![v1.clone()])
                .with_policy(PolicyKind::Static { model_index: 0 })
                .with_slo(Duration::from_millis(50)),
        );
        let b = Clipper::builder().statestore(store.clone()).build();
        b.rehydrate();
        b.add_replica(&v1, const_transport(1, None)).unwrap();
        b.add_replica(&v2, const_transport(2, None)).unwrap();
        (a, b, store)
    }

    #[tokio::test]
    async fn sync_config_adopts_a_remote_rollout_and_drains_locally() {
        let (a, b, _store) = two_frontends().await;
        a.rollout_model("m", 2).await.unwrap();
        // B is stale: still serving v1.
        assert_eq!(b.current_version("m"), Some(1));
        let p = b.predict("app", None, Arc::new(vec![1.0])).await.unwrap();
        assert_eq!(p.output, Output::Class(1));

        let report = b.sync_config().await;
        assert_eq!(report.repointed, 1);
        assert!(report.pending.is_empty(), "{:?}", report.pending);
        assert_eq!(b.current_version("m"), Some(2));
        assert_eq!(
            b.app_config("app").unwrap().candidate_models,
            vec![ModelId::new("m", 2)]
        );
        // B's local v1 replicas drained and parked, exactly as if B had
        // initiated the rollout itself.
        assert!(!b.abstraction().has_model(&ModelId::new("m", 1)));
        let p = b.predict("app", None, Arc::new(vec![2.0])).await.unwrap();
        assert_eq!(p.output, Output::Class(2));
        assert_eq!(b.abstraction().cache().pending_len(), 0);

        // Converged: the next pass is a no-op.
        assert!(b.sync_config().await.is_noop());

        // A remote rollback converges the same way (B revives its parked
        // v1 replicas).
        a.rollback_model("m").await.unwrap();
        let report = b.sync_config().await;
        assert_eq!(report.repointed, 1);
        assert_eq!(b.current_version("m"), Some(1));
        let p = b.predict("app", None, Arc::new(vec![3.0])).await.unwrap();
        assert_eq!(p.output, Output::Class(1));
    }

    #[tokio::test]
    async fn sync_config_defers_pointer_moves_without_local_replicas() {
        let store = Arc::new(clipper_statestore::StateStore::new());
        let a = Clipper::builder().statestore(store.clone()).build();
        let v1 = ModelId::new("m", 1);
        let v2 = ModelId::new("m", 2);
        a.add_model(v1.clone(), BatchConfig::default());
        a.add_replica(&v1, const_transport(1, None)).unwrap();
        let b = Clipper::builder().statestore(store.clone()).build();
        b.rehydrate();
        b.add_replica(&v1, const_transport(1, None)).unwrap();
        // A registers v2 and rolls it out; B never attached v2 replicas.
        a.add_model(v2.clone(), BatchConfig::default());
        a.add_replica(&v2, const_transport(2, None)).unwrap();
        a.rollout_model("m", 2).await.unwrap();

        let report = b.sync_config().await;
        assert_eq!(report.adopted_versions, 1, "v2 adopted into the directory");
        assert_eq!(report.repointed, 0);
        assert_eq!(report.pending, vec!["m:v2".to_string()]);
        assert_eq!(b.current_version("m"), Some(1), "move deferred");

        // Replicas attach; the next pass applies the deferred move.
        b.add_replica(&v2, const_transport(2, None)).unwrap();
        let report = b.sync_config().await;
        assert_eq!(report.repointed, 1);
        assert!(report.pending.is_empty());
        assert_eq!(b.current_version("m"), Some(2));
    }

    #[tokio::test]
    async fn sync_config_adopts_updates_and_removes_apps() {
        let (a, b, store) = two_frontends().await;
        // A registers a new app, updates the shared one, then B syncs.
        a.register_app(
            AppConfig::new("fresh", vec![ModelId::new("m", 1)])
                .with_policy(PolicyKind::Static { model_index: 0 })
                .with_slo(Duration::from_millis(30)),
        );
        a.update_app(
            "app",
            crate::types::AppUpdate::new().with_slo(Duration::from_millis(99)),
        )
        .unwrap();
        let report = b.sync_config().await;
        assert_eq!(report.adopted_apps, 1);
        assert_eq!(report.updated_apps, 1);
        assert_eq!(
            b.app_config("fresh").unwrap().slo,
            Duration::from_millis(30)
        );
        assert_eq!(b.app_config("app").unwrap().slo, Duration::from_millis(99));

        // A deletes it; B's next pass drops it locally. A corrupt record
        // is skipped, never treated as a deletion.
        a.unregister_app("fresh").unwrap();
        store.set(&crate::api::app_key("app"), b"not json".to_vec());
        let report = b.sync_config().await;
        assert_eq!(report.removed_apps, 1);
        assert_eq!(report.skipped, vec![crate::api::app_key("app")]);
        assert!(b.app_config("fresh").is_none());
        assert!(b.app_config("app").is_some(), "corrupt ≠ deleted");
    }

    #[tokio::test]
    async fn suspect_queue_ids_is_empty_for_healthy_replicas() {
        let (clipper, models) = setup(
            &[1],
            PolicyKind::Static { model_index: 0 },
            Duration::from_millis(50),
        );
        clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        assert!(clipper
            .abstraction()
            .suspect_queue_ids(&models[0])
            .is_empty());
        assert!(clipper.drain_suspect_replicas(&models[0]).await.is_empty());
    }

    #[tokio::test]
    async fn rehydrate_skips_corrupt_records_and_restores_the_rest() {
        let store = Arc::new(clipper_statestore::StateStore::new());
        {
            let first = Clipper::builder().statestore(store.clone()).build();
            let v1 = ModelId::new("good", 1);
            first.add_model(v1.clone(), BatchConfig::default());
            first.register_app(AppConfig::new("app", vec![v1]));
        }
        store.set(&crate::api::model_key("bad"), b"not json".to_vec());
        let second = Clipper::builder().statestore(store).build();
        let report = second.rehydrate();
        assert_eq!((report.models, report.apps), (1, 1));
        assert_eq!(report.skipped, vec![crate::api::model_key("bad")]);
        assert!(second.app_config("app").is_some());
    }

    #[tokio::test]
    async fn rollout_leaves_ab_pinned_apps_and_their_old_version_alone() {
        // An app deliberately comparing v1 vs v2 must keep both pins, and
        // the old version must stay live while it is still referenced.
        let clipper = Clipper::builder().build();
        let v1 = ModelId::new("m", 1);
        let v2 = ModelId::new("m", 2);
        clipper.add_model(v1.clone(), BatchConfig::default());
        clipper.add_replica(&v1, const_transport(1, None)).unwrap();
        clipper.add_model(v2.clone(), BatchConfig::default());
        clipper.add_replica(&v2, const_transport(2, None)).unwrap();
        clipper.register_app(
            AppConfig::new("ab", vec![v1.clone(), v2.clone()])
                .with_policy(PolicyKind::MajorityVote)
                .with_slo(Duration::from_millis(50)),
        );
        clipper.register_app(
            AppConfig::new("plain", vec![v1.clone()])
                .with_policy(PolicyKind::Static { model_index: 0 })
                .with_slo(Duration::from_millis(50)),
        );
        let outcome = clipper.rollout_model("m", 2).await.unwrap();
        assert_eq!(outcome.repointed_apps, vec!["plain".to_string()]);
        assert_eq!(
            outcome.drained_replicas, 0,
            "v1 is still pinned by the A/B app and must not drain"
        );
        // The A/B app keeps its explicit pins and both versions serve.
        assert_eq!(
            clipper.app_config("ab").unwrap().candidate_models,
            vec![v1.clone(), v2.clone()]
        );
        assert!(clipper.abstraction().has_model(&v1));
        let p = clipper
            .predict("ab", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        assert_eq!(p.models_used, 2, "both pinned versions answered");
        // The repointed app serves from v2.
        let p = clipper
            .predict("plain", None, Arc::new(vec![2.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(2));
    }

    #[tokio::test]
    async fn batching_strategy_flows_to_queues() {
        let clipper = Clipper::builder().build();
        let m = ModelId::new("m", 1);
        clipper.add_model(
            m.clone(),
            BatchConfig {
                strategy: BatchStrategy::NoBatching,
                ..Default::default()
            },
        );
        clipper.add_replica(&m, const_transport(1, None)).unwrap();
        clipper.register_app(AppConfig::new("app", vec![m]).with_slo(Duration::from_millis(50)));
        for i in 0..10 {
            clipper
                .predict("app", None, Arc::new(vec![i as f32]))
                .await
                .unwrap();
        }
        // NoBatching → every dispatched batch has size 1.
        let snap = clipper.registry().snapshot();
        let key = snap
            .values
            .keys()
            .find(|k| k.contains("batch_size"))
            .cloned()
            .expect("batch size histogram registered");
        if let clipper_metrics::MetricValue::Histogram { max, .. } = snap.values[&key] {
            assert_eq!(max, 1);
        } else {
            panic!("expected histogram");
        }
    }
}
