//! The AIMD batch-size controller (§4.3.1).
//!
//! Additively increase the maximum batch size while batches complete
//! inside the latency objective; on a violation, back off
//! multiplicatively — but only by 10%, far gentler than TCP's halving,
//! because "the optimal batch size does not fluctuate substantially".

use super::BatchController;
use std::time::Duration;

/// Additive-increase / multiplicative-decrease controller.
#[derive(Clone, Debug)]
pub struct AimdController {
    slo: Duration,
    step: f64,
    backoff: f64,
    cap: usize,
    current: f64,
}

impl AimdController {
    /// Create a controller targeting `slo`. `step` is the additive
    /// increment, `backoff` the multiplicative factor on violation
    /// (paper default 0.9), `cap` a hard upper bound.
    pub fn new(slo: Duration, step: f64, backoff: f64, cap: usize) -> Self {
        assert!(step > 0.0, "step must be positive");
        assert!(
            (0.0..1.0).contains(&backoff),
            "backoff must be in (0, 1), got {backoff}"
        );
        AimdController {
            slo,
            step,
            backoff,
            cap: cap.max(1),
            current: 1.0,
        }
    }

    /// The paper's default parameters (+2 / ×0.9).
    pub fn with_defaults(slo: Duration) -> Self {
        Self::new(slo, 2.0, 0.9, 4096)
    }
}

impl BatchController for AimdController {
    fn max_batch(&self) -> usize {
        (self.current.floor() as usize).clamp(1, self.cap)
    }

    fn record(&mut self, batch_size: usize, latency: Duration) {
        if latency > self.slo {
            // Violation: multiplicative decrease.
            self.current = (self.current * self.backoff).max(1.0);
        } else if batch_size >= self.max_batch() {
            // The batch actually probed the current limit and met the SLO:
            // additive increase. (Under-full batches teach us nothing about
            // the limit.)
            self.current = (self.current + self.step).min(self.cap as f64);
        }
    }

    fn name(&self) -> &'static str {
        "aimd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn grows_additively_while_meeting_slo() {
        let mut c = AimdController::new(ms(20), 2.0, 0.9, 4096);
        assert_eq!(c.max_batch(), 1);
        c.record(1, ms(1));
        assert_eq!(c.max_batch(), 3);
        c.record(3, ms(2));
        assert_eq!(c.max_batch(), 5);
    }

    #[test]
    fn backs_off_multiplicatively_on_violation() {
        let mut c = AimdController::new(ms(20), 2.0, 0.9, 4096);
        for _ in 0..50 {
            let b = c.max_batch();
            c.record(b, ms(1));
        }
        let before = c.max_batch();
        c.record(before, ms(25)); // violation
        let after = c.max_batch();
        assert!(
            (after as f64) <= (before as f64) * 0.9 + 1.0,
            "expected ~10% backoff: {before} -> {after}"
        );
        assert!(after >= 1);
    }

    #[test]
    fn underfull_batches_do_not_grow_the_limit() {
        let mut c = AimdController::new(ms(20), 2.0, 0.9, 4096);
        c.record(1, ms(1)); // probes limit (1) -> grows to 3
        let grown = c.max_batch();
        c.record(1, ms(1)); // under-full now -> no growth
        assert_eq!(c.max_batch(), grown);
    }

    #[test]
    fn converges_near_the_latency_knee() {
        // Simulated container: latency = 1ms + 20µs/item. SLO 20ms.
        // Optimal batch = (20ms - 1ms) / 20µs = 950.
        let slo = ms(20);
        let mut c = AimdController::new(slo, 2.0, 0.9, 4096);
        let latency_of = |b: usize| Duration::from_micros(1_000 + 20 * b as u64);
        for _ in 0..2_000 {
            let b = c.max_batch();
            c.record(b, latency_of(b));
        }
        let b = c.max_batch();
        assert!(
            (800..=1000).contains(&b),
            "converged batch {b}, expected ≈950"
        );
        // And it oscillates within a stable band thereafter.
        let mut min_b = usize::MAX;
        let mut max_b = 0;
        for _ in 0..500 {
            let b = c.max_batch();
            c.record(b, latency_of(b));
            min_b = min_b.min(b);
            max_b = max_b.max(b);
        }
        assert!(
            max_b - min_b < 200,
            "post-convergence band too wide: {min_b}..{max_b}"
        );
    }

    #[test]
    fn never_exceeds_cap_or_drops_below_one() {
        let mut c = AimdController::new(ms(20), 100.0, 0.5, 64);
        for _ in 0..100 {
            let b = c.max_batch();
            c.record(b, ms(1));
        }
        assert_eq!(c.max_batch(), 64);
        for _ in 0..100 {
            let b = c.max_batch();
            c.record(b, ms(100));
        }
        assert_eq!(c.max_batch(), 1);
    }

    #[test]
    #[should_panic(expected = "backoff must be in")]
    fn invalid_backoff_panics() {
        AimdController::new(ms(20), 1.0, 1.5, 10);
    }

    #[test]
    fn recovers_after_transient_slowdown() {
        // A garbage-collection-pause-style event: latency spikes for a few
        // batches, then recovers; the controller should climb back.
        let slo = ms(20);
        let mut c = AimdController::new(slo, 2.0, 0.9, 4096);
        let fast = |b: usize| Duration::from_micros(1_000 + 15 * b as u64);
        for _ in 0..1_500 {
            let b = c.max_batch();
            c.record(b, fast(b));
        }
        let steady = c.max_batch();
        for _ in 0..10 {
            let b = c.max_batch();
            c.record(b, ms(40)); // pause
        }
        let dipped = c.max_batch();
        assert!(dipped < steady);
        for _ in 0..1_500 {
            let b = c.max_batch();
            c.record(b, fast(b));
        }
        let recovered = c.max_batch();
        assert!(
            recovered as f64 >= steady as f64 * 0.9,
            "recovered {recovered} vs steady {steady}"
        );
    }
}
