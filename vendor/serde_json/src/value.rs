//! The dynamic [`Value`] type.

use serde::{Content, DeError};
use std::collections::BTreeMap;

/// A dynamically typed JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, sorted by key.
    Object(BTreeMap<String, Value>),
}

/// A JSON number: unsigned, signed, or floating-point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// Value as `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// Value as `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.as_f64() == other.as_f64()
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64().map(|v| v == *other as i64).unwrap_or(false)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_eq_int!(u8, u16, u32, i8, i16, i32, i64);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64().map(|v| v == *other).unwrap_or(false)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64().map(|v| v == *other).unwrap_or(false)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str().map(|v| v == *other).unwrap_or(false)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str().map(|v| v == other).unwrap_or(false)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool().map(|v| v == *other).unwrap_or(false)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match crate::to_string(self) {
            Ok(s) => write!(f, "{s}"),
            Err(_) => write!(f, "<unserializable>"),
        }
    }
}

impl serde::Serialize for Value {
    fn serialize_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::U64(v)) => Content::U64(*v),
            Value::Number(Number::I64(v)) => Content::I64(*v),
            Value::Number(Number::F64(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(
                items
                    .iter()
                    .map(serde::Serialize::serialize_content)
                    .collect(),
            ),
            Value::Object(map) => Content::Map(
                map.iter()
                    .map(|(k, v)| (k.clone(), v.serialize_content()))
                    .collect(),
            ),
        }
    }
}

impl serde::Deserialize for Value {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        Ok(match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::U64(v) => Value::Number(Number::U64(*v)),
            Content::I64(v) => Value::Number(Number::I64(*v)),
            Content::F64(v) => Value::Number(Number::F64(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(
                items
                    .iter()
                    .map(Value::deserialize_content)
                    .collect::<Result<_, _>>()?,
            ),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| Ok((k.clone(), Value::deserialize_content(v)?)))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }
}
