//! Quickstart: deploy two models behind Clipper and serve predictions
//! under a 20 ms latency objective.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clipper::containers::{
    ContainerConfig, ContainerLogic, LatencyProfile, LocalContainerTransport, ModelContainer,
    TimingModel,
};
use clipper::core::{AppConfig, Clipper, Feedback, ModelId, PolicyKind};
use clipper::ml::datasets::DatasetSpec;
use clipper::ml::models::{
    LinearSvm, LinearSvmConfig, LogisticRegression, LogisticRegressionConfig,
};
use std::sync::Arc;
use std::time::Duration;

#[tokio::main]
async fn main() {
    println!("== Clipper quickstart ==\n");

    // 1. Train two models on an MNIST-shaped dataset (the "framework"
    //    step that normally happens in Scikit-Learn or Spark).
    let dataset = DatasetSpec::mnist_like()
        .with_train_size(600)
        .with_test_size(200)
        .generate(42);
    println!(
        "dataset: {} ({} features, {} classes)",
        dataset.spec.name,
        dataset.num_features(),
        dataset.num_classes()
    );
    let svm = Arc::new(LinearSvm::train(&dataset, &LinearSvmConfig::default(), 1));
    let logreg = Arc::new(LogisticRegression::train(
        &dataset,
        &LogisticRegressionConfig::default(),
        2,
    ));

    // 2. Stand up Clipper and deploy each model in its own container.
    let clipper = Clipper::builder().build();
    let svm_id = ModelId::new("linear-svm", 1);
    let logreg_id = ModelId::new("logreg", 1);

    for (id, logic) in [
        (svm_id.clone(), ContainerLogic::Classifier(svm as _)),
        (logreg_id.clone(), ContainerLogic::Classifier(logreg as _)),
    ] {
        clipper.add_model(id.clone(), Default::default());
        let container = ModelContainer::new(ContainerConfig {
            name: format!("{}:0", id.name),
            model_name: id.name.clone(),
            model_version: 1,
            logic,
            // Pad to the paper's SKLearn linear-model latency profile.
            timing: TimingModel::Profile(
                LatencyProfile::deterministic(
                    Duration::from_micros(500),
                    Duration::from_micros(15),
                )
                .with_jitter(0.05),
            ),
            seed: 7,
        });
        clipper
            .add_replica(&id, LocalContainerTransport::new(container))
            .expect("replica attaches");
    }

    // 3. Register an application: Exp4 ensemble over both models, 20ms SLO.
    clipper.register_app(
        AppConfig::new("digits", vec![svm_id, logreg_id])
            .with_policy(PolicyKind::Exp4 { eta: 0.2 })
            .with_slo(Duration::from_millis(20)),
    );

    // 4. Serve predictions and send feedback.
    let mut correct = 0;
    for example in dataset.test.iter().take(100) {
        let input = Arc::new(example.x.clone());
        let prediction = clipper
            .predict("digits", None, input.clone())
            .await
            .expect("prediction");
        if prediction.output.label() == example.y {
            correct += 1;
        }
        clipper
            .feedback("digits", None, input, Feedback::class(example.y))
            .await
            .expect("feedback");
    }

    println!("served 100 queries: {correct}% correct (ensemble of 2)\n");

    // 5. What the telemetry saw.
    let snapshot = clipper.registry().snapshot();
    for (name, value) in snapshot.values.iter() {
        if name.starts_with("clipper/") || name.ends_with("batch_size") {
            println!("{name}: {value:?}");
        }
    }
    let stats = clipper.abstraction().cache().stats();
    println!(
        "\nprediction cache: {} hits / {} misses / {} pending joins",
        stats.hits, stats.misses, stats.pending_joins
    );
    println!("(feedback joins hit the cache — that is §4.2's 1.6x speedup)");
}
