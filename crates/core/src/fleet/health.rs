//! Heartbeat-driven health: the `Healthy → Suspect → Expired` monitor.
//!
//! The monitor ticks at half the heartbeat interval and reads each
//! member's silence (time since its last beat — an RPC member's
//! connection-level liveness probe counts). Crossing
//! `suspect_after × interval` flips the member to `Suspect` and raises
//! the queue's suspect hint, so the p2c scheduler deprioritizes it
//! *before* its batches start failing; crossing
//! `expire_after × interval` expires it: the learned latency curve is
//! harvested, the queue is gracefully drained (zero-drop — every
//! accepted query completes or fail-fills), and the member becomes a
//! tombstone whose persisted record warm-starts the container when it
//! re-registers.
//!
//! Expiry and [`Clipper::drain_suspect_replicas`] can race on the same
//! queue id (a dead replica is usually *both* silent and failing).
//! `ModelAbstractionLayer::remove_replica` removes under the replica
//! write lock — exactly one caller wins it — so both paths are
//! idempotent: the loser observes `NoReplicas`, skips the drain await,
//! and leaves the drain counter truthful.
//!
//! [`Clipper::drain_suspect_replicas`]: crate::Clipper::drain_suspect_replicas

use super::registry::{Fleet, FleetEvent, ReplicaHealth};
use crate::api::{ReplicaRecord, REPLICA_STATE_EXPIRED};
use crate::types::ModelId;
use std::time::Duration;

impl Fleet {
    /// Spawn the health monitor task (tick = heartbeat interval / 2).
    /// The task runs until the runtime drops; spawn once per fleet.
    pub fn spawn_monitor(&self) -> tokio::task::JoinHandle<()> {
        let fleet = self.clone();
        let tick = (self.inner.cfg.heartbeat_interval / 2).max(Duration::from_millis(5));
        tokio::spawn(async move {
            loop {
                tokio::time::sleep(tick).await;
                fleet.check_members().await;
            }
        })
    }

    /// One monitor pass. Public so tests and benches can drive the state
    /// machine deterministically instead of racing the spawned task.
    pub async fn check_members(&self) {
        let interval = self.inner.cfg.heartbeat_interval;
        let suspect_after = interval * self.inner.cfg.suspect_after.max(1);
        let expire_after = interval * self.inner.cfg.expire_after.max(1);
        let mut newly_suspect: Vec<(String, ModelId, Option<String>, u64)> = Vec::new();
        let mut to_expire: Vec<String> = Vec::new();
        {
            let mut members = self.inner.members.lock();
            for (name, m) in members.iter_mut() {
                if m.health == ReplicaHealth::Expired {
                    continue;
                }
                // An RPC member's connection-level probe is its beat.
                if let Some(t) = &m.transport {
                    if t.is_healthy() {
                        m.last_beat = std::time::Instant::now();
                        continue;
                    }
                }
                let silent = m.last_beat.elapsed();
                if silent >= expire_after {
                    to_expire.push(name.clone());
                } else if silent >= suspect_after && m.health == ReplicaHealth::Healthy {
                    m.health = ReplicaHealth::Suspect;
                    newly_suspect.push((
                        name.clone(),
                        m.model.clone(),
                        m.queue_id.clone(),
                        silent.as_millis() as u64,
                    ));
                }
            }
        }
        // Scheduler hints and events outside the membership lock.
        for (name, model, qid, silent_ms) in newly_suspect {
            if let Some(qid) = qid {
                self.inner.mal.set_replica_suspect_hint(&model, &qid, true);
            }
            self.push_event(FleetEvent::Suspected {
                container: name,
                silent_ms,
            });
        }
        for name in to_expire {
            self.expire(&name).await;
        }
    }

    /// Expire one member: harvest its tune, gracefully drain its queue
    /// (zero-drop), persist the tombstone record, and record the
    /// detection latency. Idempotent — a member already expired (or a
    /// queue already won by another drain path) is a no-op for the parts
    /// already done. Returns whether this call performed the transition.
    pub async fn expire(&self, name: &str) -> bool {
        // Phase 1, under the lock: claim the Expired transition and
        // steal the queue id so no second expiry can race past here.
        let (model, queue_id, silent_ms, record_seed) = {
            let mut members = self.inner.members.lock();
            let Some(m) = members.get_mut(name) else {
                return false;
            };
            if m.health == ReplicaHealth::Expired {
                return false;
            }
            m.health = ReplicaHealth::Expired;
            (
                m.model.clone(),
                m.queue_id.take(),
                m.last_beat.elapsed().as_millis() as u64,
                (m.capabilities.clone(),),
            )
        };
        // Phase 2, outside the lock: harvest (needs the queue alive),
        // then drain. `remove_replica` is exclusive — if the suspect
        // sweep already removed this queue id we lose cleanly.
        let mut tune = None;
        let mut drained = false;
        if let Some(qid) = &queue_id {
            tune = self.harvest_tune(&model, qid);
            if let Ok(queue) = self.inner.mal.remove_replica(&model, qid) {
                queue.drained().await;
                drained = true;
                self.inner.drains.inc();
            }
        }
        // Tombstone: a late heartbeat gets 410; a re-registration gets
        // the harvested tune back as its warm start. Keep a previously
        // persisted tune if this life never established one.
        let prior_tune = self.load_record(name).and_then(|r| r.tune);
        self.persist_record(&ReplicaRecord {
            container_name: name.to_string(),
            model_name: model.name.clone(),
            model_version: model.version,
            capabilities: record_seed.0,
            state: REPLICA_STATE_EXPIRED.to_string(),
            tune: tune.or(prior_tune),
        });
        self.inner.expiries.inc();
        self.push_event(FleetEvent::Expired {
            container: name.to_string(),
            silent_ms,
            drained,
        });
        true
    }
}
