//! Figure 6 — scaling the model abstraction layer across a GPU cluster.
//!
//! One conv-net model replicated 1→4 times. Replica 0 runs "locally"
//! (no network); replicas 1–3 sit behind a shared simulated link — 10 Gbps
//! or 1 Gbps. Inputs are 2048-float (8 KB) feature tensors, so at ~19.5K
//! qps per replica the remote traffic exceeds 1 Gbps and the wire, not the
//! GPUs, becomes the bottleneck — the paper's headline observation.

use clipper_bench::{distinct_input, phase_duration};
use clipper_containers::{
    ContainerConfig, ContainerLogic, GpuDevice, GpuModelSpec, LocalContainerTransport,
    ModelContainer, TimingModel,
};
use clipper_core::{AppConfig, BatchConfig, BatchStrategy, Clipper, ModelId, PolicyKind};
use clipper_rpc::message::WireOutput;
use clipper_workload::report::fmt_qps;
use clipper_workload::{run_closed_loop, SimLink, Table};
use std::time::Duration;

const INPUT_DIM: usize = 2_048; // 8 KB per query on the wire

fn cluster_model() -> GpuModelSpec {
    // ≈19.5K qps peak per replica (the paper's single-container number).
    GpuModelSpec {
        name: "cluster-conv".into(),
        layers: "conv net".into(),
        wave_size: 512,
        wave_time: Duration::from_micros(26_000),
        dispatch: Duration::from_micros(250),
    }
}

#[tokio::main(flavor = "multi_thread", worker_threads = 8)]
async fn main() {
    println!("== Figure 6: Scaling Across a GPU Cluster ==\n");
    let mut table = Table::new(&[
        "network",
        "replicas",
        "agg throughput (qps)",
        "mean/replica (qps)",
        "mean lat (ms)",
        "p99 lat (ms)",
    ]);

    for (net_name, gbps) in [("10Gbps", 10.0), ("1Gbps", 1.0)] {
        for replicas in 1..=4usize {
            let link = SimLink::gbps(gbps, Duration::from_micros(200));
            let clipper = Clipper::builder()
                // Distinct inputs anyway; skip cache overhead.
                .disable_cache()
                .build();
            let id = ModelId::new("conv", 1);
            clipper.add_model(
                id.clone(),
                BatchConfig {
                    strategy: BatchStrategy::Fixed(512),
                    batch_wait_timeout: Duration::from_millis(2),
                    pipeline_depth: 2,
                    slo: Duration::from_millis(100),
                    ..Default::default()
                },
            );
            for r in 0..replicas {
                let device = GpuDevice::new(cluster_model());
                let container = ModelContainer::new(ContainerConfig {
                    name: format!("conv:{r}"),
                    model_name: "conv".into(),
                    model_version: 1,
                    logic: ContainerLogic::Fixed(WireOutput::Class(0)),
                    timing: TimingModel::Gpu(device),
                    seed: r as u64,
                });
                let local = LocalContainerTransport::new(container);
                // Replica 0 is on the Clipper machine; the rest cross the
                // cluster network.
                let transport = if r == 0 { local as _ } else { link.wrap(local) };
                clipper.add_replica(&id, transport).expect("replica");
            }
            clipper.register_app(
                AppConfig::new("bench", vec![id.clone()])
                    .with_policy(PolicyKind::Static { model_index: 0 })
                    .with_slo(Duration::from_millis(500)),
            );

            let clients = 1_600 * replicas;
            // Warmup then measure.
            let c = clipper.clone();
            run_closed_loop(clients, phase_duration() / 2, move |client, seq| {
                let clipper = c.clone();
                async move {
                    clipper
                        .predict("bench", None, distinct_input(client, seq, INPUT_DIM))
                        .await
                        .map(|p| p.models_used > 0)
                        .unwrap_or(false)
                }
            })
            .await;
            let c = clipper.clone();
            let report = run_closed_loop(clients, phase_duration(), move |client, seq| {
                let clipper = c.clone();
                async move {
                    clipper
                        .predict(
                            "bench",
                            None,
                            distinct_input(client, 1 << 20 | seq, INPUT_DIM),
                        )
                        .await
                        .map(|p| p.models_used > 0)
                        .unwrap_or(false)
                }
            })
            .await;

            table.row(&[
                net_name.to_string(),
                format!("{replicas}"),
                fmt_qps(report.throughput()),
                fmt_qps(report.throughput() / replicas as f64),
                format!("{:.1}", report.mean_ms()),
                format!("{:.1}", report.p99_ms()),
            ]);
        }
    }
    table.print();
    println!("\npaper reference: 10Gbps scales ~3.95x (19.5K → 77K qps); 1Gbps saturates the wire after the first remote replica");
}
