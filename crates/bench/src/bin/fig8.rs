//! Figure 8 — Exp3 and Exp4 under model failure.
//!
//! Five CIFAR-like models of staggered accuracy serve 20K sequential
//! queries with immediate feedback. After 5K queries the best model's
//! predictions are severely degraded; after 10K it recovers. Prints the
//! cumulative average error of each base model and of the Exp3/Exp4
//! selection policies every 1K queries.

use clipper_core::selection::{PolicyState, SelectionPolicy};
use clipper_core::{Exp3Policy, Exp4Policy, Feedback, ModelId, Output};
use clipper_ml::datasets::DatasetSpec;
use clipper_ml::models::{LinearSvm, LinearSvmConfig, Model};
use clipper_workload::Table;
use std::collections::HashMap;
use std::sync::Arc;

const TOTAL: usize = 20_000;
const DEGRADE_AT: usize = 5_000;
const RECOVER_AT: usize = 10_000;

fn main() {
    println!("== Figure 8: Behavior of Exp3 and Exp4 Under Model Failure ==\n");

    let ds = DatasetSpec::mnist_like()
        .with_train_size(1_600)
        .with_test_size(2_000)
        .with_difficulty(0.3)
        .generate(31);

    // Five models of staggered accuracy (errors ≈ 0.65/0.45/0.25/0.12/0.04
    // per the calibration probe): model 5 (index 4) is the best.
    let train_sizes = [30usize, 60, 120, 300, 1_600];
    let models: Vec<LinearSvm> = train_sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut sub = ds.clone();
            sub.train.truncate(n);
            LinearSvm::train(&sub, &LinearSvmConfig::default(), i as u64)
        })
        .collect();
    let ids: Vec<ModelId> = (0..5)
        .map(|i| ModelId::new(&format!("model-{}", i + 1), 1))
        .collect();

    let exp3 = Exp3Policy::new(0.5);
    let exp4 = Exp4Policy::new(0.3);
    let mut s3 = exp3.init(&ids, 7);
    let mut s4 = exp4.init(&ids, 7);

    // Cumulative error counters.
    let mut model_wrong = [0usize; 5];
    let mut exp3_wrong = 0usize;
    let mut exp4_wrong = 0usize;

    let mut table = Table::new(&[
        "queries", "model1", "model2", "model3", "model4", "model5", "Exp3", "Exp4",
    ]);

    for q in 0..TOTAL {
        let ex = &ds.test[q % ds.test.len()];
        let degraded = (DEGRADE_AT..RECOVER_AT).contains(&q);
        let input: clipper_core::Input = Arc::new(ex.x.clone());

        // Base model predictions (model 5 degraded in the middle phase:
        // its argmax is rotated off the true answer).
        let mut preds: HashMap<ModelId, Output> = HashMap::new();
        for (i, m) in models.iter().enumerate() {
            let mut label = m.predict(&ex.x);
            if i == 4 && degraded {
                label = (label + 1) % ds.num_classes() as u32;
            }
            if label != ex.y {
                model_wrong[i] += 1;
            }
            preds.insert(ids[i].clone(), Output::Class(label));
        }

        // Policies predict, then observe immediate feedback.
        let (out3, _) = exp3.combine(&s3, &input, &preds);
        if out3.label() != ex.y {
            exp3_wrong += 1;
        }
        let (out4, _) = exp4.combine(&s4, &input, &preds);
        if out4.label() != ex.y {
            exp4_wrong += 1;
        }
        let fb = Feedback::class(ex.y);
        exp3.observe(&mut s3, &input, &fb, &preds);
        exp4.observe(&mut s4, &input, &fb, &preds);

        if (q + 1) % 1_000 == 0 {
            let n = (q + 1) as f64;
            let mut row: Vec<String> = vec![format!("{}", q + 1)];
            for w in model_wrong {
                row.push(format!("{:.3}", w as f64 / n));
            }
            row.push(format!("{:.3}", exp3_wrong as f64 / n));
            row.push(format!("{:.3}", exp4_wrong as f64 / n));
            table.row(&row);
        }
    }
    table.print();

    print_epoch_summary(&s4, &ids);
    println!("\npaper reference: policies track the best model, spike when it degrades at 5K, divert, and re-adopt it after 10K;");
    println!("final policy error sits below every static model choice");
}

fn print_epoch_summary(s4: &PolicyState, ids: &[ModelId]) {
    println!("\nfinal Exp4 weights:");
    for (m, p) in ids.iter().zip(s4.probabilities()) {
        println!("  {:<9} {:.3}", m.name, p);
    }
}
