//! Timers: `sleep`, `sleep_until`, `timeout`, `timeout_at`, [`Instant`].
//!
//! A min-heap of `(deadline, waker)` entries, driven by whichever parking
//! path the runtime has:
//!
//! - with the epoll reactor ([`crate::reactor`], Linux), the reactor's
//!   driver thread fires due wakers between `epoll_pwait2` parks, using
//!   the heap's next deadline as the park timeout — registering an
//!   earlier deadline interrupts the park through the reactor's eventfd;
//! - otherwise a dedicated timer thread parks on a `Condvar` with
//!   `wait_timeout` (the portable fallback, and the pre-reactor
//!   behavior).
//!
//! The same registration API ([`register_waker`]) used to back the
//! emulated I/O readiness in [`crate::net`]; with the reactor active the
//! net layer no longer touches the timer at all.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Waker};
use std::time::Duration;
use std::time::Instant as StdInstant;

/// A measurement of a monotonically nondecreasing clock, mirroring
/// `tokio::time::Instant` (a thin wrapper over `std::time::Instant`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant(StdInstant);

impl Instant {
    /// The current instant.
    pub fn now() -> Instant {
        Instant(StdInstant::now())
    }

    /// Convert from the std clock.
    pub fn from_std(i: StdInstant) -> Instant {
        Instant(i)
    }

    /// Convert into the std clock.
    pub fn into_std(self) -> StdInstant {
        self.0
    }

    /// Time elapsed since this instant.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Time between two instants (panics if `earlier` is later).
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        self.0.duration_since(earlier.0)
    }

    /// Time between two instants, zero if `earlier` is later.
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        self.0.saturating_duration_since(earlier.0)
    }

    /// Checked add.
    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        self.0.checked_add(d).map(Instant)
    }

    /// Checked subtract.
    pub fn checked_sub(&self, d: Duration) -> Option<Instant> {
        self.0.checked_sub(d).map(Instant)
    }
}

impl From<StdInstant> for Instant {
    fn from(i: StdInstant) -> Instant {
        Instant(i)
    }
}

impl From<Instant> for StdInstant {
    fn from(i: Instant) -> StdInstant {
        i.0
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        Instant(self.0 + d)
    }
}

impl std::ops::AddAssign<Duration> for Instant {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d;
    }
}

impl std::ops::Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, d: Duration) -> Instant {
        Instant(self.0 - d)
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, other: Instant) -> Duration {
        self.0 - other.0
    }
}

/// A waker slot shared between a timer entry and its owning future.
/// The future updates the waker on re-poll and clears the slot on
/// drop/completion, so a cancelled timer fires as a no-op instead of
/// waking a finished task.
type WakerSlot = std::sync::Arc<Mutex<Option<Waker>>>;

struct TimerEntry {
    deadline: StdInstant,
    seq: u64,
    slot: WakerSlot,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct TimerShared {
    heap: Mutex<(BinaryHeap<Reverse<TimerEntry>>, u64)>,
    changed: Condvar,
    /// When true the reactor's driver thread advances this heap between
    /// `epoll_pwait2` parks; no timer thread exists and registrations
    /// notify the reactor's eventfd instead of the condvar.
    reactor_driven: bool,
}

/// Total timer-heap registrations since process start. Test/bench
/// observability: the no-busy-spin regression asserts a blocked socket
/// accept adds **zero** of these under the reactor.
static REGISTRATIONS: AtomicU64 = AtomicU64::new(0);

/// Total timer-heap registrations since process start (every `sleep`,
/// `timeout`, and — under the backoff I/O fallback — every `WouldBlock`
/// retry). Not part of real tokio's API; used by this workspace's
/// reactor tests and the `rpc_latency` bench.
pub fn timer_registration_count() -> u64 {
    REGISTRATIONS.load(Ordering::Relaxed)
}

#[cfg(vendored_reactor)]
fn reactor_takes_timers() -> bool {
    crate::reactor::Reactor::get().is_some()
}

#[cfg(not(vendored_reactor))]
fn reactor_takes_timers() -> bool {
    false
}

fn timer() -> &'static TimerShared {
    static TIMER: OnceLock<&'static TimerShared> = OnceLock::new();
    TIMER.get_or_init(|| {
        let reactor_driven = reactor_takes_timers();
        let shared: &'static TimerShared = Box::leak(Box::new(TimerShared {
            heap: Mutex::new((BinaryHeap::new(), 0)),
            changed: Condvar::new(),
            reactor_driven,
        }));
        if !reactor_driven {
            std::thread::Builder::new()
                .name("tokio-timer".to_string())
                .spawn(move || timer_loop(shared))
                .expect("spawn timer thread");
        }
        shared
    })
}

/// Fire every due timer and return the next pending deadline, if any.
/// Called by the reactor's driver thread between parks; the returned
/// deadline becomes the `epoll_pwait2` timeout.
#[cfg(vendored_reactor)]
pub(crate) fn advance_timers() -> Option<StdInstant> {
    let shared = timer();
    let mut due: Vec<Waker> = Vec::new();
    let next = {
        let mut guard = shared.heap.lock().unwrap();
        let now = StdInstant::now();
        while let Some(Reverse(head)) = guard.0.peek() {
            if head.deadline <= now {
                let Reverse(entry) = guard.0.pop().unwrap();
                let woken = entry.slot.lock().unwrap().take();
                if let Some(w) = woken {
                    due.push(w);
                }
            } else {
                break;
            }
        }
        guard.0.peek().map(|Reverse(head)| head.deadline)
    };
    for waker in due {
        waker.wake();
    }
    next
}

fn timer_loop(shared: &'static TimerShared) {
    let mut due: Vec<Waker> = Vec::new();
    loop {
        {
            let mut guard = shared.heap.lock().unwrap();
            loop {
                let now = StdInstant::now();
                while let Some(Reverse(head)) = guard.0.peek() {
                    if head.deadline <= now {
                        let Reverse(entry) = guard.0.pop().unwrap();
                        let woken = entry.slot.lock().unwrap().take();
                        if let Some(w) = woken {
                            due.push(w);
                        }
                    } else {
                        break;
                    }
                }
                if !due.is_empty() {
                    break;
                }
                match guard.0.peek() {
                    Some(Reverse(head)) => {
                        let wait = head.deadline.saturating_duration_since(now);
                        let (g, _timeout) = shared.changed.wait_timeout(guard, wait).unwrap();
                        guard = g;
                    }
                    None => {
                        guard = shared.changed.wait(guard).unwrap();
                    }
                }
            }
        }
        for waker in due.drain(..) {
            waker.wake();
        }
    }
}

/// Arrange for the waker in `slot` to be woken at (or shortly after)
/// `deadline`. The caller keeps the slot: clearing it cancels the wake,
/// replacing its waker retargets it.
pub(crate) fn register_slot(deadline: StdInstant, slot: WakerSlot) {
    REGISTRATIONS.fetch_add(1, Ordering::Relaxed);
    let shared = timer();
    let mut guard = shared.heap.lock().unwrap();
    let seq = guard.1;
    guard.1 += 1;
    // Only an earlier-than-everything deadline changes what the parked
    // driver should be waiting for; later deadlines are discovered when
    // the park next expires anyway.
    let is_new_front = guard
        .0
        .peek()
        .is_none_or(|Reverse(head)| deadline < head.deadline);
    guard.0.push(Reverse(TimerEntry {
        deadline,
        seq,
        slot,
    }));
    drop(guard);
    if !is_new_front {
        return;
    }
    if shared.reactor_driven {
        #[cfg(vendored_reactor)]
        if let Some(reactor) = crate::reactor::Reactor::get() {
            reactor.notify();
        }
    } else {
        shared.changed.notify_one();
    }
}

/// One-shot form of [`register_slot`] for fire-and-forget retry wakeups
/// (short deadlines that self-clean at expiry).
pub(crate) fn register_waker(deadline: StdInstant, waker: Waker) {
    register_slot(deadline, std::sync::Arc::new(Mutex::new(Some(waker))));
}

/// A future that completes at a deadline.
///
/// Registers exactly one timer-heap entry (on first poll); re-polls only
/// refresh the waker in the shared slot, and dropping or completing the
/// sleep clears the slot so the entry expires as a no-op.
#[derive(Debug)]
pub struct Sleep {
    deadline: Instant,
    slot: Option<WakerSlot>,
}

impl Sleep {
    /// The instant this sleep completes.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }

    fn clear_slot(&mut self) {
        if let Some(slot) = self.slot.take() {
            *slot.lock().unwrap() = None;
        }
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if StdInstant::now() >= self.deadline.0 {
            self.clear_slot();
            return Poll::Ready(());
        }
        match &self.slot {
            Some(slot) => {
                *slot.lock().unwrap() = Some(cx.waker().clone());
            }
            None => {
                let slot: WakerSlot = std::sync::Arc::new(Mutex::new(Some(cx.waker().clone())));
                register_slot(self.deadline.0, std::sync::Arc::clone(&slot));
                self.slot = Some(slot);
            }
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        self.clear_slot();
    }
}

/// Sleep for `duration`.
pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + duration,
        slot: None,
    }
}

/// Sleep until `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep {
        deadline,
        slot: None,
    }
}

/// Error returned when a [`timeout`] elapses before its future completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed(());

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`] / [`timeout_at`].
#[derive(Debug)]
pub struct Timeout<F> {
    future: F,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning of both fields; neither moves.
        let (future, sleep) = unsafe {
            let this = self.get_unchecked_mut();
            (
                Pin::new_unchecked(&mut this.future),
                Pin::new_unchecked(&mut this.sleep),
            )
        };
        if let Poll::Ready(v) = future.poll(cx) {
            return Poll::Ready(Ok(v));
        }
        match sleep.poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed(()))),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Require `future` to complete within `duration`.
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout {
        future,
        sleep: sleep(duration),
    }
}

/// Require `future` to complete before `deadline`.
pub fn timeout_at<F: Future>(deadline: Instant, future: F) -> Timeout<F> {
    Timeout {
        future,
        sleep: sleep_until(deadline),
    }
}

/// Errors for this module, mirroring `tokio::time::error`.
pub mod error {
    pub use super::Elapsed;
}
