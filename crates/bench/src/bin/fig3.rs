//! Figure 3 — model container latency profiles.
//!
//! Measures batch latency (mean and P99) as a function of batch size for
//! the six container types, and reports each container's maximum batch
//! size under the 20 ms SLO — the quantity whose 241× spread between the
//! linear SVM and the kernel SVM motivates adaptive batching.

use clipper_bench::profile_container;
use clipper_containers::Fig3Model;
use clipper_metrics::Histogram;
use clipper_workload::Table;
use std::time::{Duration, Instant};

fn main() {
    println!("== Figure 3: Model Container Latency Profiles ==\n");
    let slo = Duration::from_millis(20);
    let mut summary = Table::new(&["container", "max batch @ 20ms SLO", "paper shape"]);

    for model in Fig3Model::all() {
        let container = profile_container("fig3", model, 42);
        let batch_sizes: Vec<usize> = match model {
            Fig3Model::KernelSvmSklearn => (1..=7).collect(),
            _ => vec![1, 50, 100, 200, 400, 800, 1200, 1600],
        };
        println!("{}:", model.label());
        let mut table = Table::new(&["batch", "mean (µs)", "p99 (µs)"]);
        let mut max_under_slo = 0usize;
        for &b in &batch_sizes {
            let hist = Histogram::new();
            let samples = if b >= 800 { 8 } else { 15 };
            let batch = clipper_rpc::as_inputs(vec![vec![0.0f32; 8]; b]);
            for _ in 0..samples {
                let t0 = Instant::now();
                let _ = container.evaluate_blocking(&batch);
                hist.record(t0.elapsed().as_micros() as u64);
            }
            let snap = hist.snapshot();
            if snap.p99() <= slo.as_micros() as u64 {
                max_under_slo = max_under_slo.max(b);
            }
            table.row(&[
                format!("{b}"),
                format!("{:.0}", snap.mean()),
                format!("{}", snap.p99()),
            ]);
        }
        table.print();
        println!();
        summary.row(&[
            model.label().to_string(),
            format!("~{max_under_slo}"),
            match model {
                Fig3Model::KernelSvmSklearn => "single-digit batches (241x below linear SVM)",
                Fig3Model::NoOp => "sub-ms floor: pure system overhead",
                Fig3Model::LinearSvmSklearn => "~1400+ items fit the SLO",
                _ => "linear latency growth",
            }
            .to_string(),
        ]);
    }

    println!("== summary ==");
    summary.print();
}
