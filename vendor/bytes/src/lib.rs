//! Minimal API-compatible substitute for the [`bytes`] crate.
//!
//! Implements the subset the workspace uses: [`Bytes`] (cheaply clonable
//! immutable buffer), [`BytesMut`] (growable buffer with an amortized
//! consuming cursor), and the [`Buf`] / [`BufMut`] traits with the
//! little-endian accessors the RPC codec needs. Semantics match the real
//! crate for this subset; `Bytes` shares its storage via `Arc` so clones
//! and `split_to` are O(1).

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read access to a contiguous, consumable byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, consuming them. Panics if short.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A cheaply clonable immutable byte buffer (shared storage + range).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Visible length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the visible bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_ref())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

/// A growable byte buffer with an amortized consuming front cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes of preallocated storage.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Visible length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensure room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.compact();
        self.buf.reserve(additional);
    }

    /// Append `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.start = 0;
    }

    /// Keep only the first `len` visible bytes.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.buf.truncate(self.start + len);
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self[..at].to_vec();
        self.start += at;
        self.compact_if_large();
        BytesMut {
            buf: head,
            start: 0,
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        let visible = if self.start == 0 {
            self.buf
        } else {
            self.buf[self.start..].to_vec()
        };
        Bytes::from(visible)
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    fn compact_if_large(&mut self) {
        // Reclaim consumed prefix once it dominates the allocation, so a
        // long-lived connection buffer does not grow without bound.
        if self.start > 4096 && self.start >= self.buf.len() / 2 {
            self.compact();
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut {
            buf: v.to_vec(),
            start: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let s = self.start;
        &mut self.buf[s..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", self.as_ref())
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
        if self.is_empty() {
            self.clear();
        } else {
            self.compact_if_large();
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut b = BytesMut::new();
        b.put_u32_le(0xdead_beef);
        b.put_u8(7);
        b.put_u64_le(42);
        b.put_f32_le(1.5);
        let mut r = b.freeze();
        assert_eq!(r.len(), 4 + 1 + 8 + 4);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert!(r.is_empty());
    }

    #[test]
    fn bytes_split_to_shares_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
    }

    #[test]
    fn bytesmut_advance_and_truncate() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        b.advance(6);
        assert_eq!(b.as_ref(), b"world");
        b.truncate(3);
        assert_eq!(b.as_ref(), b"wor");
        b.extend_from_slice(b"!!");
        assert_eq!(b.as_ref(), b"wor!!");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
