//! TIMIT-like speech workload: dialects, speakers, utterances, and
//! per-dialect phoneme recognizers.
//!
//! The paper's speech benchmark (§2.1, Figure 10) serves HTK-trained hidden
//! Markov models personalized per dialect: 630 speakers across 8 dialects
//! of English, 39 phoneme classes. We reproduce the *statistical structure*
//! that drives Figure 10: each dialect shifts the acoustic feature
//! distribution, so a model trained on dialect A transcribes dialect A
//! speakers better than dialect B speakers, and a dialect-oblivious model
//! sits in between.
//!
//! A [`DialectModel`] is a frame-level Gaussian classifier (nearest
//! class-mean, the building block of an HMM's emission model) applied
//! per-frame to an utterance; the loss is the phoneme error rate.

use crate::eval::sequence_error_rate;
use crate::models::Label;
use rand::prelude::*;
use rand_distr::Normal;

/// Number of phoneme classes (TIMIT's folded 39-phone set).
pub const NUM_PHONEMES: usize = 39;
/// Number of English dialect regions in TIMIT.
pub const NUM_DIALECTS: usize = 8;
/// Speakers in the TIMIT corpus.
pub const NUM_SPEAKERS: usize = 630;
/// MFCC-style feature dimensionality (13 coefficients × Δ, ΔΔ).
pub const FRAME_DIM: usize = 39;

/// One spoken utterance: a sequence of acoustic frames plus the true
/// phoneme transcription.
#[derive(Clone, Debug)]
pub struct Utterance {
    /// Speaker id in `0..NUM_SPEAKERS`.
    pub speaker: u32,
    /// Dialect region in `0..NUM_DIALECTS`.
    pub dialect: u32,
    /// Acoustic frames, each `FRAME_DIM` floats.
    pub frames: Vec<Vec<f32>>,
    /// True phoneme label per frame.
    pub phonemes: Vec<Label>,
}

impl Utterance {
    /// Flatten frames into one feature vector (how the serving layer ships
    /// an utterance to a container).
    pub fn flatten(&self) -> Vec<f32> {
        self.frames.iter().flatten().copied().collect()
    }

    /// Rebuild frames from a flattened vector.
    pub fn unflatten(flat: &[f32]) -> Vec<Vec<f32>> {
        flat.chunks(FRAME_DIM).map(|c| c.to_vec()).collect()
    }
}

/// The generative speech corpus: base phoneme means plus per-dialect,
/// per-phoneme shifts.
///
/// Shifts must vary *per phoneme* (real dialects move specific vowels, not
/// the whole acoustic space): a uniform translation of every class mean
/// would nearly cancel in nearest-mean classification and dialect models
/// would confer no advantage.
pub struct SpeechCorpus {
    /// Base acoustic mean per phoneme.
    base_means: Vec<Vec<f32>>,
    /// Additive shift per `[dialect][phoneme]`.
    dialect_shifts: Vec<Vec<Vec<f32>>>,
    noise_sigma: f32,
    /// Dialect of each speaker.
    speaker_dialects: Vec<u32>,
}

impl SpeechCorpus {
    /// Build the corpus deterministically from a seed.
    ///
    /// `dialect_strength` scales how far dialects shift the acoustics:
    /// larger values make dialect-specific models more valuable (steeper
    /// Figure-10 separation).
    pub fn generate(seed: u64, dialect_strength: f32, noise_sigma: f32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let unit = Normal::new(0.0f32, 1.0f32).expect("unit normal");
        let sphere_vec = |dim: usize, scale: f32, rng: &mut StdRng| -> Vec<f32> {
            let mut v: Vec<f32> = (0..dim).map(|_| unit.sample(rng)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in v.iter_mut() {
                *x *= scale / norm;
            }
            v
        };
        let base_means: Vec<Vec<f32>> = (0..NUM_PHONEMES)
            .map(|_| sphere_vec(FRAME_DIM, 1.0, &mut rng))
            .collect();
        let dialect_shifts: Vec<Vec<Vec<f32>>> = (0..NUM_DIALECTS)
            .map(|_| {
                (0..NUM_PHONEMES)
                    .map(|_| sphere_vec(FRAME_DIM, dialect_strength, &mut rng))
                    .collect()
            })
            .collect();
        // TIMIT's dialect regions are unevenly sized; round-robin is close
        // enough for the serving experiments.
        let speaker_dialects = (0..NUM_SPEAKERS)
            .map(|s| (s % NUM_DIALECTS) as u32)
            .collect();
        SpeechCorpus {
            base_means,
            dialect_shifts,
            noise_sigma,
            speaker_dialects,
        }
    }

    /// Default corpus matching the Figure-10 regime: dialect structure is
    /// strong enough that per-dialect models clearly beat a global model.
    pub fn default_corpus(seed: u64) -> Self {
        Self::generate(seed, 0.6, 0.35)
    }

    /// The dialect of `speaker`.
    pub fn dialect_of(&self, speaker: u32) -> u32 {
        self.speaker_dialects[speaker as usize % NUM_SPEAKERS]
    }

    /// Sample one utterance of `len` frames for `speaker`.
    pub fn utterance(&self, speaker: u32, len: usize, rng: &mut StdRng) -> Utterance {
        let dialect = self.dialect_of(speaker);
        let shifts = &self.dialect_shifts[dialect as usize];
        let noise = Normal::new(0.0f32, self.noise_sigma).expect("noise normal");
        let mut frames = Vec::with_capacity(len);
        let mut phonemes = Vec::with_capacity(len);
        for _ in 0..len {
            let p = rng.random_range(0..NUM_PHONEMES) as u32;
            let mean = &self.base_means[p as usize];
            let shift = &shifts[p as usize];
            let frame: Vec<f32> = mean
                .iter()
                .zip(shift.iter())
                .map(|(&m, &s)| m + s + noise.sample(rng))
                .collect();
            frames.push(frame);
            phonemes.push(p);
        }
        Utterance {
            speaker,
            dialect,
            frames,
            phonemes,
        }
    }

    /// Sample a training set of utterances restricted to one dialect
    /// (`Some(d)`) or drawn across all dialects (`None` — the
    /// dialect-oblivious model's training data).
    pub fn training_utterances(
        &self,
        dialect: Option<u32>,
        count: usize,
        frames_per_utt: usize,
        seed: u64,
    ) -> Vec<Utterance> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let speaker = loop {
                    let s = rng.random_range(0..NUM_SPEAKERS) as u32;
                    match dialect {
                        Some(d) if self.dialect_of(s) != d => continue,
                        _ => break s,
                    }
                };
                self.utterance(speaker, frames_per_utt, &mut rng)
            })
            .collect()
    }
}

/// A frame-level phoneme recognizer: per-phoneme Gaussian means estimated
/// from utterances (the emission model of an HTK-style HMM).
pub struct DialectModel {
    name: String,
    /// Estimated mean per phoneme.
    means: Vec<Vec<f32>>,
}

impl DialectModel {
    /// Estimate phoneme means from training utterances.
    pub fn train(name: &str, utterances: &[Utterance]) -> Self {
        let mut sums = vec![vec![0.0f32; FRAME_DIM]; NUM_PHONEMES];
        let mut counts = [0f32; NUM_PHONEMES];
        for utt in utterances {
            for (frame, &p) in utt.frames.iter().zip(utt.phonemes.iter()) {
                let p = p as usize;
                for (s, &f) in sums[p].iter_mut().zip(frame.iter()) {
                    *s += f;
                }
                counts[p] += 1.0;
            }
        }
        for (sum, &c) in sums.iter_mut().zip(counts.iter()) {
            if c > 0.0 {
                for v in sum.iter_mut() {
                    *v /= c;
                }
            }
        }
        DialectModel {
            name: name.to_string(),
            means: sums,
        }
    }

    /// Model name (e.g. `"dialect-3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Transcribe an utterance: nearest phoneme mean per frame.
    pub fn transcribe(&self, frames: &[Vec<f32>]) -> Vec<Label> {
        frames
            .iter()
            .map(|f| {
                let mut best = 0u32;
                let mut best_d = f32::INFINITY;
                for (p, mean) in self.means.iter().enumerate() {
                    let d = crate::linalg::sq_dist(mean, f);
                    if d < best_d {
                        best_d = d;
                        best = p as u32;
                    }
                }
                best
            })
            .collect()
    }

    /// Phoneme error rate of this model on an utterance.
    pub fn error_rate(&self, utt: &Utterance) -> f64 {
        sequence_error_rate(&utt.phonemes, &self.transcribe(&utt.frames))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let c1 = SpeechCorpus::default_corpus(3);
        let c2 = SpeechCorpus::default_corpus(3);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let u1 = c1.utterance(10, 20, &mut r1);
        let u2 = c2.utterance(10, 20, &mut r2);
        assert_eq!(u1.frames, u2.frames);
        assert_eq!(u1.phonemes, u2.phonemes);
    }

    #[test]
    fn speakers_cover_all_dialects() {
        let c = SpeechCorpus::default_corpus(3);
        let mut seen = [false; NUM_DIALECTS];
        for s in 0..NUM_SPEAKERS as u32 {
            seen[c.dialect_of(s) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn flatten_roundtrip() {
        let c = SpeechCorpus::default_corpus(3);
        let mut rng = StdRng::seed_from_u64(1);
        let u = c.utterance(5, 7, &mut rng);
        let flat = u.flatten();
        assert_eq!(flat.len(), 7 * FRAME_DIM);
        assert_eq!(Utterance::unflatten(&flat), u.frames);
    }

    #[test]
    fn dialect_model_beats_wrong_dialect_model() {
        let c = SpeechCorpus::default_corpus(17);
        let train0 = c.training_utterances(Some(0), 60, 20, 100);
        let train1 = c.training_utterances(Some(1), 60, 20, 101);
        let m0 = DialectModel::train("dialect-0", &train0);
        let m1 = DialectModel::train("dialect-1", &train1);

        // Evaluate both models on fresh dialect-0 utterances.
        let mut rng = StdRng::seed_from_u64(7);
        let speakers: Vec<u32> = (0..NUM_SPEAKERS as u32)
            .filter(|&s| c.dialect_of(s) == 0)
            .take(20)
            .collect();
        let (mut e0, mut e1) = (0.0, 0.0);
        let mut n = 0.0;
        for &s in &speakers {
            let utt = c.utterance(s, 30, &mut rng);
            e0 += m0.error_rate(&utt);
            e1 += m1.error_rate(&utt);
            n += 1.0;
        }
        assert!(
            e0 / n < e1 / n,
            "own-dialect model must win: {} vs {}",
            e0 / n,
            e1 / n
        );
    }

    #[test]
    fn global_model_sits_between() {
        // Figure 10's premise: dialect-specific < global < wrong-dialect.
        let c = SpeechCorpus::default_corpus(23);
        let own = DialectModel::train("own", &c.training_utterances(Some(2), 60, 20, 1));
        let global = DialectModel::train("global", &c.training_utterances(None, 120, 20, 2));
        let wrong = DialectModel::train("wrong", &c.training_utterances(Some(5), 60, 20, 3));

        let mut rng = StdRng::seed_from_u64(9);
        let speakers: Vec<u32> = (0..NUM_SPEAKERS as u32)
            .filter(|&s| c.dialect_of(s) == 2)
            .take(20)
            .collect();
        let (mut eo, mut eg, mut ew) = (0.0, 0.0, 0.0);
        for &s in &speakers {
            let utt = c.utterance(s, 30, &mut rng);
            eo += own.error_rate(&utt);
            eg += global.error_rate(&utt);
            ew += wrong.error_rate(&utt);
        }
        assert!(eo < eg, "own {eo} < global {eg}");
        assert!(eg < ew, "global {eg} < wrong {ew}");
    }

    #[test]
    fn transcription_length_matches_frames() {
        let c = SpeechCorpus::default_corpus(3);
        let m = DialectModel::train("d", &c.training_utterances(Some(0), 10, 10, 4));
        let mut rng = StdRng::seed_from_u64(2);
        let u = c.utterance(0, 25, &mut rng);
        assert_eq!(m.transcribe(&u.frames).len(), 25);
    }
}
