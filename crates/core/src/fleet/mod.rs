//! Self-managing replica fleet: discovery, health, and autoscaling over
//! the data plane.
//!
//! Clipper (§6.2) delegates replica lifecycle to an external container
//! manager; this module closes that loop in-process, the way the paper's
//! successors do (InferLine's latency-objective autoscaling, Clockwork's
//! centralized worker state):
//!
//! - **Self-registration** ([`registry`]): containers announce themselves
//!   over `POST /api/v1/replicas` (or an RPC `Register` frame); the
//!   frontend validates model/version against its directory, attaches the
//!   replica to the abstraction layer itself, and persists a
//!   `config/replica/*` record so a restarted or sibling frontend
//!   re-adopts the same fleet.
//! - **Heartbeat-driven health** ([`health`]): a monitor task drives each
//!   member through `Healthy → Suspect → Expired`. Suspicion feeds the
//!   p2c scheduler's suspect-avoidance (the replica is deprioritized but
//!   not abandoned); expiry triggers the zero-drop graceful drain and
//!   harvests the replica's learned latency curve so a returning
//!   container is re-admitted warm.
//! - **Autoscaling** ([`autoscale`]): a control loop over signals the
//!   scheduler already computes (backlog, admission sheds) launches and
//!   reaps replicas through a pluggable [`ReplicaLauncher`].

pub mod autoscale;
pub mod health;
pub mod registry;

pub use autoscale::{evaluate, AutoscaleConfig, AutoscaleDecision, AutoscalerState, ScaleSignals};
pub use registry::{
    Fleet, FleetConfig, FleetEvent, FnLauncher, Launched, ProcessLauncher, ReplicaHealth,
    ReplicaLauncher,
};
