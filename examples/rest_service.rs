//! A fully networked Clipper deployment — every process boundary from the
//! paper's architecture figure, on real sockets:
//!
//! ```text
//! HTTP client ──► HTTP frontend ──► Clipper core ──► RPC ──► model containers
//!                                        │
//!                                        └──► statestore (RESP/TCP)
//! ```
//!
//! ```sh
//! cargo run --release --example rest_service
//! ```

use clipper::containers::{
    spawn_tcp_container, ContainerConfig, ContainerLogic, ModelContainer, TimingModel,
};
use clipper::core::{AppConfig, Clipper, HttpFrontend, ModelId, PolicyKind};
use clipper::ml::datasets::DatasetSpec;
use clipper::ml::models::{
    LinearSvm, LinearSvmConfig, LogisticRegression, LogisticRegressionConfig,
};
use clipper::rpc::server::RpcServer;
use clipper::statestore::{StateStore, StateStoreClient, StateStoreServer};
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

#[tokio::main]
async fn main() {
    println!("== Networked Clipper deployment ==\n");

    // --- statestore as a separate TCP service (the paper's Redis) ---
    let store = Arc::new(StateStore::new());
    let store_server = StateStoreServer::bind("127.0.0.1:0", store.clone())
        .await
        .expect("statestore binds");
    println!("statestore listening on {}", store_server.local_addr());

    // --- Clipper core + container RPC listener ---
    let clipper = Clipper::builder().statestore(store).build();
    let mut rpc = RpcServer::bind("127.0.0.1:0").await.expect("rpc binds");
    println!("container RPC listening on {}", rpc.local_addr());

    // --- train models and launch containers as RPC clients ---
    let dataset = DatasetSpec::mnist_like()
        .with_train_size(400)
        .with_test_size(100)
        .generate(3);
    let svm = Arc::new(LinearSvm::train(&dataset, &LinearSvmConfig::default(), 1));
    let logreg = Arc::new(LogisticRegression::train(
        &dataset,
        &LogisticRegressionConfig::default(),
        2,
    ));

    for (name, logic) in [
        ("svm", ContainerLogic::Classifier(svm as _)),
        ("logreg", ContainerLogic::Classifier(logreg as _)),
    ] {
        let container = ModelContainer::new(ContainerConfig {
            name: format!("{name}:0"),
            model_name: name.into(),
            model_version: 1,
            logic,
            timing: TimingModel::Measured,
            seed: 1,
        });
        spawn_tcp_container(rpc.local_addr(), container);
    }

    // Accept both container registrations and wire them into Clipper.
    for _ in 0..2 {
        let (info, handle) = rpc.next_container().await.expect("registration");
        let id = ModelId::new(&info.model_name, info.model_version);
        clipper.add_model(id.clone(), Default::default());
        clipper
            .add_replica(&id, Arc::new(handle))
            .expect("replica attaches");
        println!(
            "container {} registered from {} (model {})",
            info.container_name, info.remote_addr, id
        );
    }

    clipper.register_app(
        AppConfig::new(
            "digits",
            vec![ModelId::new("svm", 1), ModelId::new("logreg", 1)],
        )
        .with_policy(PolicyKind::Exp4 { eta: 0.2 })
        .with_slo(Duration::from_millis(50)),
    );

    // --- HTTP frontend ---
    let frontend = HttpFrontend::bind("127.0.0.1:0", clipper.clone())
        .await
        .expect("frontend binds");
    println!("HTTP frontend listening on {}\n", frontend.local_addr());

    // --- act as an application: REST predict + update calls ---
    let example = &dataset.test[0];
    let input_json = serde_json::to_string(&example.x).unwrap();
    let body = format!("{{\"input\": {input_json}, \"context\": \"demo-user\"}}");
    let request = format!(
        "POST /apps/digits/predict HTTP/1.1\r\nhost: clipper\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut conn = TcpStream::connect(frontend.local_addr()).await.unwrap();
    conn.write_all(request.as_bytes()).await.unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).await.unwrap();
    let json_body = response.split("\r\n\r\n").nth(1).unwrap_or("");
    println!("REST predict (true label {}): {json_body}", example.y);

    // feedback over REST
    let body = format!(
        "{{\"input\": {input_json}, \"context\": \"demo-user\", \"label\": {}}}",
        example.y
    );
    let request = format!(
        "POST /apps/digits/update HTTP/1.1\r\nhost: clipper\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut conn = TcpStream::connect(frontend.local_addr()).await.unwrap();
    conn.write_all(request.as_bytes()).await.unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).await.unwrap();
    println!(
        "REST update: {}",
        response.split("\r\n\r\n").nth(1).unwrap_or("")
    );

    // --- peek at the contextual state through the statestore protocol ---
    let ss_client = StateStoreClient::connect(store_server.local_addr())
        .await
        .expect("statestore client");
    let raw = ss_client
        .get("selstate/digits/demo-user")
        .await
        .expect("get state")
        .expect("state present");
    println!(
        "\nselection state for demo-user (via RESP protocol): {}",
        String::from_utf8_lossy(&raw)
    );
    println!(
        "total contexts in store: {}",
        ss_client.dbsize().await.unwrap()
    );
}
