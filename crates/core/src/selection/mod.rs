//! The model selection layer (§5).
//!
//! Policies implement the four-function interface of the paper's
//! Listing 2 — `init`, `select`, `combine`, `observe` — over a shared,
//! serializable [`PolicyState`] so state can live per-context in an
//! external statestore (§5.3) and survive process restarts.
//!
//! Provided policies:
//! - [`Exp3Policy`] — single-model bandit, one evaluation per query (§5.1);
//! - [`Exp4Policy`] — ensemble weighting across all models (§5.2);
//! - [`EpsilonGreedyPolicy`], [`UcbPolicy`] — classic bandit extensions;
//! - [`MajorityVotePolicy`] — unweighted ensembles (no learning);
//! - [`StaticPolicy`] — a fixed model (the A/B-testing strawman).
//!
//! Randomized selection is *derived* (hash of seed, observation count, and
//! input), so `select` is a pure function of state — the property that
//! lets `observe` re-derive which arm a past query used when joining
//! delayed feedback.

pub mod manager;
pub mod policies;

pub use manager::SelectionStateManager;
pub use policies::{
    build_policy, EpsilonGreedyPolicy, Exp3Policy, Exp4Policy, MajorityVotePolicy, StaticPolicy,
    ThompsonSamplingPolicy, UcbPolicy,
};

use crate::types::{Feedback, Input, ModelId, Output};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Learned state of a selection policy (the Listing-2 type `S`).
///
/// One struct serves every built-in policy: `weights` are Exp3/Exp4
/// weights or value estimates, `counts` are per-model pull counts (UCB,
/// ε-greedy). Serialized as JSON into the statestore for contextual
/// selection.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct PolicyState {
    /// Model ordering (indices align with `weights`/`counts`).
    pub models: Vec<ModelId>,
    /// Per-model weights or value estimates.
    pub weights: Vec<f64>,
    /// Per-model observation counts.
    pub counts: Vec<u64>,
    /// Total feedback observations.
    pub total: u64,
    /// Seed for derived randomness.
    pub seed: u64,
}

impl PolicyState {
    /// Fresh state with uniform weights.
    pub fn uniform(models: &[ModelId], seed: u64) -> Self {
        PolicyState {
            models: models.to_vec(),
            weights: vec![1.0; models.len()],
            counts: vec![0; models.len()],
            total: 0,
            seed,
        }
    }

    /// Index of a model in this state.
    pub fn index_of(&self, model: &ModelId) -> Option<usize> {
        self.models.iter().position(|m| m == model)
    }

    /// Selection probabilities proportional to weights.
    pub fn probabilities(&self) -> Vec<f64> {
        let sum: f64 = self.weights.iter().sum();
        if sum <= 0.0 || !sum.is_finite() {
            let n = self.weights.len().max(1);
            return vec![1.0 / n as f64; self.weights.len()];
        }
        self.weights.iter().map(|w| w / sum).collect()
    }

    /// Derived uniform in [0, 1): a pure function of (seed, total, input),
    /// so randomized selection is reproducible and re-derivable.
    pub fn derived_uniform(&self, input: &Input) -> f64 {
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        self.total.hash(&mut h);
        input.len().hash(&mut h);
        for v in input.iter().take(16) {
            v.to_bits().hash(&mut h);
        }
        (h.finish() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Reconcile this state with an amended candidate-model set (app
    /// update or model-version rollout). Learned weights and counts carry
    /// over by model *name* — a version bump keeps what the bandit learned
    /// about the model, which is the point of transparent rollouts
    /// (§2.2) — while genuinely new models start at the uniform weight.
    /// Returns whether anything changed.
    pub fn remap_models(&mut self, models: &[ModelId]) -> bool {
        if self.models == models {
            return false;
        }
        let mut weights = vec![1.0; models.len()];
        let mut counts = vec![0u64; models.len()];
        // Exact-id matches claim their old entries first, so a candidate
        // set that deliberately contains two versions of the same model
        // (A/B comparison) keeps each version's own learned state; only
        // then do leftover new entries inherit by name (version bump).
        let mut used = vec![false; self.models.len()];
        let mut matched = vec![false; models.len()];
        for (i, m) in models.iter().enumerate() {
            if let Some(j) = (0..self.models.len()).find(|&j| !used[j] && &self.models[j] == m) {
                weights[i] = self.weights[j];
                counts[i] = self.counts[j];
                used[j] = true;
                matched[i] = true;
            }
        }
        for (i, m) in models.iter().enumerate() {
            if matched[i] {
                continue;
            }
            if let Some(j) =
                (0..self.models.len()).find(|&j| !used[j] && self.models[j].name == m.name)
            {
                weights[i] = self.weights[j];
                counts[i] = self.counts[j];
                used[j] = true;
            }
        }
        self.models = models.to_vec();
        self.weights = weights;
        self.counts = counts;
        true
    }

    /// Guard against weight overflow/underflow: renormalize so weights sum
    /// to the model count (preserves probabilities exactly).
    pub fn renormalize(&mut self) {
        let sum: f64 = self.weights.iter().sum();
        let n = self.weights.len() as f64;
        if sum > 0.0 && sum.is_finite() {
            for w in self.weights.iter_mut() {
                *w *= n / sum;
                // Keep every arm revivable.
                *w = w.max(1e-12);
            }
        } else {
            for w in self.weights.iter_mut() {
                *w = 1.0;
            }
        }
    }
}

/// The model selection policy interface (the paper's Listing 2).
pub trait SelectionPolicy: Send + Sync {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// `S init()` — fresh state for a model set.
    fn init(&self, models: &[ModelId], seed: u64) -> PolicyState {
        PolicyState::uniform(models, seed)
    }

    /// `List<ModelId> select(S, X)` — which models to evaluate for this
    /// query.
    fn select(&self, state: &PolicyState, input: &Input) -> Vec<ModelId>;

    /// `(Y, confidence) combine(S, X, preds)` — final prediction plus an
    /// agreement-based confidence estimate.
    fn combine(
        &self,
        state: &PolicyState,
        input: &Input,
        preds: &HashMap<ModelId, Output>,
    ) -> (Output, f64);

    /// `S observe(S, X, feedback, preds)` — fold feedback into the state.
    fn observe(
        &self,
        state: &mut PolicyState,
        input: &Input,
        feedback: &Feedback,
        preds: &HashMap<ModelId, Output>,
    );
}

/// Weighted combination over present predictions: per-label weighted vote
/// (score vectors are averaged when shapes agree; label sequences vote per
/// position). Returns `None` when `preds` is empty.
pub fn weighted_combine(
    state: &PolicyState,
    preds: &HashMap<ModelId, Output>,
) -> Option<(Output, f64)> {
    let present: Vec<(usize, &Output)> = state
        .models
        .iter()
        .enumerate()
        .filter_map(|(i, m)| preds.get(m).map(|o| (i, o)))
        .collect();
    if present.is_empty() {
        return None;
    }
    let total_weight: f64 = present.iter().map(|(i, _)| state.weights[*i]).sum();
    if total_weight <= 0.0 {
        return None;
    }

    // Label sequences: per-position weighted vote.
    if present.iter().all(|(_, o)| matches!(o, Output::Labels(_))) {
        let max_len = present
            .iter()
            .map(|(_, o)| match o {
                Output::Labels(l) => l.len(),
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        let mut combined = Vec::with_capacity(max_len);
        let mut agreement_acc = 0.0f64;
        for pos in 0..max_len {
            let mut tally: HashMap<u32, f64> = HashMap::new();
            let mut pos_weight = 0.0;
            for (i, o) in &present {
                if let Output::Labels(l) = o {
                    if let Some(&lab) = l.get(pos) {
                        *tally.entry(lab).or_insert(0.0) += state.weights[*i];
                        pos_weight += state.weights[*i];
                    }
                }
            }
            let (&winner, &wwin) = tally
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
            combined.push(winner);
            if pos_weight > 0.0 {
                agreement_acc += wwin / pos_weight;
            }
        }
        let confidence = if max_len == 0 {
            0.0
        } else {
            agreement_acc / max_len as f64
        };
        return Some((Output::Labels(combined), confidence));
    }

    // Scores: weighted average when all shapes agree.
    let all_scores_same_dim = {
        let dims: Vec<usize> = present
            .iter()
            .filter_map(|(_, o)| match o {
                Output::Scores(s) => Some(s.len()),
                _ => None,
            })
            .collect();
        dims.len() == present.len() && dims.windows(2).all(|w| w[0] == w[1])
    };
    if all_scores_same_dim {
        let dim = match present[0].1 {
            Output::Scores(s) => s.len(),
            _ => unreachable!(),
        };
        let mut acc = vec![0.0f64; dim];
        for (i, o) in &present {
            if let Output::Scores(s) = o {
                for (a, &v) in acc.iter_mut().zip(s.iter()) {
                    *a += state.weights[*i] * v as f64;
                }
            }
        }
        let mean: Vec<f32> = acc.iter().map(|&v| (v / total_weight) as f32).collect();
        let combined = Output::Scores(mean);
        let winner = combined.label();
        let agree: f64 = present
            .iter()
            .filter(|(_, o)| o.label() == winner)
            .map(|(i, _)| state.weights[*i])
            .sum();
        return Some((combined, agree / total_weight));
    }

    // General case: weighted vote over argmax labels.
    let mut tally: HashMap<u32, f64> = HashMap::new();
    for (i, o) in &present {
        *tally.entry(o.label()).or_insert(0.0) += state.weights[*i];
    }
    let (&winner, &wwin) = tally
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))?;
    Some((Output::Class(winner), wwin / total_weight))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn models(n: usize) -> Vec<ModelId> {
        (0..n).map(|i| ModelId::new(&format!("m{i}"), 1)).collect()
    }

    #[test]
    fn uniform_state_has_equal_probabilities() {
        let s = PolicyState::uniform(&models(4), 0);
        let p = s.probabilities();
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|&x| (x - 0.25).abs() < 1e-12));
    }

    #[test]
    fn derived_uniform_is_deterministic_and_varies() {
        let s = PolicyState::uniform(&models(2), 7);
        let x1: Input = Arc::new(vec![1.0, 2.0]);
        let x2: Input = Arc::new(vec![3.0, 4.0]);
        assert_eq!(s.derived_uniform(&x1), s.derived_uniform(&x1));
        assert_ne!(s.derived_uniform(&x1), s.derived_uniform(&x2));
        let u = s.derived_uniform(&x1);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn derived_uniform_changes_with_observations() {
        let mut s = PolicyState::uniform(&models(2), 7);
        let x: Input = Arc::new(vec![1.0]);
        let before = s.derived_uniform(&x);
        s.total += 1;
        assert_ne!(before, s.derived_uniform(&x));
    }

    #[test]
    fn remap_models_carries_learned_weights_across_versions() {
        let old = vec![ModelId::new("a", 1), ModelId::new("b", 1)];
        let mut s = PolicyState::uniform(&old, 5);
        s.weights = vec![4.0, 0.5];
        s.counts = vec![10, 2];
        s.total = 12;
        // Roll "a" to v2 and introduce a brand-new model "c".
        let new = vec![ModelId::new("a", 2), ModelId::new("c", 1)];
        assert!(s.remap_models(&new));
        assert_eq!(s.models, new);
        assert_eq!(s.weights, vec![4.0, 1.0], "a keeps its weight, c is fresh");
        assert_eq!(s.counts, vec![10, 0]);
        assert_eq!(s.total, 12, "observation history is not rewritten");
        // Identical set: no-op.
        assert!(!s.remap_models(&new));
    }

    #[test]
    fn remap_models_keeps_per_version_state_in_ab_sets() {
        // An app comparing two versions of one model must not have their
        // learned weights collapsed onto the first name match.
        let old = vec![ModelId::new("m", 1), ModelId::new("m", 2)];
        let mut s = PolicyState::uniform(&old, 1);
        s.weights = vec![3.0, 7.0];
        s.counts = vec![30, 70];
        let new = vec![ModelId::new("m", 2), ModelId::new("m", 1)];
        assert!(s.remap_models(&new));
        assert_eq!(s.weights, vec![7.0, 3.0], "exact ids keep their state");
        assert_eq!(s.counts, vec![70, 30]);
    }

    #[test]
    fn renormalize_preserves_ratios() {
        let mut s = PolicyState::uniform(&models(2), 0);
        s.weights = vec![2e-300, 6e-300];
        s.renormalize();
        let ratio = s.weights[1] / s.weights[0];
        assert!((ratio - 3.0).abs() < 1e-6);
        assert!((s.weights.iter().sum::<f64>() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn renormalize_recovers_from_nan() {
        let mut s = PolicyState::uniform(&models(2), 0);
        s.weights = vec![f64::NAN, 1.0];
        s.renormalize();
        assert!(s.weights.iter().all(|w| w.is_finite()));
    }

    #[test]
    fn weighted_combine_label_vote() {
        let s = {
            let mut s = PolicyState::uniform(&models(3), 0);
            s.weights = vec![1.0, 1.0, 3.0];
            s
        };
        let mut preds = HashMap::new();
        preds.insert(s.models[0].clone(), Output::Class(1));
        preds.insert(s.models[1].clone(), Output::Class(1));
        preds.insert(s.models[2].clone(), Output::Class(2));
        let (out, conf) = weighted_combine(&s, &preds).unwrap();
        assert_eq!(out, Output::Class(2), "weight 3 beats 1+1");
        assert!((conf - 0.6).abs() < 1e-9);
    }

    #[test]
    fn weighted_combine_scores_average() {
        let s = PolicyState::uniform(&models(2), 0);
        let mut preds = HashMap::new();
        preds.insert(s.models[0].clone(), Output::Scores(vec![0.8, 0.2]));
        preds.insert(s.models[1].clone(), Output::Scores(vec![0.4, 0.6]));
        let (out, conf) = weighted_combine(&s, &preds).unwrap();
        match out {
            Output::Scores(v) => {
                assert!((v[0] - 0.6).abs() < 1e-6);
                assert!((v[1] - 0.4).abs() < 1e-6);
            }
            other => panic!("expected scores, got {other:?}"),
        }
        // Models disagree on argmax: one of two agrees with the winner.
        assert!((conf - 0.5).abs() < 1e-9);
    }

    #[test]
    fn weighted_combine_sequences_vote_per_position() {
        let s = PolicyState::uniform(&models(3), 0);
        let mut preds = HashMap::new();
        preds.insert(s.models[0].clone(), Output::Labels(vec![1, 2, 3]));
        preds.insert(s.models[1].clone(), Output::Labels(vec![1, 2, 9]));
        preds.insert(s.models[2].clone(), Output::Labels(vec![1, 5, 3]));
        let (out, conf) = weighted_combine(&s, &preds).unwrap();
        assert_eq!(out, Output::Labels(vec![1, 2, 3]));
        // Position agreement: 3/3, 2/3, 2/3 → mean 7/9.
        assert!((conf - 7.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_combine_empty_is_none() {
        let s = PolicyState::uniform(&models(2), 0);
        assert!(weighted_combine(&s, &HashMap::new()).is_none());
    }
}
