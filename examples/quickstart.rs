//! Quickstart: deploy two models behind Clipper, serve predictions under
//! a 20 ms latency objective, then drive the `/api/v1` control plane over
//! HTTP — register an app and roll a model version live (this doubles as
//! the CI smoke for the control plane).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clipper::containers::{
    ContainerConfig, ContainerLogic, LatencyProfile, LocalContainerTransport, ModelContainer,
    TimingModel,
};
use clipper::core::{AppConfig, Clipper, Feedback, HttpFrontend, ModelId, PolicyKind};
use clipper::ml::datasets::DatasetSpec;
use clipper::ml::models::{
    LinearSvm, LinearSvmConfig, LogisticRegression, LogisticRegressionConfig,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

#[tokio::main]
async fn main() {
    println!("== Clipper quickstart ==\n");

    // 1. Train two models on an MNIST-shaped dataset (the "framework"
    //    step that normally happens in Scikit-Learn or Spark).
    let dataset = DatasetSpec::mnist_like()
        .with_train_size(600)
        .with_test_size(200)
        .generate(42);
    println!(
        "dataset: {} ({} features, {} classes)",
        dataset.spec.name,
        dataset.num_features(),
        dataset.num_classes()
    );
    let svm = Arc::new(LinearSvm::train(&dataset, &LinearSvmConfig::default(), 1));
    let logreg = Arc::new(LogisticRegression::train(
        &dataset,
        &LogisticRegressionConfig::default(),
        2,
    ));

    // 2. Stand up Clipper and deploy each model in its own container.
    let clipper = Clipper::builder().build();
    let svm_id = ModelId::new("linear-svm", 1);
    let logreg_id = ModelId::new("logreg", 1);

    for (id, logic) in [
        (svm_id.clone(), ContainerLogic::Classifier(svm as _)),
        (logreg_id.clone(), ContainerLogic::Classifier(logreg as _)),
    ] {
        clipper.add_model(id.clone(), Default::default());
        let container = ModelContainer::new(ContainerConfig {
            name: format!("{}:0", id.name),
            model_name: id.name.clone(),
            model_version: 1,
            logic,
            // Pad to the paper's SKLearn linear-model latency profile.
            timing: TimingModel::Profile(
                LatencyProfile::deterministic(
                    Duration::from_micros(500),
                    Duration::from_micros(15),
                )
                .with_jitter(0.05),
            ),
            seed: 7,
        });
        clipper
            .add_replica(&id, LocalContainerTransport::new(container))
            .expect("replica attaches");
    }

    // 3. Register an application: Exp4 ensemble over both models, 20ms SLO.
    clipper.register_app(
        AppConfig::new("digits", vec![svm_id, logreg_id])
            .with_policy(PolicyKind::Exp4 { eta: 0.2 })
            .with_slo(Duration::from_millis(20)),
    );

    // 4. Serve predictions and send feedback.
    let mut correct = 0;
    for example in dataset.test.iter().take(100) {
        let input = Arc::new(example.x.clone());
        let prediction = clipper
            .predict("digits", None, input.clone())
            .await
            .expect("prediction");
        if prediction.output.label() == example.y {
            correct += 1;
        }
        clipper
            .feedback("digits", None, input, Feedback::class(example.y))
            .await
            .expect("feedback");
    }

    println!("served 100 queries: {correct}% correct (ensemble of 2)\n");

    // 5. What the telemetry saw.
    let snapshot = clipper.registry().snapshot();
    for (name, value) in snapshot.values.iter() {
        if name.starts_with("clipper/") || name.ends_with("batch_size") {
            println!("{name}: {value:?}");
        }
    }
    let stats = clipper.abstraction().cache().stats();
    println!(
        "\nprediction cache: {} hits / {} misses / {} pending joins",
        stats.hits, stats.misses, stats.pending_joins
    );
    println!("(feedback joins hit the cache — that is §4.2's 1.6x speedup)");

    // 6. Drive the control plane over HTTP: register an app, deploy a new
    //    model version, and roll it out live — no restart, no dropped
    //    queries. This section doubles as the CI control-plane smoke: any
    //    failed step panics.
    println!("\n== Control plane over HTTP ==\n");
    let frontend = HttpFrontend::bind("127.0.0.1:0", clipper.clone())
        .await
        .expect("frontend binds");
    let addr = frontend.local_addr();
    println!("HTTP frontend listening on {addr}");

    // Register an app over POST /api/v1/apps.
    let (status, body) = http(
        addr,
        "POST",
        "/api/v1/apps",
        "{\"name\":\"digits-svm-only\",\
          \"candidate_models\":[{\"name\":\"linear-svm\",\"version\":1}],\
          \"policy\":{\"Static\":{\"model_index\":0}},\"slo_ms\":25}",
    )
    .await;
    assert_eq!(status, 201, "app registration over HTTP: {body}");
    println!("registered app over HTTP: {body}");

    // Deploy linear-svm v2 (a retrained container) and roll it out.
    let svm_v2 = Arc::new(LinearSvm::train(&dataset, &LinearSvmConfig::default(), 3));
    let v2 = ModelId::new("linear-svm", 2);
    clipper.add_model(v2.clone(), Default::default());
    let container = ModelContainer::new(ContainerConfig {
        name: "linear-svm:v2:0".into(),
        model_name: "linear-svm".into(),
        model_version: 2,
        logic: ContainerLogic::Classifier(svm_v2 as _),
        timing: TimingModel::Profile(
            LatencyProfile::deterministic(Duration::from_micros(500), Duration::from_micros(15))
                .with_jitter(0.05),
        ),
        seed: 11,
    });
    clipper
        .add_replica(&v2, LocalContainerTransport::new(container))
        .expect("v2 replica attaches");

    let (status, body) = http(
        addr,
        "POST",
        "/api/v1/models/linear-svm/rollout",
        "{\"version\":2}",
    )
    .await;
    assert_eq!(status, 200, "rollout over HTTP: {body}");
    println!("rolled linear-svm to v2: {body}");

    let (status, body) = http(addr, "GET", "/api/v1/models/linear-svm", "").await;
    assert_eq!(status, 200);
    assert!(
        body.contains("\"current_version\":2"),
        "catalog shows v2 current: {body}"
    );

    // The HTTP-registered app now serves from the rolled-out version.
    let example = &dataset.test[0];
    let input_json = serde_json::to_string(&example.x).expect("input serializes");
    let (status, body) = http(
        addr,
        "POST",
        "/api/v1/apps/digits-svm-only/predict",
        &format!("{{\"input\":{input_json}}}"),
    )
    .await;
    assert_eq!(status, 200, "predict through the v1 API: {body}");
    println!("predict via /api/v1 (true label {}): {body}", example.y);

    // And the taxonomy answers 404 — not 500 — for an unknown app.
    let (status, body) = http(addr, "POST", "/apps/ghost/predict", "{\"input\":[1.0]}").await;
    assert_eq!(status, 404, "unknown app is a 404: {body}");
    println!("unknown app correctly yields 404: {body}");

    println!("\ncontrol-plane smoke passed");
}

/// Issue one HTTP request on a fresh connection; return (status, body).
async fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    clipper::workload::http_request(addr, method, path, body)
        .await
        .expect("http request")
}
