//! `#[tokio::main]` and `#[tokio::test]` for the vendored tokio.
//!
//! Both rewrite `async fn f() { body }` into `fn f() { block_on(async
//! move { body }) }` by direct token manipulation (no `syn`). Flavor
//! arguments like `flavor = "multi_thread", worker_threads = 4` are
//! accepted and ignored: the vendored runtime is always one global
//! multi-threaded pool.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

fn rewrite(item: TokenStream, test: bool) -> TokenStream {
    let mut tokens: Vec<TokenTree> = item.into_iter().collect();

    // Strip the `async` directly preceding `fn`.
    let fn_idx = tokens
        .iter()
        .position(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "fn"));
    let Some(fn_idx) = fn_idx else {
        return "::core::compile_error!(\"expected an async fn\");"
            .parse()
            .unwrap();
    };
    if fn_idx == 0
        || !matches!(&tokens[fn_idx - 1], TokenTree::Ident(id) if id.to_string() == "async")
    {
        return "::core::compile_error!(\"#[tokio::main]/#[tokio::test] requires an async fn\");"
            .parse()
            .unwrap();
    }
    tokens.remove(fn_idx - 1);

    // The function body is the last top-level brace group.
    let body_idx = tokens
        .iter()
        .rposition(|t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace));
    let Some(body_idx) = body_idx else {
        return "::core::compile_error!(\"expected a function body\");"
            .parse()
            .unwrap();
    };
    let body = match &tokens[body_idx] {
        TokenTree::Group(g) => g.stream(),
        _ => unreachable!(),
    };
    let wrapped: TokenStream =
        format!("::tokio::runtime::Runtime::new().unwrap().block_on(async move {{ {body} }})")
            .parse()
            .unwrap();
    tokens[body_idx] = TokenTree::Group(Group::new(Delimiter::Brace, wrapped));

    let mut out = TokenStream::new();
    if test {
        out.extend(
            "#[::core::prelude::v1::test]"
                .parse::<TokenStream>()
                .unwrap(),
        );
    }
    out.extend(tokens);
    out
}

/// Run an async `main` on the vendored runtime.
#[proc_macro_attribute]
pub fn main(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, false)
}

/// Run an async test on the vendored runtime.
#[proc_macro_attribute]
pub fn test(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, true)
}
