//! Table 1 — the benchmark datasets.
//!
//! Prints the paper's corpus shapes next to the synthetic equivalents this
//! repo generates, plus a reference model's holdout accuracy on each (a
//! sanity check that the generators produce learnable data).

use clipper_ml::datasets::DatasetSpec;
use clipper_ml::eval::accuracy;
use clipper_ml::models::{LogisticRegression, LogisticRegressionConfig};
use clipper_workload::Table;

fn main() {
    println!("== Table 1: Datasets ==");
    println!("paper: MNIST 70K/28x28/10, CIFAR 60K/32x32x3/10, ImageNet 1.26M/299x299x3/1000, Speech 6300/5sec/39\n");

    let mut imagenet_scaled = DatasetSpec::imagenet_like();
    imagenet_scaled.num_classes = 200;
    imagenet_scaled.name = "imagenet-like (200c)".into();
    let specs = [
        DatasetSpec::mnist_like(),
        DatasetSpec::cifar_like(),
        DatasetSpec::imagenet_like()
            .with_train_size(1_000)
            .with_test_size(300),
        imagenet_scaled.with_train_size(5_000).with_test_size(300),
        DatasetSpec::speech_like(),
    ];

    let mut table = Table::new(&[
        "dataset",
        "paper size",
        "generated (train/test)",
        "features",
        "labels",
        "logreg holdout acc",
    ]);

    for spec in specs {
        let ds = spec.generate(42);
        let cfg = LogisticRegressionConfig {
            epochs: 2,
            ..Default::default()
        };
        let model = LogisticRegression::train(&ds, &cfg, 7);
        let acc = accuracy(&model, &ds.test);
        table.row(&[
            spec.name.clone(),
            format!("{}", spec.paper_size),
            format!("{}/{}", spec.train_size, spec.test_size),
            format!("{}", spec.num_features),
            format!("{}", spec.num_classes),
            format!("{:.1}%", acc * 100.0),
        ]);
    }
    table.print();
    println!("\n(generated sizes are scaled-down seeded mixtures; see DESIGN.md §3)");
    println!("imagenet-like at full 1000 classes has ~1 example/class at this scale and is unlearnable by design;");
    println!("the 200-class variant with 25/class — used by the Figure-7 harness — shows the learnable regime.");
}
