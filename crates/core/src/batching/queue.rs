//! The per-replica batching queue and dispatcher.
//!
//! Queries destined for a model container replica land in its queue; a
//! dispatcher task drains up to the controller's current maximum batch
//! size, optionally waits `batch_wait_timeout` for an under-full batch to
//! fill (delayed batching, §4.3.2), ships the batch over the replica's
//! transport, and distributes outputs to each query's reply sink — either
//! a direct oneshot or a prediction-cache fill that wakes every joined
//! waiter.
//!
//! Timing decomposition recorded per batch (the Figure-11 bars):
//! - `queue_us`: time queries waited in this queue before dispatch;
//! - `remote_queue_us` / `predict_us`: container-reported device queueing
//!   and model compute;
//! - `overhead_us`: everything else in the round trip (serialization, RPC,
//!   scheduling).

use super::BatchController;
use crate::cache::{CacheFillError, CacheKey, PredictionCache};
use crate::types::{Input, Output};
use clipper_metrics::{Counter, Gauge, Histogram, Meter, Registry};
use clipper_rpc::transport::BatchTransport;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::sync::{mpsc, oneshot, Semaphore};

/// Cloneable prediction failure (fans out to many waiters).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PredictError {
    /// The query waited past its deadline (straggler path).
    Timeout,
    /// The replica queue is full — shed load instead of growing latency.
    Overloaded,
    /// The model has no live replicas.
    NoReplicas,
    /// The model is not registered.
    ModelUnknown,
    /// The application is not registered.
    AppUnknown,
    /// Evaluation failed (RPC or container error).
    Failed(String),
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::Timeout => write!(f, "prediction timed out"),
            PredictError::Overloaded => write!(f, "replica queue overloaded"),
            PredictError::NoReplicas => write!(f, "no replicas available"),
            PredictError::ModelUnknown => write!(f, "unknown model"),
            PredictError::AppUnknown => write!(f, "unknown application"),
            PredictError::Failed(m) => write!(f, "prediction failed: {m}"),
        }
    }
}

impl std::error::Error for PredictError {}

/// Where a completed output goes.
pub enum ReplySink {
    /// Fill the prediction cache (waking all joined waiters).
    Cache {
        /// The shared cache.
        cache: PredictionCache,
        /// Precomputed key for this (model, input).
        key: CacheKey,
    },
    /// Complete a direct oneshot (cache-bypass path).
    Direct(oneshot::Sender<Result<Output, PredictError>>),
}

impl ReplySink {
    fn complete(self, result: Result<Output, PredictError>) {
        match self {
            ReplySink::Cache { cache, key } => {
                let fill = result.map_err(|e| CacheFillError::Failed(e.to_string()));
                cache.fill(key, fill);
            }
            ReplySink::Direct(tx) => {
                let _ = tx.send(result);
            }
        }
    }
}

/// One query waiting in a replica queue.
pub struct QueueItem {
    /// The feature vector.
    pub input: Input,
    /// Where the output goes.
    pub sink: ReplySink,
    /// When the query entered the queue.
    pub enqueued: Instant,
}

/// Queue configuration (per replica).
#[derive(Clone, Debug)]
pub struct QueueConfig {
    /// Batching strategy.
    pub strategy: super::BatchStrategy,
    /// Latency objective the controller tunes against.
    pub slo: Duration,
    /// Delayed batching: how long an under-full batch waits for more
    /// queries (0 = dispatch immediately).
    pub batch_wait_timeout: Duration,
    /// Queue depth before load shedding.
    pub queue_capacity: usize,
    /// Hard cap on batch size.
    pub max_batch_cap: usize,
    /// Outstanding batches per replica (2 keeps a GPU's next batch queued
    /// while the current one runs, as both systems do in §6).
    pub pipeline_depth: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            strategy: super::BatchStrategy::default(),
            slo: Duration::from_millis(20),
            batch_wait_timeout: Duration::ZERO,
            queue_capacity: 8_192,
            max_batch_cap: 4_096,
            pipeline_depth: 1,
        }
    }
}

/// Telemetry for one replica queue.
#[derive(Clone)]
pub struct QueueMetrics {
    /// Dispatched batch sizes.
    pub batch_size: Histogram,
    /// Full RPC round-trip per batch (µs).
    pub rpc_us: Histogram,
    /// Local queue wait per query (µs).
    pub queue_us: Histogram,
    /// Container-reported device queueing per batch (µs).
    pub remote_queue_us: Histogram,
    /// Container-reported compute per batch (µs).
    pub predict_us: Histogram,
    /// Round-trip minus container time per batch (µs).
    pub overhead_us: Histogram,
    /// Completed queries.
    pub completed: Meter,
    /// Failed queries.
    pub errors: Counter,
    /// Batches whose round trip exceeded the SLO.
    pub slo_violations: Counter,
    /// Controller's current max batch size.
    pub current_max_batch: Gauge,
    /// Queries shed because the queue was full.
    pub shed: Counter,
}

impl QueueMetrics {
    /// Register the queue's metrics under `prefix` in `registry`.
    pub fn register(registry: &Registry, prefix: &str) -> Self {
        QueueMetrics {
            batch_size: registry.histogram(&format!("{prefix}/batch_size")),
            rpc_us: registry.histogram(&format!("{prefix}/rpc_us")),
            queue_us: registry.histogram(&format!("{prefix}/queue_us")),
            remote_queue_us: registry.histogram(&format!("{prefix}/remote_queue_us")),
            predict_us: registry.histogram(&format!("{prefix}/predict_us")),
            overhead_us: registry.histogram(&format!("{prefix}/overhead_us")),
            completed: registry.meter(&format!("{prefix}/completed")),
            errors: registry.counter(&format!("{prefix}/errors")),
            slo_violations: registry.counter(&format!("{prefix}/slo_violations")),
            current_max_batch: registry.gauge(&format!("{prefix}/max_batch")),
            shed: registry.counter(&format!("{prefix}/shed")),
        }
    }
}

/// Handle to a running replica queue.
pub struct ReplicaQueue {
    id: String,
    tx: mpsc::Sender<QueueItem>,
    metrics: QueueMetrics,
    task: tokio::task::JoinHandle<()>,
}

impl ReplicaQueue {
    /// Submit a query. On a full queue the item's sink is completed with
    /// [`PredictError::Overloaded`] immediately (load shedding).
    pub fn submit(&self, item: QueueItem) {
        if let Err(mpsc::error::TrySendError::Full(item)) = self.tx.try_send(item) {
            self.metrics.shed.inc();
            item.sink.complete(Err(PredictError::Overloaded));
        }
    }

    /// Replica id (`model:replica`).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// This queue's telemetry.
    pub fn metrics(&self) -> &QueueMetrics {
        &self.metrics
    }

    /// Stop the dispatcher.
    pub fn shutdown(&self) {
        self.task.abort();
    }
}

impl Drop for ReplicaQueue {
    fn drop(&mut self) {
        self.task.abort();
    }
}

/// Spawn the dispatcher for one replica.
pub fn spawn_replica_queue(
    id: String,
    transport: Arc<dyn BatchTransport>,
    cfg: QueueConfig,
    metrics: QueueMetrics,
) -> Arc<ReplicaQueue> {
    let (tx, rx) = mpsc::channel(cfg.queue_capacity.max(1));
    let controller = Arc::new(Mutex::new(cfg.strategy.build(cfg.slo, cfg.max_batch_cap)));
    let task = tokio::spawn(dispatch_loop(
        rx,
        transport,
        controller,
        cfg.clone(),
        metrics.clone(),
    ));
    Arc::new(ReplicaQueue {
        id,
        tx,
        metrics,
        task,
    })
}

async fn dispatch_loop(
    mut rx: mpsc::Receiver<QueueItem>,
    transport: Arc<dyn BatchTransport>,
    controller: Arc<Mutex<Box<dyn BatchController>>>,
    cfg: QueueConfig,
    metrics: QueueMetrics,
) {
    let inflight = Arc::new(Semaphore::new(cfg.pipeline_depth.max(1)));
    loop {
        let permit = match inflight.clone().acquire_owned().await {
            Ok(p) => p,
            Err(_) => return,
        };
        let first = match rx.recv().await {
            Some(item) => item,
            None => return,
        };
        let max_batch = {
            let c = controller.lock();
            metrics.current_max_batch.set(c.max_batch() as i64);
            c.max_batch().min(cfg.max_batch_cap).max(1)
        };
        let mut items = vec![first];
        if cfg.batch_wait_timeout > Duration::ZERO {
            // Delayed batching: hold the batch open briefly.
            let wait_deadline = tokio::time::Instant::now() + cfg.batch_wait_timeout;
            while items.len() < max_batch {
                match tokio::time::timeout_at(wait_deadline, rx.recv()).await {
                    Ok(Some(item)) => items.push(item),
                    Ok(None) | Err(_) => break,
                }
            }
        } else {
            while items.len() < max_batch {
                match rx.try_recv() {
                    Ok(item) => items.push(item),
                    Err(_) => break,
                }
            }
        }

        let transport = transport.clone();
        let controller = controller.clone();
        let metrics = metrics.clone();
        let slo = cfg.slo;
        tokio::spawn(async move {
            let dispatch_time = Instant::now();
            for item in &items {
                metrics
                    .queue_us
                    .record(item.enqueued.elapsed().as_micros() as u64);
            }
            let inputs: Vec<Vec<f32>> = items.iter().map(|i| (*i.input).clone()).collect();
            let n = items.len();
            metrics.batch_size.record(n as u64);

            let result = transport.predict_batch(inputs).await;
            let rpc_elapsed = dispatch_time.elapsed();
            controller.lock().record(n, rpc_elapsed);
            metrics.rpc_us.record(rpc_elapsed.as_micros() as u64);
            if rpc_elapsed > slo {
                metrics.slo_violations.inc();
            }

            match result {
                Ok(reply) if reply.outputs.len() == n => {
                    metrics.remote_queue_us.record(reply.queue_us);
                    metrics.predict_us.record(reply.compute_us);
                    let overhead = (rpc_elapsed.as_micros() as u64)
                        .saturating_sub(reply.queue_us + reply.compute_us);
                    metrics.overhead_us.record(overhead);
                    metrics.completed.mark_n(n as u64);
                    for (item, output) in items.into_iter().zip(reply.outputs) {
                        item.sink.complete(Ok(output));
                    }
                }
                Ok(reply) => {
                    metrics.errors.add(n as u64);
                    let err = PredictError::Failed(format!(
                        "container returned {} outputs for {} inputs",
                        reply.outputs.len(),
                        n
                    ));
                    for item in items {
                        item.sink.complete(Err(err.clone()));
                    }
                }
                Err(e) => {
                    metrics.errors.add(n as u64);
                    let err = PredictError::Failed(e.to_string());
                    for item in items {
                        item.sink.complete(Err(err.clone()));
                    }
                }
            }
            drop(permit);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::BatchStrategy;
    use clipper_rpc::message::{PredictReply, WireOutput};
    use clipper_rpc::transport::FnTransport;

    fn echo_transport() -> Arc<dyn BatchTransport> {
        Arc::new(FnTransport::new("echo", |inputs| {
            Ok(PredictReply {
                outputs: inputs
                    .iter()
                    .map(|x| WireOutput::Class(x[0] as u32))
                    .collect(),
                queue_us: 5,
                compute_us: 10,
            })
        }))
    }

    fn test_metrics() -> QueueMetrics {
        QueueMetrics::register(&Registry::new(), "q")
    }

    fn direct_item(v: f32) -> (QueueItem, oneshot::Receiver<Result<Output, PredictError>>) {
        let (tx, rx) = oneshot::channel();
        (
            QueueItem {
                input: Arc::new(vec![v]),
                sink: ReplySink::Direct(tx),
                enqueued: Instant::now(),
            },
            rx,
        )
    }

    #[tokio::test]
    async fn queries_flow_through_and_answers_match() {
        let q = spawn_replica_queue(
            "m:0".into(),
            echo_transport(),
            QueueConfig::default(),
            test_metrics(),
        );
        let mut rxs = Vec::new();
        for v in 0..20 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rxs.push((v, rx));
        }
        for (v, rx) in rxs {
            let out = rx.await.unwrap().unwrap();
            assert_eq!(out, Output::Class(v as u32));
        }
        assert!(q.metrics().completed.count() >= 20);
    }

    #[tokio::test]
    async fn batches_form_under_burst() {
        // A slow transport forces queries to pile up; later batches should
        // be larger than 1.
        let slow: Arc<dyn BatchTransport> = Arc::new(FnTransport::new("slow", |inputs| {
            std::thread::sleep(Duration::from_millis(5));
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(0); inputs.len()],
                queue_us: 0,
                compute_us: 5_000,
            })
        }));
        let metrics = test_metrics();
        let q = spawn_replica_queue(
            "m:0".into(),
            slow,
            QueueConfig {
                strategy: BatchStrategy::Fixed(64),
                ..Default::default()
            },
            metrics.clone(),
        );
        let mut rxs = Vec::new();
        for v in 0..100 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rxs.push(rx);
        }
        for rx in rxs {
            rx.await.unwrap().unwrap();
        }
        let snap = metrics.batch_size.snapshot();
        assert!(
            snap.max() > 1,
            "burst should form multi-query batches, max was {}",
            snap.max()
        );
    }

    #[tokio::test]
    async fn overload_sheds_with_overloaded_error() {
        // A transport that never completes within the test window.
        let stuck: Arc<dyn BatchTransport> = Arc::new(FnTransport::new("stuck", |inputs| {
            std::thread::sleep(Duration::from_millis(200));
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(0); inputs.len()],
                queue_us: 0,
                compute_us: 0,
            })
        }));
        let metrics = test_metrics();
        let q = spawn_replica_queue(
            "m:0".into(),
            stuck,
            QueueConfig {
                strategy: BatchStrategy::NoBatching,
                queue_capacity: 4,
                ..Default::default()
            },
            metrics.clone(),
        );
        let mut saw_overload = false;
        let mut rxs = Vec::new();
        for v in 0..64 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rxs.push(rx);
        }
        for rx in rxs {
            if let Ok(Err(PredictError::Overloaded)) = rx.await {
                saw_overload = true;
            }
        }
        assert!(saw_overload, "expected load shedding");
        assert!(metrics.shed.get() > 0);
    }

    #[tokio::test]
    async fn transport_failure_fails_the_batch() {
        let bad: Arc<dyn BatchTransport> = Arc::new(FnTransport::new("bad", |_| {
            Err(clipper_rpc::RpcError::Remote("dead".into()))
        }));
        let q = spawn_replica_queue("m:0".into(), bad, QueueConfig::default(), test_metrics());
        let (item, rx) = direct_item(1.0);
        q.submit(item);
        let err = rx.await.unwrap().unwrap_err();
        assert!(matches!(err, PredictError::Failed(_)));
    }

    #[tokio::test]
    async fn output_count_mismatch_is_an_error() {
        let short: Arc<dyn BatchTransport> = Arc::new(FnTransport::new("short", |_| {
            Ok(PredictReply {
                outputs: vec![], // wrong count
                queue_us: 0,
                compute_us: 0,
            })
        }));
        let q = spawn_replica_queue("m:0".into(), short, QueueConfig::default(), test_metrics());
        let (item, rx) = direct_item(1.0);
        q.submit(item);
        let err = rx.await.unwrap().unwrap_err();
        assert!(matches!(err, PredictError::Failed(ref m) if m.contains("outputs")));
    }

    #[tokio::test]
    async fn delayed_batching_holds_for_stragglers() {
        // With a 20ms wait timeout and queries arriving 2ms apart, the
        // first batch should scoop up several queries.
        let metrics = test_metrics();
        let q = spawn_replica_queue(
            "m:0".into(),
            echo_transport(),
            QueueConfig {
                strategy: BatchStrategy::Fixed(64),
                batch_wait_timeout: Duration::from_millis(20),
                ..Default::default()
            },
            metrics.clone(),
        );
        let mut rxs = Vec::new();
        for v in 0..5 {
            let (item, rx) = direct_item(v as f32);
            q.submit(item);
            rxs.push(rx);
            tokio::time::sleep(Duration::from_millis(2)).await;
        }
        for rx in rxs {
            rx.await.unwrap().unwrap();
        }
        let snap = metrics.batch_size.snapshot();
        assert!(
            snap.max() >= 3,
            "delayed batching should group arrivals, max batch {}",
            snap.max()
        );
    }

    #[tokio::test]
    async fn cache_sink_fills_cache_and_wakes_waiters() {
        let cache = PredictionCache::new(16);
        let model = crate::types::ModelId::new("m", 1);
        let input: Input = Arc::new(vec![3.0]);
        let key = CacheKey::new(&model, &input);
        let rx = match cache.lookup_or_pending(key) {
            crate::cache::Lookup::MustCompute(rx) => rx,
            _ => panic!(),
        };
        let q = spawn_replica_queue(
            "m:0".into(),
            echo_transport(),
            QueueConfig::default(),
            test_metrics(),
        );
        q.submit(QueueItem {
            input: input.clone(),
            sink: ReplySink::Cache {
                cache: cache.clone(),
                key,
            },
            enqueued: Instant::now(),
        });
        let out = rx.await.unwrap().unwrap();
        assert_eq!(out, Output::Class(3));
        assert_eq!(cache.fetch(key), Some(Output::Class(3)));
    }
}
