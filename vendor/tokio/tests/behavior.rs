//! Behavioral tests for the vendored tokio substitute, including
//! regressions for the cancellation-safety and resource-accounting bugs
//! found in review: waiter queues must survive cancelled waiters, mpsc
//! `close()` must let the receiver drain, parked tasks must stay alive
//! without their `JoinHandle`, and the blocking pool must absorb bursts.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};

#[tokio::test]
async fn sleep_and_timeout() {
    let t0 = std::time::Instant::now();
    tokio::time::sleep(Duration::from_millis(20)).await;
    assert!(t0.elapsed() >= Duration::from_millis(19));

    let fast = tokio::time::timeout(Duration::from_millis(200), async { 7 }).await;
    assert_eq!(fast, Ok(7));
    let slow = tokio::time::timeout(
        Duration::from_millis(20),
        tokio::time::sleep(Duration::from_secs(10)),
    )
    .await;
    assert!(slow.is_err());
}

/// A cancelled waiter must not swallow the wake a released permit
/// delivers (regression: stale waker consumed the single pop-front wake).
#[tokio::test]
async fn semaphore_survives_cancelled_waiter() {
    let sem = Arc::new(tokio::sync::Semaphore::new(1));
    let held = sem.clone().acquire_owned().await.unwrap();

    // Waiter A parks, then is cancelled by dropping its task.
    let sem_a = sem.clone();
    let a = tokio::spawn(async move {
        let _p = sem_a.acquire_owned().await.unwrap();
        tokio::time::sleep(Duration::from_secs(60)).await;
    });
    tokio::time::sleep(Duration::from_millis(20)).await; // let A park
    a.abort();
    tokio::time::sleep(Duration::from_millis(20)).await; // let abort land

    // Waiter B parks after A.
    let sem_b = sem.clone();
    let b = tokio::spawn(async move { sem_b.acquire_owned().await.is_ok() });
    tokio::time::sleep(Duration::from_millis(20)).await; // let B park

    drop(held); // release the only permit
    let got = tokio::time::timeout(Duration::from_millis(500), b)
        .await
        .expect("waiter B must be woken despite A's stale waker")
        .unwrap();
    assert!(got);
}

/// `close()` fails new sends but lets the receiver drain the queue.
#[tokio::test]
async fn mpsc_close_drains_then_ends() {
    let (tx, mut rx) = tokio::sync::mpsc::channel::<u32>(8);
    tx.send(1).await.unwrap();
    tx.send(2).await.unwrap();
    rx.close();
    assert!(tx.try_send(3).is_err(), "sends fail after close");
    assert_eq!(rx.recv().await, Some(1));
    assert_eq!(rx.recv().await, Some(2));
    assert_eq!(rx.recv().await, None);
}

/// A spawned task parked with no registered waker (holding a resource)
/// must stay alive even after its JoinHandle is dropped (regression: the
/// executor dropped unowned parked tasks, closing their sockets).
#[tokio::test]
async fn detached_parked_task_stays_alive() {
    let listener = tokio::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    tokio::spawn(async move {
        let (mut conn, _) = listener.accept().await.unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).await.unwrap();
        conn.write_all(&buf).await.unwrap();
        std::future::pending::<()>().await; // park forever, holding conn
    });
    let mut stream = tokio::net::TcpStream::connect(addr).await.unwrap();
    stream.write_all(b"ping").await.unwrap();
    let mut back = [0u8; 4];
    stream.read_exact(&mut back).await.unwrap();
    assert_eq!(&back, b"ping");
    // The peer task is parked with its handle dropped; the connection
    // must still be open (a read sees no EOF within the timeout).
    let probe = tokio::time::timeout(Duration::from_millis(100), stream.read(&mut back)).await;
    assert!(probe.is_err(), "connection closed early: {probe:?}");
}

/// Burst of blocking jobs completes through the bounded reusable pool.
#[tokio::test]
async fn spawn_blocking_burst_completes() {
    let done = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..100 {
        let done = done.clone();
        handles.push(tokio::task::spawn_blocking(move || {
            std::thread::sleep(Duration::from_millis(1));
            done.fetch_add(1, Ordering::SeqCst);
        }));
    }
    for h in handles {
        h.await.unwrap();
    }
    assert_eq!(done.load(Ordering::SeqCst), 100);
}

/// Duplex pipes deliver bytes both ways and EOF on drop.
#[tokio::test]
async fn duplex_roundtrip_and_eof() {
    let (mut a, mut b) = tokio::io::duplex(64);
    a.write_all(b"hello").await.unwrap();
    let mut buf = [0u8; 5];
    b.read_exact(&mut buf).await.unwrap();
    assert_eq!(&buf, b"hello");
    drop(a);
    assert_eq!(b.read(&mut buf).await.unwrap(), 0, "EOF after peer drop");
}

/// An async mutex guard held across an await still excludes, and a
/// cancelled lock() waiter does not strand later waiters.
#[tokio::test]
async fn async_mutex_excludes_and_survives_cancellation() {
    let m = Arc::new(tokio::sync::Mutex::new(0u32));
    let guard = m.lock().await;

    let m_a = m.clone();
    let a = tokio::spawn(async move {
        let mut g = m_a.lock().await;
        *g += 1;
    });
    tokio::time::sleep(Duration::from_millis(10)).await;
    a.abort();
    tokio::time::sleep(Duration::from_millis(10)).await;

    let m_b = m.clone();
    let b = tokio::spawn(async move {
        let mut g = m_b.lock().await;
        *g += 10;
        *g
    });
    tokio::time::sleep(Duration::from_millis(10)).await;
    drop(guard);
    let v = tokio::time::timeout(Duration::from_millis(500), b)
        .await
        .expect("waiter must acquire after cancelled peer")
        .unwrap();
    assert!(v == 10 || v == 11, "unexpected value {v}");
}
