//! TCP server exposing a [`StateStore`] over the RESP protocol.
//!
//! Supported commands (case-insensitive):
//! `PING`, `GET k`, `SET k v`, `SETNX k v`, `DEL k`, `EXPIRE k ms`,
//! `CAS k version v`, `GETV k` (returns `[value, version]`), `DBSIZE`.

use crate::resp::RespValue;
use crate::store::{CasOutcome, StateStore};
use bytes::BytesMut;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

/// A running statestore listener.
pub struct StateStoreServer {
    local_addr: SocketAddr,
    store: Arc<StateStore>,
    accept_task: tokio::task::JoinHandle<()>,
    /// Live per-connection tasks, so shutdown (and crash injection via
    /// [`sever_connections`](Self::sever_connections)) actually drops
    /// established connections instead of leaking them past the server.
    conns: Arc<parking_lot::Mutex<Vec<tokio::task::JoinHandle<()>>>>,
}

impl StateStoreServer {
    /// Bind to `addr` and serve `store` in the background.
    pub async fn bind(addr: &str, store: Arc<StateStore>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let s = store.clone();
        let conns: Arc<parking_lot::Mutex<Vec<tokio::task::JoinHandle<()>>>> =
            Arc::new(parking_lot::Mutex::new(Vec::new()));
        let conns_for_accept = conns.clone();
        let accept_task = tokio::spawn(async move {
            while let Ok((conn, _)) = listener.accept().await {
                let store = s.clone();
                let task = tokio::spawn(async move {
                    let _ = serve_conn(conn, store).await;
                });
                let mut live = conns_for_accept.lock();
                live.retain(|t| !t.is_finished());
                live.push(task);
            }
        });
        Ok(StateStoreServer {
            local_addr,
            store,
            accept_task,
            conns,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Direct handle to the underlying store (in-process access).
    pub fn store(&self) -> Arc<StateStore> {
        self.store.clone()
    }

    /// Drop every established connection (the listener keeps accepting).
    /// Crash injection for reconnect tests: clients observe exactly what
    /// a server restart looks like — their connection dies mid-stream and
    /// a fresh dial succeeds.
    pub fn sever_connections(&self) {
        for task in self.conns.lock().drain(..) {
            task.abort();
        }
    }
}

impl Drop for StateStoreServer {
    fn drop(&mut self) {
        self.accept_task.abort();
        self.sever_connections();
    }
}

async fn serve_conn(mut conn: TcpStream, store: Arc<StateStore>) -> std::io::Result<()> {
    conn.set_nodelay(true)?;
    let mut inbuf = BytesMut::with_capacity(4096);
    let mut outbuf = BytesMut::with_capacity(4096);
    loop {
        // Drain every complete pipelined request already buffered.
        loop {
            match RespValue::parse(&mut inbuf) {
                Ok(Some(req)) => {
                    let reply = execute(&store, req);
                    reply.encode(&mut outbuf);
                }
                Ok(None) => break,
                Err(e) => {
                    RespValue::Error(format!("ERR protocol: {e}")).encode(&mut outbuf);
                    conn.write_all(&outbuf).await?;
                    return Ok(()); // drop connection on protocol error
                }
            }
        }
        if !outbuf.is_empty() {
            conn.write_all(&outbuf).await?;
            outbuf.clear();
        }
        let n = conn.read_buf(&mut inbuf).await?;
        if n == 0 {
            return Ok(());
        }
    }
}

fn execute(store: &StateStore, req: RespValue) -> RespValue {
    let parts = match req {
        RespValue::Array(items) => items,
        _ => return RespValue::Error("ERR expected array request".into()),
    };
    let mut args: Vec<Vec<u8>> = Vec::with_capacity(parts.len());
    for p in parts {
        match p {
            RespValue::Bulk(b) => args.push(b),
            RespValue::Simple(s) => args.push(s.into_bytes()),
            _ => return RespValue::Error("ERR arguments must be bulk strings".into()),
        }
    }
    if args.is_empty() {
        return RespValue::Error("ERR empty command".into());
    }
    let cmd = String::from_utf8_lossy(&args[0]).to_uppercase();
    let key = |i: usize| String::from_utf8_lossy(&args[i]).into_owned();

    match (cmd.as_str(), args.len()) {
        ("PING", 1) => RespValue::Simple("PONG".into()),
        ("GET", 2) => match store.get(&key(1)) {
            Some(v) => RespValue::Bulk(v),
            None => RespValue::Null,
        },
        ("GETV", 2) => match store.get_versioned(&key(1)) {
            Some((v, ver)) => {
                RespValue::Array(vec![RespValue::Bulk(v), RespValue::Integer(ver as i64)])
            }
            None => RespValue::Null,
        },
        ("SET", 3) => {
            let ver = store.set(&key(1), args[2].clone());
            RespValue::Integer(ver as i64)
        }
        ("SETNX", 3) => {
            let stored = store.set_nx(&key(1), args[2].clone());
            RespValue::Integer(stored as i64)
        }
        ("DEL", 2) => RespValue::Integer(store.del(&key(1)) as i64),
        ("EXPIRE", 3) => {
            let ms: u64 = match String::from_utf8_lossy(&args[2]).parse() {
                Ok(v) => v,
                Err(_) => return RespValue::Error("ERR EXPIRE wants integer ms".into()),
            };
            RespValue::Integer(store.expire(&key(1), Duration::from_millis(ms)) as i64)
        }
        ("CAS", 4) => {
            let ver: u64 = match String::from_utf8_lossy(&args[2]).parse() {
                Ok(v) => v,
                Err(_) => return RespValue::Error("ERR CAS wants integer version".into()),
            };
            match store.cas(&key(1), ver, args[3].clone()) {
                CasOutcome::Stored(v) => RespValue::Integer(v as i64),
                CasOutcome::Conflict(v) => RespValue::Error(format!("CONFLICT {v}")),
                CasOutcome::Missing => RespValue::Error("MISSING".into()),
            }
        }
        ("DBSIZE", 1) => RespValue::Integer(store.len() as i64),
        ("KEYS", 2) => RespValue::Array(
            store
                .keys_with_prefix(&key(1))
                .into_iter()
                .map(|k| RespValue::Bulk(k.into_bytes()))
                .collect(),
        ),
        _ => RespValue::Error(format!("ERR unknown command {cmd}/{}", args.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_handles_all_commands() {
        let store = StateStore::new();
        let cmd = |parts: &[&[u8]]| {
            RespValue::Array(parts.iter().map(|p| RespValue::Bulk(p.to_vec())).collect())
        };
        assert_eq!(
            execute(&store, cmd(&[b"PING"])),
            RespValue::Simple("PONG".into())
        );
        assert_eq!(execute(&store, cmd(&[b"GET", b"k"])), RespValue::Null);
        assert_eq!(
            execute(&store, cmd(&[b"SET", b"k", b"v"])),
            RespValue::Integer(1)
        );
        assert_eq!(
            execute(&store, cmd(&[b"GET", b"k"])),
            RespValue::Bulk(b"v".to_vec())
        );
        assert_eq!(
            execute(&store, cmd(&[b"SETNX", b"k", b"w"])),
            RespValue::Integer(0)
        );
        assert_eq!(
            execute(&store, cmd(&[b"CAS", b"k", b"1", b"w"])),
            RespValue::Integer(2)
        );
        assert!(matches!(
            execute(&store, cmd(&[b"CAS", b"k", b"1", b"x"])),
            RespValue::Error(_)
        ));
        assert_eq!(execute(&store, cmd(&[b"DBSIZE"])), RespValue::Integer(1));
        assert_eq!(
            execute(&store, cmd(&[b"KEYS", b"k"])),
            RespValue::Array(vec![RespValue::Bulk(b"k".to_vec())]),
            "KEYS returns live keys under the prefix"
        );
        assert_eq!(
            execute(&store, cmd(&[b"KEYS", b"zzz"])),
            RespValue::Array(vec![])
        );
        assert_eq!(execute(&store, cmd(&[b"DEL", b"k"])), RespValue::Integer(1));
        assert!(matches!(
            execute(&store, cmd(&[b"BOGUS"])),
            RespValue::Error(_)
        ));
    }

    #[test]
    fn non_array_request_rejected() {
        let store = StateStore::new();
        assert!(matches!(
            execute(&store, RespValue::Integer(5)),
            RespValue::Error(_)
        ));
    }
}
