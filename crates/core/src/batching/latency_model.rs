//! Online per-replica latency model (§4.4.1).
//!
//! Clipper sizes batches from an offline-profiled latency curve; we fit
//! the same linear curve `latency(b) ≈ α + β·b` **online and
//! per-replica**, from the `(batch_size, service_time)` observations the
//! queue worker already produces for every dispatched batch. The fit is
//! a streaming least-squares over exponentially-forgotten moments, so a
//! replica that slows down (thermal throttling, a noisy neighbor, a
//! bigger model version) re-learns its curve within a few dozen batches.
//!
//! Two consumers key off the model:
//!
//! - [`AutotuneController`](super::AutotuneController) inverts it against
//!   the SLO (`b_max` = largest `b` with `α + β·b ≤ SLO − headroom`),
//!   continuously re-deriving the per-replica batch ceiling;
//! - SLO-aware admission (`ModelAbstractionLayer`) adds `α + β` to the
//!   replica's backlog estimate to decide whether a new query can still
//!   meet its deadline anywhere — and sheds with an honest 429 up front
//!   when it cannot (Clockwork's "predictably fail fast").
//!
//! The model can be warm-started from a [`LatencyPrior`] — typically the
//! global curve produced by the `calibrate` bin — so a freshly attached
//! or rehydrated replica starts from a sane ceiling instead of probing
//! from 1.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Minimum observations before a fitted slope may replace the prior.
const MIN_FIT_SAMPLES: u64 = 8;
/// Minimum batch-size variance required to trust a fitted slope: with no
/// spread in `b` the slope is unidentifiable and we keep the prior (or
/// stay unestablished).
const MIN_BATCH_VARIANCE: f64 = 0.25;
/// Exponential forgetting factor per observation (≈ the last ~25 batches
/// dominate the fit).
const GAMMA: f64 = 0.08;

/// A warm-start prior for the latency curve: `latency(b) ≈ α + β·b`,
/// both in microseconds. Produced offline by the `calibrate` bin or
/// restored from a persisted per-replica `BatchKnobs` record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyPrior {
    /// Fixed per-batch overhead (intercept), microseconds.
    pub alpha_us: f64,
    /// Marginal cost per batched item (slope), microseconds.
    pub beta_us: f64,
}

/// Snapshot of one replica's learned tuning: its latency-curve
/// coefficients, the batch ceiling derived from them, and how many
/// observations back the fit. Harvested by the persistence layer and
/// restored as a warm-start prior when the replica re-attaches.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicaTune {
    /// The replica's queue id (`model:version:index`).
    pub queue_id: String,
    /// The learned curve, reusable as a [`LatencyPrior`].
    pub prior: LatencyPrior,
    /// The controller's current max-batch ceiling.
    pub b_max: usize,
    /// Observations folded into the fit.
    pub samples: u64,
}

/// Exponentially-forgotten first/second moments of `(b, latency)`.
#[derive(Clone, Copy, Debug, Default)]
struct Fit {
    /// Total EWMA weight (bias correction: divide moments by this).
    w: f64,
    m_b: f64,
    m_l: f64,
    m_bb: f64,
    m_bl: f64,
    samples: u64,
}

impl Fit {
    fn observe(&mut self, b: f64, l: f64) {
        let g = GAMMA;
        self.w = (1.0 - g) * self.w + g;
        self.m_b = (1.0 - g) * self.m_b + g * b;
        self.m_l = (1.0 - g) * self.m_l + g * l;
        self.m_bb = (1.0 - g) * self.m_bb + g * b * b;
        self.m_bl = (1.0 - g) * self.m_bl + g * b * l;
        self.samples += 1;
    }

    fn mean_b(&self) -> f64 {
        self.m_b / self.w
    }

    fn mean_l(&self) -> f64 {
        self.m_l / self.w
    }

    fn variance_b(&self) -> f64 {
        let mb = self.mean_b();
        (self.m_bb / self.w - mb * mb).max(0.0)
    }

    /// Fitted slope, if the batch-size spread makes it identifiable.
    fn slope(&self) -> Option<f64> {
        let var = self.variance_b();
        if self.samples < MIN_FIT_SAMPLES || var < MIN_BATCH_VARIANCE {
            return None;
        }
        let cov = self.m_bl / self.w - self.mean_b() * self.mean_l();
        Some((cov / var).max(0.0))
    }
}

/// Online `α + β·b` latency model for one replica.
///
/// `observe` is called once per dispatched batch (cheap: one short
/// mutex-guarded moment update). The published `α`/`β` live in atomics
/// so the admission hot path reads them lock-free.
#[derive(Debug)]
pub struct LatencyModel {
    fit: Mutex<Fit>,
    prior: Option<LatencyPrior>,
    /// Published intercept, nanoseconds. `u64::MAX` = not established.
    alpha_ns: AtomicU64,
    /// Published slope, nanoseconds per item.
    beta_ns: AtomicU64,
    samples: AtomicU64,
}

const UNSET: u64 = u64::MAX;

impl Default for LatencyModel {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyModel {
    /// A cold model: unestablished until enough observations arrive.
    pub fn new() -> Self {
        LatencyModel {
            fit: Mutex::new(Fit::default()),
            prior: None,
            alpha_ns: AtomicU64::new(UNSET),
            beta_ns: AtomicU64::new(0),
            samples: AtomicU64::new(0),
        }
    }

    /// Warm-start from a calibration prior: established immediately, and
    /// the prior slope holds until live observations have enough
    /// batch-size spread to re-fit it.
    pub fn with_prior(prior: LatencyPrior) -> Self {
        let m = Self::new();
        let alpha = (prior.alpha_us.max(0.0) * 1_000.0) as u64;
        let beta = (prior.beta_us.max(0.0) * 1_000.0) as u64;
        m.alpha_ns.store(alpha, Ordering::Relaxed);
        m.beta_ns.store(beta, Ordering::Relaxed);
        LatencyModel {
            prior: Some(prior),
            ..m
        }
    }

    /// Record one completed batch: `batch` items served in `latency`.
    pub fn observe(&self, batch: usize, latency: Duration) {
        let b = batch.max(1) as f64;
        let l = latency.as_secs_f64() * 1e9;
        let mut fit = self.fit.lock();
        fit.observe(b, l);
        // Publish: fitted slope when identifiable, else the prior's; the
        // intercept always re-calibrates along the current slope so pure
        // level shifts (replica slowdown at a constant batch size) are
        // still tracked.
        let beta = match fit.slope() {
            Some(s) => Some(s),
            None => self.prior.map(|p| p.beta_us.max(0.0) * 1_000.0),
        };
        if let Some(beta) = beta {
            let alpha = (fit.mean_l() - beta * fit.mean_b()).max(0.0);
            self.alpha_ns.store(alpha as u64, Ordering::Relaxed);
            self.beta_ns.store(beta as u64, Ordering::Relaxed);
        }
        self.samples.store(fit.samples, Ordering::Relaxed);
    }

    /// Whether the model has a usable curve (prior or identifiable fit).
    pub fn is_established(&self) -> bool {
        self.alpha_ns.load(Ordering::Relaxed) != UNSET
    }

    /// Observations folded into the fit so far.
    pub fn sample_count(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Current intercept in microseconds (0 if unestablished).
    pub fn alpha_us(&self) -> f64 {
        let a = self.alpha_ns.load(Ordering::Relaxed);
        if a == UNSET {
            0.0
        } else {
            a as f64 / 1_000.0
        }
    }

    /// Current slope in microseconds per item.
    pub fn beta_us(&self) -> f64 {
        self.beta_ns.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Predicted service time for a batch of `b`, if established.
    pub fn predict_ns(&self, b: usize) -> Option<u64> {
        let alpha = self.alpha_ns.load(Ordering::Relaxed);
        if alpha == UNSET {
            return None;
        }
        let beta = self.beta_ns.load(Ordering::Relaxed);
        Some(alpha.saturating_add(beta.saturating_mul(b as u64)))
    }

    /// Invert the curve against a latency budget: the largest `b` with
    /// `α + β·b ≤ budget`. `None` when the model is unestablished or the
    /// curve is flat (β = 0 — nothing to invert; the caller's cap rules).
    pub fn max_batch_for(&self, budget: Duration) -> Option<usize> {
        let alpha = self.alpha_ns.load(Ordering::Relaxed);
        if alpha == UNSET {
            return None;
        }
        let beta = self.beta_ns.load(Ordering::Relaxed);
        if beta == 0 {
            return None;
        }
        let budget = budget.as_nanos().min(u64::MAX as u128) as u64;
        Some((budget.saturating_sub(alpha) / beta).max(1) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn cold_model_is_unestablished() {
        let m = LatencyModel::new();
        assert!(!m.is_established());
        assert_eq!(m.predict_ns(4), None);
        assert_eq!(m.max_batch_for(Duration::from_millis(20)), None);
    }

    #[test]
    fn fit_recovers_a_linear_curve() {
        // latency = 1000µs + 20µs·b, batches sweeping 1..=32.
        let m = LatencyModel::new();
        for round in 0..20 {
            for b in 1..=32usize {
                let _ = round;
                m.observe(b, us(1_000 + 20 * b as u64));
            }
        }
        assert!(m.is_established());
        assert!(
            (m.beta_us() - 20.0).abs() < 4.0,
            "beta {} expected ≈20",
            m.beta_us()
        );
        assert!(
            (m.alpha_us() - 1_000.0).abs() < 150.0,
            "alpha {} expected ≈1000",
            m.alpha_us()
        );
        // b_max for a 20ms SLO ≈ (20000 − 1000)/20 = 950.
        let b_max = m.max_batch_for(Duration::from_millis(20)).unwrap();
        assert!((800..=1100).contains(&b_max), "b_max {b_max}");
    }

    #[test]
    fn constant_batch_size_keeps_slope_unidentifiable() {
        let m = LatencyModel::new();
        for _ in 0..100 {
            m.observe(4, us(5_000));
        }
        // No spread in b and no prior: the slope is unknowable, so the
        // model must not publish a curve it cannot have learned.
        assert!(!m.is_established());
    }

    #[test]
    fn prior_establishes_immediately_and_intercept_recalibrates() {
        let prior = LatencyPrior {
            alpha_us: 500.0,
            beta_us: 100.0,
        };
        let m = LatencyModel::with_prior(prior);
        assert!(m.is_established());
        assert_eq!(m.predict_ns(1), Some(600_000));

        // The replica is actually 4× slower than the prior at b=4, with
        // no batch-size spread: the slope stays at the prior's 100µs but
        // the intercept shifts up to absorb the level change.
        for _ in 0..60 {
            m.observe(4, us(3_600));
        }
        let predicted = m.predict_ns(4).unwrap();
        assert!(
            (3_000_000..=4_200_000).contains(&predicted),
            "predicted {predicted}ns for b=4, observed 3600µs"
        );
    }

    #[test]
    fn fitted_slope_overrides_the_prior_once_identifiable() {
        let prior = LatencyPrior {
            alpha_us: 0.0,
            beta_us: 1_000.0, // pessimistic prior: 1ms/item
        };
        let m = LatencyModel::with_prior(prior);
        // Real curve: 100µs + 50µs·b.
        for round in 0..10 {
            for b in 1..=16usize {
                let _ = round;
                m.observe(b, us(100 + 50 * b as u64));
            }
        }
        assert!(
            (m.beta_us() - 50.0).abs() < 15.0,
            "beta {} should have re-fit to ≈50",
            m.beta_us()
        );
    }

    #[test]
    fn tracks_a_slowdown() {
        let m = LatencyModel::new();
        for round in 0..10 {
            for b in 1..=8usize {
                let _ = round;
                m.observe(b, us(100 + 10 * b as u64));
            }
        }
        let fast = m.predict_ns(8).unwrap();
        // The replica degrades 10×; the forgetting factor re-learns.
        for round in 0..20 {
            for b in 1..=8usize {
                let _ = round;
                m.observe(b, us(1_000 + 100 * b as u64));
            }
        }
        let slow = m.predict_ns(8).unwrap();
        assert!(slow > fast * 4, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn max_batch_never_returns_zero() {
        let prior = LatencyPrior {
            alpha_us: 50_000.0, // intercept alone blows a 20ms budget
            beta_us: 1_000.0,
        };
        let m = LatencyModel::with_prior(prior);
        assert_eq!(m.max_batch_for(Duration::from_millis(20)), Some(1));
    }
}
