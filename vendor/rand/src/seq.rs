//! Slice sampling helpers (`rand::seq`).

use crate::{Rng, RngCore};

/// In-place randomization of slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Random element selection from index-addressable collections.
pub trait IndexedRandom {
    /// Element type.
    type Output;

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}
