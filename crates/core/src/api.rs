//! The versioned control-plane API: wire types, persisted records, and
//! the typed HTTP error taxonomy.
//!
//! Everything the `/api/v1/` REST surface speaks lives here, decoupled
//! from the in-memory domain types in [`crate::types`]:
//!
//! - [`ApiError`] — every failure the control plane or data plane can
//!   report, each with a canonical HTTP status and a stable machine code;
//! - [`ErrorBody`] — the serde-serialized error envelope. **All** error
//!   responses are built through it, never by string formatting, so a
//!   message containing quotes or backslashes can't produce invalid JSON;
//! - [`AppSpec`] / [`AppPatch`] / [`AppView`] — app registration,
//!   live-update delta, and read-back shapes;
//! - [`ModelView`] / [`RolloutRequest`] / [`RolloutOutcome`] — model
//!   catalog and version-rollout shapes;
//! - [`AppRecord`] / [`ModelRecord`] — the statestore-persisted forms
//!   (mirroring the paper's Redis configuration state) that let a
//!   frontend rehydrate its registry after a restart.

use crate::batching::queue::{PredictError, QueueConfig};
use crate::batching::{BatchStrategy, LatencyPrior, ReplicaTune};
use crate::json_emit::NonFiniteFloat;
use crate::types::{AppConfig, AppUpdate, ModelId, Output, PolicyKind};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Statestore key prefix for persisted app registrations.
pub const APP_KEY_PREFIX: &str = "config/app/";
/// Statestore key prefix for persisted model registrations.
pub const MODEL_KEY_PREFIX: &str = "config/model/";
/// Statestore key prefix for persisted fleet replica registrations.
pub const REPLICA_KEY_PREFIX: &str = "config/replica/";

/// Statestore key for an app's persisted registration.
pub fn app_key(name: &str) -> String {
    format!("{APP_KEY_PREFIX}{name}")
}

/// Statestore key for a model's persisted registration.
pub fn model_key(name: &str) -> String {
    format!("{MODEL_KEY_PREFIX}{name}")
}

/// Statestore key for a fleet replica's persisted registration.
pub fn replica_key(name: &str) -> String {
    format!("{REPLICA_KEY_PREFIX}{name}")
}

// ---------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------

/// Every failure the HTTP surface can report, with a canonical status
/// mapping. Data-plane failures arrive via [`PredictError`] (which carries
/// its own taxonomy); the remaining variants are control-plane outcomes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApiError {
    /// A data-plane (predict/feedback) failure.
    Predict(PredictError),
    /// Registration refused: the app already exists (use PATCH). HTTP 409.
    AppExists(String),
    /// The named app is not registered. HTTP 404.
    AppUnknown(String),
    /// The named model is not registered. HTTP 404.
    ModelUnknown(String),
    /// The model exists but the requested version was never registered.
    /// HTTP 404.
    VersionUnknown {
        /// Model name.
        model: String,
        /// The unregistered version.
        version: u32,
    },
    /// Registration refused: this model version already exists. HTTP 409.
    VersionExists {
        /// Model name.
        model: String,
        /// The already-registered version.
        version: u32,
    },
    /// Rollout refused: the requested version is already current. HTTP 409.
    AlreadyCurrent {
        /// Model name.
        model: String,
        /// The already-current version.
        version: u32,
    },
    /// Rollout refused: the target version has no live replicas, so
    /// repointing apps at it would immediately fail predicts. HTTP 409.
    NoReplicasForVersion {
        /// Model name.
        model: String,
        /// The replica-less version.
        version: u32,
    },
    /// Rollback refused: no rollout has happened, nothing to restore.
    /// HTTP 409.
    NoRolloutHistory(String),
    /// The named fleet replica is not registered. HTTP 404.
    ReplicaUnknown(String),
    /// The named fleet replica was expired by the health monitor; it must
    /// re-register, not heartbeat. HTTP 410.
    ReplicaGone(String),
    /// The request body or parameters were malformed. HTTP 400.
    BadRequest(String),
    /// No route matches the request. HTTP 404.
    NotFound,
    /// An internal failure (serialization, statestore). HTTP 500.
    Internal(String),
}

impl From<PredictError> for ApiError {
    fn from(e: PredictError) -> Self {
        ApiError::Predict(e)
    }
}

impl ApiError {
    /// Canonical HTTP status.
    pub fn http_status(&self) -> u16 {
        match self {
            ApiError::Predict(e) => e.http_status(),
            ApiError::AppExists(_)
            | ApiError::VersionExists { .. }
            | ApiError::AlreadyCurrent { .. }
            | ApiError::NoReplicasForVersion { .. }
            | ApiError::NoRolloutHistory(_) => 409,
            ApiError::AppUnknown(_)
            | ApiError::ModelUnknown(_)
            | ApiError::VersionUnknown { .. }
            | ApiError::ReplicaUnknown(_)
            | ApiError::NotFound => 404,
            ApiError::ReplicaGone(_) => 410,
            ApiError::BadRequest(_) => 400,
            ApiError::Internal(_) => 500,
        }
    }

    /// Stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            ApiError::Predict(e) => e.code(),
            ApiError::AppExists(_) => "app_exists",
            ApiError::AppUnknown(_) => "app_unknown",
            ApiError::ModelUnknown(_) => "model_unknown",
            ApiError::VersionUnknown { .. } => "version_unknown",
            ApiError::VersionExists { .. } => "version_exists",
            ApiError::AlreadyCurrent { .. } => "already_current",
            ApiError::NoReplicasForVersion { .. } => "no_replicas_for_version",
            ApiError::NoRolloutHistory(_) => "no_rollout_history",
            ApiError::ReplicaUnknown(_) => "replica_unknown",
            ApiError::ReplicaGone(_) => "replica_gone",
            ApiError::BadRequest(_) => "bad_request",
            ApiError::NotFound => "not_found",
            ApiError::Internal(_) => "internal",
        }
    }

    /// Whether retrying the identical request later may succeed.
    pub fn is_retryable(&self) -> bool {
        match self {
            ApiError::Predict(e) => e.is_retryable(),
            _ => false,
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Predict(e) => write!(f, "{e}"),
            ApiError::AppExists(name) => {
                write!(f, "application \"{name}\" already exists (PATCH to update)")
            }
            ApiError::AppUnknown(name) => write!(f, "unknown application \"{name}\""),
            ApiError::ModelUnknown(name) => write!(f, "unknown model \"{name}\""),
            ApiError::VersionUnknown { model, version } => {
                write!(f, "model \"{model}\" has no registered version {version}")
            }
            ApiError::VersionExists { model, version } => {
                write!(
                    f,
                    "model \"{model}\" version {version} is already registered"
                )
            }
            ApiError::AlreadyCurrent { model, version } => {
                write!(f, "model \"{model}\" version {version} is already current")
            }
            ApiError::NoReplicasForVersion { model, version } => {
                write!(
                    f,
                    "model \"{model}\" version {version} has no live replicas"
                )
            }
            ApiError::NoRolloutHistory(model) => {
                write!(f, "model \"{model}\" has no rollout to roll back")
            }
            ApiError::ReplicaUnknown(name) => write!(f, "unknown replica \"{name}\""),
            ApiError::ReplicaGone(name) => {
                write!(
                    f,
                    "replica \"{name}\" was expired by the health monitor; re-register"
                )
            }
            ApiError::BadRequest(m) => write!(f, "bad request: {m}"),
            ApiError::NotFound => write!(f, "not found"),
            ApiError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ApiError {}

/// The error payload inside [`ErrorBody`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ErrorInfo {
    /// Stable machine-readable code (e.g. `"app_unknown"`).
    pub code: String,
    /// Human-readable message.
    pub message: String,
    /// Whether retrying the identical request later may succeed.
    pub retryable: bool,
    /// Whether this failure was load shedding (the shed-aware marker on
    /// 429 responses: the request was refused by an admission decision,
    /// not broken by a fault).
    pub shed: bool,
}

/// The JSON envelope of every error response: `{"error": {...}}`.
///
/// Always serde-serialized — error messages containing quotes,
/// backslashes, or control characters stay valid JSON.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ErrorBody {
    /// The error payload.
    pub error: ErrorInfo,
}

impl ErrorBody {
    /// Build the envelope for an error.
    pub fn of(err: &ApiError) -> Self {
        ErrorBody {
            error: ErrorInfo {
                code: err.code().to_string(),
                message: err.to_string(),
                retryable: err.is_retryable(),
                shed: matches!(err, ApiError::Predict(PredictError::Overloaded)),
            },
        }
    }

    /// Serialize to the response body.
    ///
    /// Emits directly through [`crate::json_emit::Emitter`] — one pass,
    /// no `Content` tree — and is byte-identical to
    /// `serde_json::to_string(self)` (enforced by test). Infallible: the
    /// envelope contains only strings and bools.
    pub fn to_json(&self) -> String {
        let mut e = crate::json_emit::Emitter::with_capacity(96 + self.error.message.len());
        e.raw("{\"error\":{\"code\":");
        e.string(&self.error.code);
        e.raw(",\"message\":");
        e.string(&self.error.message);
        e.raw(",\"retryable\":");
        e.bool(self.error.retryable);
        e.raw(",\"shed\":");
        e.bool(self.error.shed);
        e.raw("}}");
        e.into_string()
    }
}

// ---------------------------------------------------------------------
// Output wire shape
// ---------------------------------------------------------------------

/// JSON shape for model outputs (the wire form of [`Output`], whose
/// tuple-variant enum can't derive serde directly).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum JsonOutput {
    /// A class label.
    Class {
        /// The label.
        label: u32,
    },
    /// Per-class scores.
    Scores {
        /// The score vector.
        scores: Vec<f32>,
    },
    /// A label sequence (speech transcription).
    Labels {
        /// The sequence.
        labels: Vec<u32>,
    },
}

impl JsonOutput {
    /// Stream this value into `e`, byte-identical to its serde
    /// serialization (tagged enum, declaration field order).
    pub fn emit(&self, e: &mut crate::json_emit::Emitter) -> Result<(), NonFiniteFloat> {
        match self {
            JsonOutput::Class { label } => {
                e.raw("{\"kind\":\"class\",\"label\":");
                e.u64(u64::from(*label));
                e.raw("}");
            }
            JsonOutput::Scores { scores } => {
                e.raw("{\"kind\":\"scores\",\"scores\":[");
                for (i, s) in scores.iter().enumerate() {
                    if i > 0 {
                        e.raw(",");
                    }
                    e.f32(*s)?;
                }
                e.raw("]}");
            }
            JsonOutput::Labels { labels } => {
                e.raw("{\"kind\":\"labels\",\"labels\":[");
                for (i, l) in labels.iter().enumerate() {
                    if i > 0 {
                        e.raw(",");
                    }
                    e.u64(u64::from(*l));
                }
                e.raw("]}");
            }
        }
        Ok(())
    }
}

impl From<Output> for JsonOutput {
    fn from(o: Output) -> Self {
        match o {
            Output::Class(label) => JsonOutput::Class { label },
            Output::Scores(scores) => JsonOutput::Scores { scores },
            Output::Labels(labels) => JsonOutput::Labels { labels },
        }
    }
}

impl From<JsonOutput> for Output {
    fn from(o: JsonOutput) -> Self {
        match o {
            JsonOutput::Class { label } => Output::Class(label),
            JsonOutput::Scores { scores } => Output::Scores(scores),
            JsonOutput::Labels { labels } => Output::Labels(labels),
        }
    }
}

// ---------------------------------------------------------------------
// App lifecycle shapes
// ---------------------------------------------------------------------

/// `POST /api/v1/apps` request body: a full app registration.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct AppSpec {
    /// Application name (the predict/feedback routing key).
    pub name: String,
    /// Candidate models the selection layer chooses among.
    pub candidate_models: Vec<ModelId>,
    /// Selection policy (defaults to Exp3, η=0.1).
    #[serde(default)]
    pub policy: Option<PolicyKind>,
    /// Latency objective in milliseconds (defaults to 20).
    #[serde(default)]
    pub slo_ms: Option<u64>,
    /// Answer when no model responds in time (defaults to class 0).
    #[serde(default)]
    pub default_output: Option<JsonOutput>,
    /// Seed for the policy's reproducible randomness (defaults to 0).
    #[serde(default)]
    pub seed: Option<u64>,
}

impl AppSpec {
    /// Materialize the spec into an [`AppConfig`], filling defaults.
    pub fn into_config(self) -> AppConfig {
        let mut cfg = AppConfig::new(&self.name, self.candidate_models);
        if let Some(policy) = self.policy {
            cfg = cfg.with_policy(policy);
        }
        if let Some(ms) = self.slo_ms {
            cfg = cfg.with_slo(Duration::from_millis(ms));
        }
        if let Some(out) = self.default_output {
            cfg = cfg.with_default_output(out.into());
        }
        if let Some(seed) = self.seed {
            cfg = cfg.with_seed(seed);
        }
        cfg
    }
}

/// `PATCH /api/v1/apps/{app}` request body: a partial update. Absent
/// fields keep their current values.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct AppPatch {
    /// New latency objective in milliseconds.
    #[serde(default)]
    pub slo_ms: Option<u64>,
    /// New selection policy.
    #[serde(default)]
    pub policy: Option<PolicyKind>,
    /// New candidate model set.
    #[serde(default)]
    pub candidate_models: Option<Vec<ModelId>>,
    /// New default output.
    #[serde(default)]
    pub default_output: Option<JsonOutput>,
    /// New policy seed.
    #[serde(default)]
    pub seed: Option<u64>,
}

impl AppPatch {
    /// Whether the patch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.slo_ms.is_none()
            && self.policy.is_none()
            && self.candidate_models.is_none()
            && self.default_output.is_none()
            && self.seed.is_none()
    }

    /// Convert to the domain-level delta type.
    pub fn into_update(self) -> AppUpdate {
        AppUpdate {
            slo: self.slo_ms.map(Duration::from_millis),
            policy: self.policy,
            candidate_models: self.candidate_models,
            default_output: self.default_output.map(Into::into),
            seed: self.seed,
        }
    }
}

/// `GET /api/v1/apps[/{app}]` response shape (also what a registration
/// echoes back).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct AppView {
    /// Application name.
    pub name: String,
    /// Candidate models.
    pub candidate_models: Vec<ModelId>,
    /// Selection policy.
    pub policy: PolicyKind,
    /// Latency objective in milliseconds (rounded; for readability).
    pub slo_ms: u64,
    /// Latency objective in microseconds — the authoritative value, so
    /// sub-millisecond SLOs survive persist/rehydrate round-trips.
    #[serde(default)]
    pub slo_us: Option<u64>,
    /// Default output when nothing arrives in time.
    pub default_output: JsonOutput,
    /// Policy seed.
    pub seed: u64,
}

impl From<&AppConfig> for AppView {
    fn from(cfg: &AppConfig) -> Self {
        AppView {
            name: cfg.name.clone(),
            candidate_models: cfg.candidate_models.clone(),
            policy: cfg.policy.clone(),
            slo_ms: cfg.slo.as_millis() as u64,
            slo_us: Some(cfg.slo.as_micros() as u64),
            default_output: cfg.default_output.clone().into(),
            seed: cfg.seed,
        }
    }
}

impl AppView {
    /// Rebuild the domain config (used by registry rehydration).
    pub fn into_config(self) -> AppConfig {
        let slo = self
            .slo_us
            .map(Duration::from_micros)
            .unwrap_or_else(|| Duration::from_millis(self.slo_ms));
        AppConfig::new(&self.name, self.candidate_models)
            .with_policy(self.policy)
            .with_slo(slo)
            .with_default_output(self.default_output.into())
            .with_seed(self.seed)
    }
}

/// The statestore-persisted form of an app registration is exactly its
/// read-back view.
pub type AppRecord = AppView;

// ---------------------------------------------------------------------
// Model lifecycle shapes
// ---------------------------------------------------------------------

/// `POST /api/v1/models` request body: register a model version (replicas
/// attach separately, over RPC or in-process).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ModelSpec {
    /// Model name.
    pub name: String,
    /// Version to register.
    pub version: u32,
}

/// One model name in `GET /api/v1/models`: version directory plus live
/// scheduler state of the current version.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ModelView {
    /// Model name.
    pub name: String,
    /// The version predicts currently resolve to.
    pub current_version: u32,
    /// Every registered version (live or parked), ascending.
    pub versions: Vec<u32>,
    /// Rollback stack (most recent previous version last).
    pub history: Vec<u32>,
    /// Live replica queue ids of the current version.
    pub replicas: Vec<String>,
    /// Queued queries across the current version's replicas.
    pub queue_depth: usize,
    /// In-flight queries across the current version's replicas.
    pub inflight: usize,
}

// ---------------------------------------------------------------------
// One-pass emitters for control-plane read bodies
// ---------------------------------------------------------------------
//
// The list/view GET bodies sit on operator pollers' hot paths; emitting
// straight into one buffer skips the serde `Content` tree (and its
// per-field allocations) entirely. Every emitter is byte-identical to
// `serde_json::to_string` of the same value — enforced by tests that
// sweep each enum variant and escape-worthy string.

/// `{"name":...,"version":N}` — serde's derive shape for [`ModelId`].
fn emit_model_id(e: &mut crate::json_emit::Emitter, m: &ModelId) {
    e.raw("{\"name\":");
    e.string(&m.name);
    e.raw(",\"version\":");
    e.u64(u64::from(m.version));
    e.raw("}");
}

/// Externally tagged [`PolicyKind`]: unit variants are bare strings
/// (`"Ucb1"`), struct variants single-key objects (`{"Exp3":{"eta":E}}`).
fn emit_policy(e: &mut crate::json_emit::Emitter, p: &PolicyKind) -> Result<(), NonFiniteFloat> {
    match p {
        PolicyKind::Exp3 { eta } => {
            e.raw("{\"Exp3\":{\"eta\":");
            e.f64(*eta)?;
            e.raw("}}");
        }
        PolicyKind::Exp4 { eta } => {
            e.raw("{\"Exp4\":{\"eta\":");
            e.f64(*eta)?;
            e.raw("}}");
        }
        PolicyKind::EpsilonGreedy { epsilon } => {
            e.raw("{\"EpsilonGreedy\":{\"epsilon\":");
            e.f64(*epsilon)?;
            e.raw("}}");
        }
        PolicyKind::Ucb1 => e.raw("\"Ucb1\""),
        PolicyKind::Thompson => e.raw("\"Thompson\""),
        PolicyKind::MajorityVote => e.raw("\"MajorityVote\""),
        PolicyKind::Static { model_index } => {
            e.raw("{\"Static\":{\"model_index\":");
            e.u64(*model_index as u64);
            e.raw("}}");
        }
    }
    Ok(())
}

impl AppView {
    /// Stream this view into `e` in declaration field order.
    pub fn emit(&self, e: &mut crate::json_emit::Emitter) -> Result<(), NonFiniteFloat> {
        e.raw("{\"name\":");
        e.string(&self.name);
        e.raw(",\"candidate_models\":[");
        for (i, m) in self.candidate_models.iter().enumerate() {
            if i > 0 {
                e.raw(",");
            }
            emit_model_id(e, m);
        }
        e.raw("],\"policy\":");
        emit_policy(e, &self.policy)?;
        e.raw(",\"slo_ms\":");
        e.u64(self.slo_ms);
        e.raw(",\"slo_us\":");
        match self.slo_us {
            Some(us) => e.u64(us),
            None => e.raw("null"),
        }
        e.raw(",\"default_output\":");
        self.default_output.emit(e)?;
        e.raw(",\"seed\":");
        e.u64(self.seed);
        e.raw("}");
        Ok(())
    }

    /// Serialize to a response body. A non-finite policy parameter is an
    /// internal error, matching serde's failure mode.
    pub fn to_json(&self) -> Result<String, ApiError> {
        let mut e = crate::json_emit::Emitter::with_capacity(256);
        match self.emit(&mut e) {
            Ok(()) => Ok(e.into_string()),
            Err(err) => Err(ApiError::Internal(err.to_string())),
        }
    }
}

/// Serialize the `GET /api/v1/apps` list body.
pub fn app_views_to_json(views: &[AppView]) -> Result<String, ApiError> {
    let mut e = crate::json_emit::Emitter::with_capacity(64 + 256 * views.len());
    e.raw("[");
    for (i, v) in views.iter().enumerate() {
        if i > 0 {
            e.raw(",");
        }
        if let Err(err) = v.emit(&mut e) {
            return Err(ApiError::Internal(err.to_string()));
        }
    }
    e.raw("]");
    Ok(e.into_string())
}

impl ModelView {
    /// Stream this view into `e` in declaration field order. Infallible:
    /// the shape contains only strings and integers.
    pub fn emit(&self, e: &mut crate::json_emit::Emitter) {
        e.raw("{\"name\":");
        e.string(&self.name);
        e.raw(",\"current_version\":");
        e.u64(u64::from(self.current_version));
        e.raw(",\"versions\":[");
        for (i, v) in self.versions.iter().enumerate() {
            if i > 0 {
                e.raw(",");
            }
            e.u64(u64::from(*v));
        }
        e.raw("],\"history\":[");
        for (i, v) in self.history.iter().enumerate() {
            if i > 0 {
                e.raw(",");
            }
            e.u64(u64::from(*v));
        }
        e.raw("],\"replicas\":[");
        for (i, r) in self.replicas.iter().enumerate() {
            if i > 0 {
                e.raw(",");
            }
            e.string(r);
        }
        e.raw("],\"queue_depth\":");
        e.u64(self.queue_depth as u64);
        e.raw(",\"inflight\":");
        e.u64(self.inflight as u64);
        e.raw("}");
    }

    /// Serialize to a response body.
    pub fn to_json(&self) -> String {
        let mut e = crate::json_emit::Emitter::with_capacity(192);
        self.emit(&mut e);
        e.into_string()
    }
}

/// Serialize the `GET /api/v1/models` list body.
pub fn model_views_to_json(views: &[ModelView]) -> String {
    let mut e = crate::json_emit::Emitter::with_capacity(64 + 192 * views.len());
    e.raw("[");
    for (i, v) in views.iter().enumerate() {
        if i > 0 {
            e.raw(",");
        }
        v.emit(&mut e);
    }
    e.raw("]");
    e.into_string()
}

/// Serialize a `/metrics` snapshot: `{"values":{name:metric,...}}` with
/// each metric internally tagged (`{"kind":"counter",...}`), matching the
/// serde derive on [`clipper_metrics::MetricValue`]. BTreeMap keys come
/// out sorted from both paths.
pub fn snapshot_to_json(snap: &clipper_metrics::RegistrySnapshot) -> Result<String, ApiError> {
    use clipper_metrics::MetricValue;
    let mut e = crate::json_emit::Emitter::with_capacity(64 + 96 * snap.values.len());
    let emit = (|| {
        e.raw("{\"values\":{");
        for (i, (name, v)) in snap.values.iter().enumerate() {
            if i > 0 {
                e.raw(",");
            }
            e.string(name);
            e.raw(":");
            match v {
                MetricValue::Counter { value } => {
                    e.raw("{\"kind\":\"counter\",\"value\":");
                    e.u64(*value);
                    e.raw("}");
                }
                MetricValue::Gauge { value } => {
                    e.raw("{\"kind\":\"gauge\",\"value\":");
                    e.i64(*value);
                    e.raw("}");
                }
                MetricValue::Meter {
                    count,
                    rate,
                    mean_rate,
                } => {
                    e.raw("{\"kind\":\"meter\",\"count\":");
                    e.u64(*count);
                    e.raw(",\"rate\":");
                    e.f64(*rate)?;
                    e.raw(",\"mean_rate\":");
                    e.f64(*mean_rate)?;
                    e.raw("}");
                }
                MetricValue::Histogram {
                    count,
                    mean,
                    p50,
                    p95,
                    p99,
                    max,
                    min,
                } => {
                    e.raw("{\"kind\":\"histogram\",\"count\":");
                    e.u64(*count);
                    e.raw(",\"mean\":");
                    e.f64(*mean)?;
                    e.raw(",\"p50\":");
                    e.u64(*p50);
                    e.raw(",\"p95\":");
                    e.u64(*p95);
                    e.raw(",\"p99\":");
                    e.u64(*p99);
                    e.raw(",\"max\":");
                    e.u64(*max);
                    e.raw(",\"min\":");
                    e.u64(*min);
                    e.raw("}");
                }
            }
        }
        e.raw("}}");
        Ok::<(), NonFiniteFloat>(())
    })();
    match emit {
        Ok(()) => Ok(e.into_string()),
        Err(err) => Err(ApiError::Internal(err.to_string())),
    }
}

/// Wire form of [`BatchStrategy`] (whose `Fixed(usize)` tuple variant
/// the vendored serde derive cannot express).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum BatchStrategyWire {
    /// Additive-increase / multiplicative-decrease (§4.3.1).
    Aimd {
        /// Additive step per successful full batch.
        step: f64,
        /// Multiplicative backoff factor on SLO violation.
        backoff: f64,
    },
    /// Online P99 quantile regression.
    QuantileRegression,
    /// Static maximum batch size.
    Fixed {
        /// The fixed batch size.
        size: usize,
    },
    /// Every query is its own batch.
    NoBatching,
    /// Ceiling continuously re-derived from the replica's online latency
    /// model (§4.4.1).
    Autotune {
        /// Fraction of the SLO held back as jitter headroom.
        headroom: f64,
    },
}

impl From<&BatchStrategy> for BatchStrategyWire {
    fn from(s: &BatchStrategy) -> Self {
        match *s {
            BatchStrategy::Aimd { step, backoff } => BatchStrategyWire::Aimd { step, backoff },
            BatchStrategy::QuantileRegression => BatchStrategyWire::QuantileRegression,
            BatchStrategy::Fixed(size) => BatchStrategyWire::Fixed { size },
            BatchStrategy::NoBatching => BatchStrategyWire::NoBatching,
            BatchStrategy::Autotune { headroom } => BatchStrategyWire::Autotune { headroom },
        }
    }
}

impl From<BatchStrategyWire> for BatchStrategy {
    fn from(s: BatchStrategyWire) -> Self {
        match s {
            BatchStrategyWire::Aimd { step, backoff } => BatchStrategy::Aimd { step, backoff },
            BatchStrategyWire::QuantileRegression => BatchStrategy::QuantileRegression,
            BatchStrategyWire::Fixed { size } => BatchStrategy::Fixed(size),
            BatchStrategyWire::NoBatching => BatchStrategy::NoBatching,
            BatchStrategyWire::Autotune { headroom } => BatchStrategy::Autotune { headroom },
        }
    }
}

/// Wire form of a latency-curve prior ([`LatencyPrior`]): the learned or
/// calibrated `α + β·b` coefficients, microseconds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct LatencyPriorWire {
    /// Fixed per-batch overhead (intercept), µs.
    pub alpha_us: f64,
    /// Marginal cost per batched item (slope), µs.
    pub beta_us: f64,
}

impl From<LatencyPrior> for LatencyPriorWire {
    fn from(p: LatencyPrior) -> Self {
        LatencyPriorWire {
            alpha_us: p.alpha_us,
            beta_us: p.beta_us,
        }
    }
}

impl From<LatencyPriorWire> for LatencyPrior {
    fn from(p: LatencyPriorWire) -> Self {
        LatencyPrior {
            alpha_us: p.alpha_us,
            beta_us: p.beta_us,
        }
    }
}

/// The statestore-persisted form of one model version's batching
/// configuration ([`QueueConfig`]): max batch size, delayed-batching
/// timeout, AIMD on/off (the strategy), and the queueing knobs. Durations
/// are microseconds so sub-millisecond settings survive the round trip.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct BatchKnobs {
    /// Batching strategy (AIMD / quantile / fixed / none).
    pub strategy: BatchStrategyWire,
    /// Latency objective, µs.
    pub slo_us: u64,
    /// Delayed-batching wait, µs.
    pub batch_wait_timeout_us: u64,
    /// Queue depth before submissions are refused.
    pub queue_capacity: usize,
    /// Hard cap on batch size.
    pub max_batch_cap: usize,
    /// Outstanding batches per replica.
    pub pipeline_depth: usize,
    /// Drain hang-detector deadline, µs.
    pub drain_deadline_us: u64,
    /// Model-wide latency-curve prior (§4.4.1), absent in records written
    /// before autotuning existed.
    #[serde(default)]
    pub latency_prior: Option<LatencyPriorWire>,
    /// Whether SLO-aware admission is enabled for this model. Absent
    /// (false) in legacy records.
    #[serde(default)]
    pub slo_admission: bool,
    /// Retry budget: total dispatch attempts per query before the typed
    /// upstream error surfaces (1 disables redispatch). Absent in legacy
    /// records, which rehydrate with the [`QueueConfig`] default.
    #[serde(default)]
    pub retry_max_attempts: Option<u32>,
    /// Hedged-dispatch knob; absent (off) in legacy records.
    #[serde(default)]
    pub hedge: Option<HedgeWire>,
}

/// Wire form of [`HedgeConfig`](crate::batching::HedgeConfig).
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct HedgeWire {
    /// Hedge fires at `delay_factor ×` the model-predicted batch latency.
    pub delay_factor: f64,
    /// Floor (and cold-start value) for the hedge delay, µs.
    pub min_delay_us: u64,
}

impl From<crate::batching::HedgeConfig> for HedgeWire {
    fn from(h: crate::batching::HedgeConfig) -> Self {
        HedgeWire {
            delay_factor: h.delay_factor,
            min_delay_us: h.min_delay.as_micros() as u64,
        }
    }
}

impl From<HedgeWire> for crate::batching::HedgeConfig {
    fn from(h: HedgeWire) -> Self {
        crate::batching::HedgeConfig {
            delay_factor: h.delay_factor,
            min_delay: Duration::from_micros(h.min_delay_us),
        }
    }
}

impl From<&QueueConfig> for BatchKnobs {
    fn from(cfg: &QueueConfig) -> Self {
        BatchKnobs {
            strategy: (&cfg.strategy).into(),
            slo_us: cfg.slo.as_micros() as u64,
            batch_wait_timeout_us: cfg.batch_wait_timeout.as_micros() as u64,
            queue_capacity: cfg.queue_capacity,
            max_batch_cap: cfg.max_batch_cap,
            pipeline_depth: cfg.pipeline_depth,
            drain_deadline_us: cfg.drain_deadline.as_micros() as u64,
            latency_prior: cfg.latency_prior.map(Into::into),
            slo_admission: cfg.slo_admission,
            retry_max_attempts: Some(cfg.retry_max_attempts),
            hedge: cfg.hedge.map(Into::into),
        }
    }
}

impl BatchKnobs {
    /// Rebuild the domain config (used by registry rehydration). Breaker
    /// tuning is not persisted — a rehydrated model runs with the
    /// built-in [`BreakerConfig`](crate::batching::BreakerConfig)
    /// defaults.
    pub fn into_config(self) -> QueueConfig {
        QueueConfig {
            strategy: self.strategy.into(),
            slo: Duration::from_micros(self.slo_us),
            batch_wait_timeout: Duration::from_micros(self.batch_wait_timeout_us),
            queue_capacity: self.queue_capacity,
            max_batch_cap: self.max_batch_cap,
            pipeline_depth: self.pipeline_depth,
            drain_deadline: Duration::from_micros(self.drain_deadline_us),
            latency_prior: self.latency_prior.map(Into::into),
            slo_admission: self.slo_admission,
            retry_max_attempts: self
                .retry_max_attempts
                .unwrap_or(QueueConfig::default().retry_max_attempts),
            hedge: self.hedge.map(Into::into),
            ..QueueConfig::default()
        }
    }
}

/// One replica's learned tuning inside a [`VersionBatchKnobs`] record:
/// the wire form of [`ReplicaTune`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ReplicaTuneRecord {
    /// The replica's queue id (`model:version:index`).
    pub queue_id: String,
    /// Learned intercept, µs.
    pub alpha_us: f64,
    /// Learned slope, µs per item.
    pub beta_us: f64,
    /// The ceiling the controller had derived at persist time.
    pub b_max: usize,
    /// Observations backing the fit.
    pub samples: u64,
}

impl From<&ReplicaTune> for ReplicaTuneRecord {
    fn from(t: &ReplicaTune) -> Self {
        ReplicaTuneRecord {
            queue_id: t.queue_id.clone(),
            alpha_us: t.prior.alpha_us,
            beta_us: t.prior.beta_us,
            b_max: t.b_max,
            samples: t.samples,
        }
    }
}

impl From<&ReplicaTuneRecord> for ReplicaTune {
    fn from(r: &ReplicaTuneRecord) -> Self {
        ReplicaTune {
            queue_id: r.queue_id.clone(),
            prior: LatencyPrior {
                alpha_us: r.alpha_us,
                beta_us: r.beta_us,
            },
            b_max: r.b_max,
            samples: r.samples,
        }
    }
}

/// One version's persisted batching configuration inside a
/// [`ModelRecord`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct VersionBatchKnobs {
    /// The version these knobs belong to.
    pub version: u32,
    /// The knobs.
    pub knobs: BatchKnobs,
    /// Learned per-replica tuning (§4.4.1), harvested from the live fleet
    /// at persist time so `rehydrate()` restores a *tuned* fleet. Absent
    /// in legacy records (those replicas warm-start from the model-wide
    /// prior, or cold).
    #[serde(default)]
    pub replicas: Vec<ReplicaTuneRecord>,
}

/// The statestore-persisted form of a model's version directory.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ModelRecord {
    /// Model name.
    pub name: String,
    /// Current version.
    pub current: u32,
    /// Every registered version.
    pub versions: Vec<u32>,
    /// Rollback stack.
    pub history: Vec<u32>,
    /// Per-version batching configuration, so `rehydrate()` restores the
    /// knobs a version was rolled out with instead of silently resetting
    /// to defaults. Absent in records written before this field existed
    /// (those versions rehydrate with default batching).
    #[serde(default)]
    pub batch: Vec<VersionBatchKnobs>,
}

impl ModelRecord {
    /// The persisted knobs for `version`, if recorded.
    pub fn knobs_for(&self, version: u32) -> Option<&BatchKnobs> {
        self.batch
            .iter()
            .find(|vb| vb.version == version)
            .map(|vb| &vb.knobs)
    }
}

// ---------------------------------------------------------------------
// Fleet replica registration (control-plane surface of `crate::fleet`)
// ---------------------------------------------------------------------

/// `POST /api/v1/replicas` request body — a container announcing itself
/// to the control plane.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ReplicaSpec {
    /// Container name, stable across restarts of the same container —
    /// the fleet membership key.
    pub container_name: String,
    /// The model this container serves.
    pub model_name: String,
    /// The model version this container serves.
    pub model_version: u32,
    /// Attachment capabilities, matched against registered
    /// `ReplicaLauncher`s (e.g. `"local:noop"`); an empty list means the
    /// container will dial the RPC data plane itself.
    #[serde(default)]
    pub capabilities: Vec<String>,
}

/// The statestore-persisted form of a fleet replica registration —
/// `config/replica/*`, beside [`AppRecord`] and [`ModelRecord`], so a
/// restarted (or sibling) frontend re-adopts the registered fleet.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ReplicaRecord {
    /// Container name (membership key).
    pub container_name: String,
    /// The model this container serves.
    pub model_name: String,
    /// The model version this container serves.
    pub model_version: u32,
    /// Attachment capabilities (see [`ReplicaSpec::capabilities`]).
    #[serde(default)]
    pub capabilities: Vec<String>,
    /// Lifecycle state at persist time: `"registered"` or `"expired"`.
    pub state: String,
    /// The learned latency curve harvested from the replica's queue when
    /// it was drained — the warm start handed back on re-registration.
    #[serde(default)]
    pub tune: Option<ReplicaTuneRecord>,
}

/// Persisted state value for a live registration.
pub const REPLICA_STATE_REGISTERED: &str = "registered";
/// Persisted state value for an expired (drained) registration.
pub const REPLICA_STATE_EXPIRED: &str = "expired";

/// `POST /api/v1/replicas` response body.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RegisterOutcome {
    /// Echo of the membership key.
    pub container_name: String,
    /// The data-plane queue id, when the frontend attached the replica
    /// immediately (a launcher matched its capabilities). `None` means
    /// the container must dial `rpc_addr` and send `Register`.
    pub queue_id: Option<String>,
    /// The RPC data-plane address to dial when not attached in-process.
    pub rpc_addr: Option<String>,
    /// Whether a persisted tune warm-started this admission.
    pub warm_start: bool,
    /// The heartbeat interval the control plane expects, in milliseconds.
    pub heartbeat_interval_ms: u64,
}

/// `POST /api/v1/replicas/{name}/heartbeat` request body: liveness plus
/// optional self-reported load stats (all fields optional — an empty
/// object is a pure liveness beat).
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct HeartbeatReport {
    /// Container-side queue depth, if the container tracks one.
    #[serde(default)]
    pub queue_depth: Option<usize>,
    /// Container-side mean service time per query, µs.
    #[serde(default)]
    pub service_us: Option<f64>,
}

/// Read-back shape for `GET /api/v1/replicas` — one row per member.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct ReplicaView {
    /// Container name (membership key).
    pub container_name: String,
    /// The model this member serves.
    pub model_name: String,
    /// The model version this member serves.
    pub model_version: u32,
    /// Health state: `"healthy"`, `"suspect"`, or `"expired"`.
    pub health: String,
    /// The data-plane queue id, when attached.
    pub queue_id: Option<String>,
    /// Whether the autoscaler launched (and may reap) this member.
    pub managed: bool,
}

/// Summary of a registry rehydration from the statestore.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RehydrateReport {
    /// Model version directories restored.
    pub models: usize,
    /// App registrations restored.
    pub apps: usize,
    /// Fleet replica registrations adopted into the membership view.
    pub replicas: usize,
    /// Statestore keys whose records failed to parse and were skipped —
    /// one corrupt record never aborts the rest of the recovery.
    pub skipped: Vec<String>,
}

/// Summary of a [`sync_config`](crate::Clipper::sync_config) pass — one
/// frontend reconciling its in-memory registry against the statestore's
/// records, which another frontend may have moved underneath it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncReport {
    /// Model names adopted wholesale (unknown locally before the pass).
    pub adopted_models: usize,
    /// Versions of already-known models newly registered locally.
    pub adopted_versions: usize,
    /// Current-pointer moves applied locally (each ran the full local
    /// rollout path: repoint apps, quiesce, drain the old version).
    pub repointed: usize,
    /// Current-pointer moves that could not be applied yet —
    /// `"name:vN"` — typically because the target version has no local
    /// replicas; a later pass retries them.
    pub pending: Vec<String>,
    /// Apps adopted (unknown locally before the pass).
    pub adopted_apps: usize,
    /// Apps whose persisted record differed and were replaced locally.
    pub updated_apps: usize,
    /// Apps removed locally because their record was deleted.
    pub removed_apps: usize,
    /// Fleet replica records adopted into the local membership view
    /// (registered by another frontend sharing the statestore).
    pub adopted_replicas: usize,
    /// Statestore keys whose records failed to parse and were skipped.
    pub skipped: Vec<String>,
}

impl SyncReport {
    /// Whether the pass changed nothing (registry already converged).
    pub fn is_noop(&self) -> bool {
        *self == SyncReport::default()
    }
}

/// `POST /api/v1/models/{name}/rollout` request body.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RolloutRequest {
    /// The version to make current.
    pub version: u32,
}

/// Response of a completed rollout or rollback.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct RolloutOutcome {
    /// Model name.
    pub model: String,
    /// The version that was current before.
    pub from_version: u32,
    /// The version that is current now.
    pub to_version: u32,
    /// Apps whose candidate sets were repointed.
    pub repointed_apps: Vec<String>,
    /// Replicas of the old version that were gracefully drained.
    pub drained_replicas: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_body_with_quotes_and_backslashes_stays_valid_json() {
        // The satellite regression: format!-built bodies emitted invalid
        // JSON for messages containing quotes. The serde path must not.
        let err = ApiError::AppUnknown("we\"ird\\app".to_string());
        let body = ErrorBody::of(&err).to_json();
        let parsed: serde_json::Value = serde_json::from_str(&body).expect("body must be JSON");
        assert_eq!(parsed["error"]["code"], "app_unknown");
        let round: ErrorBody = serde_json::from_str(&body).unwrap();
        assert!(round.error.message.contains("we\"ird\\app"));
    }

    #[test]
    fn taxonomy_maps_to_canonical_statuses() {
        assert_eq!(
            ApiError::from(PredictError::AppUnknown).http_status(),
            404,
            "unknown app is 404, never 500"
        );
        assert_eq!(
            ApiError::from(PredictError::ModelUnknown).http_status(),
            404
        );
        assert_eq!(ApiError::from(PredictError::Overloaded).http_status(), 429);
        assert_eq!(ApiError::from(PredictError::Timeout).http_status(), 504);
        assert_eq!(
            ApiError::from(PredictError::BadInput("x".into())).http_status(),
            400
        );
        assert_eq!(ApiError::from(PredictError::NoReplicas).http_status(), 503);
        assert_eq!(ApiError::AppExists("a".into()).http_status(), 409);
        assert_eq!(ApiError::NotFound.http_status(), 404);
    }

    #[test]
    fn upstream_errors_keep_their_retryability_on_the_wire() {
        use crate::batching::UpstreamKind;
        // A retryable upstream failure (budget exhausted mid-retry) must
        // answer 503 with `retryable: true` — clients may safely resend.
        let retryable = ApiError::from(PredictError::Upstream {
            kind: UpstreamKind::ConnectionClosed,
            retryable: true,
            attempts: 3,
        });
        assert_eq!(retryable.http_status(), 503);
        let body = ErrorBody::of(&retryable);
        assert_eq!(body.error.code, "upstream");
        assert!(body.error.retryable);
        assert!(!body.error.shed, "an upstream fault is not load shedding");
        assert!(body.error.message.contains("3 attempt(s)"));
        // A non-retryable one (e.g. a remote application error) is a 500
        // and tells clients not to bother resending.
        let fatal = ApiError::from(PredictError::Upstream {
            kind: UpstreamKind::Remote,
            retryable: false,
            attempts: 1,
        });
        assert_eq!(fatal.http_status(), 500);
        assert!(!ErrorBody::of(&fatal).error.retryable);
    }

    #[test]
    fn overloaded_body_is_shed_aware() {
        let body = ErrorBody::of(&ApiError::from(PredictError::Overloaded));
        assert!(body.error.shed);
        assert!(body.error.retryable);
        let other = ErrorBody::of(&ApiError::from(PredictError::Failed("x".into())));
        assert!(!other.error.shed);
    }

    #[test]
    fn error_body_fast_path_is_byte_identical_to_serde() {
        for err in [
            ApiError::AppUnknown("we\"ird\\app".to_string()),
            ApiError::AppExists("plain".to_string()),
            ApiError::from(PredictError::Overloaded),
            ApiError::from(PredictError::Timeout),
            ApiError::BadRequest("tabs\tand\nnewlines and \u{7} bells".to_string()),
            ApiError::Internal("unicode mêssage 世界".to_string()),
            ApiError::NotFound,
        ] {
            let body = ErrorBody::of(&err);
            assert_eq!(
                body.to_json(),
                serde_json::to_string(&body).unwrap(),
                "fast emitter diverged for {err:?}"
            );
        }
    }

    #[test]
    fn app_view_fast_path_is_byte_identical_to_serde() {
        let policies = [
            PolicyKind::Exp3 { eta: 0.2 },
            PolicyKind::Exp4 { eta: 1.0 },
            PolicyKind::EpsilonGreedy { epsilon: 0.05 },
            PolicyKind::Ucb1,
            PolicyKind::Thompson,
            PolicyKind::MajorityVote,
            PolicyKind::Static { model_index: 3 },
        ];
        let outputs = [
            JsonOutput::Class { label: 0 },
            JsonOutput::Scores {
                scores: vec![0.25, 1.0, -3.5],
            },
            JsonOutput::Labels {
                labels: vec![7, 8, 9],
            },
        ];
        for (i, policy) in policies.into_iter().enumerate() {
            let view = AppView {
                name: format!("we\"ird\\app-{i}"),
                candidate_models: vec![ModelId::new("m", 1), ModelId::new("tab\tname", 42)],
                policy,
                slo_ms: 20,
                slo_us: if i % 2 == 0 { Some(20_000) } else { None },
                default_output: outputs[i % outputs.len()].clone(),
                seed: u64::MAX,
            };
            assert_eq!(
                view.to_json().unwrap(),
                serde_json::to_string(&view).unwrap(),
                "fast emitter diverged for {view:?}"
            );
        }
    }

    #[test]
    fn app_view_list_is_byte_identical_to_serde() {
        let views: Vec<AppView> = (0..3)
            .map(|i| AppView {
                name: format!("app-{i}"),
                candidate_models: vec![ModelId::new("m", i)],
                policy: PolicyKind::default(),
                slo_ms: 20,
                slo_us: Some(20_000),
                default_output: JsonOutput::Class { label: 0 },
                seed: i as u64,
            })
            .collect();
        assert_eq!(
            app_views_to_json(&views).unwrap(),
            serde_json::to_string(&views).unwrap()
        );
        assert_eq!(app_views_to_json(&[]).unwrap(), "[]");
    }

    #[test]
    fn model_view_fast_path_is_byte_identical_to_serde() {
        let views = [
            ModelView {
                name: "mnist-svm".to_string(),
                current_version: 2,
                versions: vec![1, 2, 3],
                history: vec![1],
                replicas: vec!["r\"0".to_string(), "r1".to_string()],
                queue_depth: 17,
                inflight: 3,
            },
            ModelView {
                name: String::new(),
                current_version: 0,
                versions: vec![],
                history: vec![],
                replicas: vec![],
                queue_depth: 0,
                inflight: 0,
            },
        ];
        for view in &views {
            assert_eq!(
                view.to_json(),
                serde_json::to_string(view).unwrap(),
                "fast emitter diverged for {view:?}"
            );
        }
        assert_eq!(
            model_views_to_json(&views),
            serde_json::to_string(&views.to_vec()).unwrap()
        );
        assert_eq!(model_views_to_json(&[]), "[]");
    }

    #[test]
    fn metrics_snapshot_fast_path_is_byte_identical_to_serde() {
        use clipper_metrics::{MetricValue, RegistrySnapshot};
        let mut values = std::collections::BTreeMap::new();
        values.insert(
            "frontend.qps".to_string(),
            MetricValue::Counter { value: u64::MAX },
        );
        values.insert("queue.depth".to_string(), MetricValue::Gauge { value: -12 });
        values.insert(
            "predict.rate".to_string(),
            MetricValue::Meter {
                count: 1_000,
                rate: 250.5,
                mean_rate: 3.0,
            },
        );
        values.insert(
            "latency\"us".to_string(),
            MetricValue::Histogram {
                count: 9,
                mean: 41.75,
                p50: 40,
                p95: 90,
                p99: 99,
                max: 120,
                min: 2,
            },
        );
        let snap = RegistrySnapshot { values };
        assert_eq!(
            snapshot_to_json(&snap).unwrap(),
            serde_json::to_string(&snap).unwrap()
        );
        let empty = RegistrySnapshot {
            values: Default::default(),
        };
        assert_eq!(snapshot_to_json(&empty).unwrap(), "{\"values\":{}}");
    }

    #[test]
    fn non_finite_policy_parameters_are_internal_errors() {
        let view = AppView {
            name: "a".to_string(),
            candidate_models: vec![],
            policy: PolicyKind::Exp3 { eta: f64::NAN },
            slo_ms: 20,
            slo_us: None,
            default_output: JsonOutput::Class { label: 0 },
            seed: 0,
        };
        assert!(matches!(view.to_json(), Err(ApiError::Internal(_))));
        assert!(serde_json::to_string(&view).is_err());
    }

    #[test]
    fn json_output_fast_path_is_byte_identical_to_serde() {
        for out in [
            JsonOutput::Class { label: 0 },
            JsonOutput::Class { label: u32::MAX },
            JsonOutput::Scores { scores: vec![] },
            JsonOutput::Scores {
                scores: vec![0.25, 1.0, -3.5, 1.0 / 3.0, 1e10],
            },
            JsonOutput::Labels { labels: vec![] },
            JsonOutput::Labels {
                labels: vec![1, 2, 3],
            },
        ] {
            let mut e = crate::json_emit::Emitter::default();
            out.emit(&mut e).unwrap();
            assert_eq!(
                e.into_string(),
                serde_json::to_string(&out).unwrap(),
                "fast emitter diverged for {out:?}"
            );
        }
        // A non-finite score fails exactly like the serde path.
        let bad = JsonOutput::Scores {
            scores: vec![f32::NAN],
        };
        let mut e = crate::json_emit::Emitter::default();
        assert_eq!(
            bad.emit(&mut e).unwrap_err().to_string(),
            serde_json::to_string(&bad).unwrap_err().to_string()
        );
    }

    #[test]
    fn json_output_round_trips() {
        for out in [
            Output::Class(7),
            Output::Scores(vec![0.25, 0.75]),
            Output::Labels(vec![1, 2, 3]),
        ] {
            let wire: JsonOutput = out.clone().into();
            let json = serde_json::to_string(&wire).unwrap();
            let back: JsonOutput = serde_json::from_str(&json).unwrap();
            assert_eq!(Output::from(back), out);
        }
    }

    #[test]
    fn app_spec_fills_defaults() {
        let spec: AppSpec = serde_json::from_str(
            "{\"name\":\"a\",\"candidate_models\":[{\"name\":\"m\",\"version\":1}]}",
        )
        .unwrap();
        let cfg = spec.into_config();
        assert_eq!(cfg.name, "a");
        assert_eq!(cfg.slo, Duration::from_millis(20));
        assert_eq!(cfg.default_output, Output::Class(0));
    }

    #[test]
    fn sub_millisecond_slo_survives_the_record_round_trip() {
        // Regression: persisting only whole milliseconds truncated a
        // 500 µs SLO to zero, silencing the app after rehydration.
        let cfg =
            AppConfig::new("app", vec![ModelId::new("m", 1)]).with_slo(Duration::from_micros(500));
        let record = AppRecord::from(&cfg);
        let json = serde_json::to_string(&record).unwrap();
        let back: AppRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.into_config().slo, Duration::from_micros(500));
        // A record written without slo_us (older shape) falls back to ms.
        let legacy: AppRecord = serde_json::from_str(
            "{\"name\":\"app\",\"candidate_models\":[{\"name\":\"m\",\"version\":1}],\
             \"policy\":\"MajorityVote\",\"slo_ms\":30,\
             \"default_output\":{\"kind\":\"class\",\"label\":0},\"seed\":0}",
        )
        .unwrap();
        assert_eq!(legacy.into_config().slo, Duration::from_millis(30));
    }

    #[test]
    fn app_record_round_trips_through_json() {
        let cfg = AppConfig::new("app", vec![ModelId::new("m", 3)])
            .with_policy(PolicyKind::Exp4 { eta: 0.2 })
            .with_slo(Duration::from_millis(75))
            .with_default_output(Output::Scores(vec![0.5, 0.5]))
            .with_seed(9);
        let record = AppRecord::from(&cfg);
        let json = serde_json::to_string(&record).unwrap();
        let back: AppRecord = serde_json::from_str(&json).unwrap();
        let cfg2 = back.into_config();
        assert_eq!(cfg2.name, cfg.name);
        assert_eq!(cfg2.candidate_models, cfg.candidate_models);
        assert_eq!(cfg2.policy, cfg.policy);
        assert_eq!(cfg2.slo, cfg.slo);
        assert_eq!(cfg2.default_output, cfg.default_output);
        assert_eq!(cfg2.seed, cfg.seed);
    }

    #[test]
    fn app_patch_defaults_to_empty() {
        let patch: AppPatch = serde_json::from_str("{}").unwrap();
        assert!(patch.is_empty());
        let patch: AppPatch = serde_json::from_str("{\"slo_ms\": 50}").unwrap();
        assert!(!patch.is_empty());
        assert_eq!(patch.into_update().slo, Some(Duration::from_millis(50)));
    }

    #[test]
    fn model_record_round_trips() {
        let rec = ModelRecord {
            name: "m".into(),
            current: 2,
            versions: vec![1, 2],
            history: vec![1],
            batch: vec![VersionBatchKnobs {
                version: 2,
                knobs: BatchKnobs::from(&QueueConfig {
                    strategy: BatchStrategy::Fixed(7),
                    slo: Duration::from_micros(750),
                    batch_wait_timeout: Duration::from_millis(2),
                    queue_capacity: 123,
                    max_batch_cap: 64,
                    pipeline_depth: 2,
                    drain_deadline: Duration::from_secs(9),
                    latency_prior: Some(LatencyPrior {
                        alpha_us: 120.5,
                        beta_us: 33.25,
                    }),
                    slo_admission: true,
                    retry_max_attempts: 2,
                    hedge: Some(crate::batching::HedgeConfig {
                        delay_factor: 2.5,
                        min_delay: Duration::from_micros(900),
                    }),
                    ..QueueConfig::default()
                }),
                replicas: vec![ReplicaTuneRecord {
                    queue_id: "m:v2:0".into(),
                    alpha_us: 140.0,
                    beta_us: 41.5,
                    b_max: 17,
                    samples: 420,
                }],
            }],
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back = serde_json::from_str::<ModelRecord>(&json).unwrap();
        assert_eq!(back, rec);
        let cfg = back.knobs_for(2).unwrap().clone().into_config();
        assert_eq!(cfg.strategy, BatchStrategy::Fixed(7));
        assert_eq!(cfg.slo, Duration::from_micros(750));
        assert_eq!(cfg.batch_wait_timeout, Duration::from_millis(2));
        assert_eq!(cfg.queue_capacity, 123);
        assert_eq!(cfg.drain_deadline, Duration::from_secs(9));
        assert_eq!(
            cfg.latency_prior,
            Some(LatencyPrior {
                alpha_us: 120.5,
                beta_us: 33.25,
            })
        );
        assert!(cfg.slo_admission);
        assert_eq!(cfg.retry_max_attempts, 2);
        let hedge = cfg.hedge.expect("hedge knob round-trips");
        assert_eq!(hedge.delay_factor, 2.5);
        assert_eq!(hedge.min_delay, Duration::from_micros(900));
        assert!(back.knobs_for(1).is_none());
    }

    #[test]
    fn legacy_batch_knobs_without_autotune_fields_still_parse() {
        // A knobs blob written before §4.4.1 autotuning existed: no
        // latency_prior, no slo_admission, no per-replica tuning.
        let legacy = "{\"version\":1,\"knobs\":{\
             \"strategy\":{\"kind\":\"fixed\",\"size\":8},\"slo_us\":20000,\
             \"batch_wait_timeout_us\":0,\"queue_capacity\":64,\
             \"max_batch_cap\":64,\"pipeline_depth\":1,\
             \"drain_deadline_us\":5000000}}";
        let vk: VersionBatchKnobs = serde_json::from_str(legacy).unwrap();
        assert!(vk.replicas.is_empty());
        let cfg = vk.knobs.into_config();
        assert_eq!(cfg.strategy, BatchStrategy::Fixed(8));
        assert_eq!(cfg.latency_prior, None);
        assert!(!cfg.slo_admission);
        // Recovery knobs absent in legacy records → QueueConfig defaults.
        assert_eq!(
            cfg.retry_max_attempts,
            QueueConfig::default().retry_max_attempts
        );
        assert!(cfg.hedge.is_none());
    }

    #[test]
    fn legacy_model_record_without_batch_field_still_parses() {
        // Records written before batch knobs were persisted must load
        // (their versions rehydrate with default batching).
        let legacy: ModelRecord =
            serde_json::from_str("{\"name\":\"m\",\"current\":1,\"versions\":[1],\"history\":[]}")
                .unwrap();
        assert!(legacy.batch.is_empty());
        assert!(legacy.knobs_for(1).is_none());
    }

    #[test]
    fn batch_strategy_wire_round_trips_every_variant() {
        for strategy in [
            BatchStrategy::Aimd {
                step: 2.0,
                backoff: 0.9,
            },
            BatchStrategy::QuantileRegression,
            BatchStrategy::Fixed(64),
            BatchStrategy::NoBatching,
            BatchStrategy::Autotune { headroom: 0.1 },
        ] {
            let wire = BatchStrategyWire::from(&strategy);
            let json = serde_json::to_string(&wire).unwrap();
            let back: BatchStrategyWire = serde_json::from_str(&json).unwrap();
            assert_eq!(BatchStrategy::from(back), strategy);
        }
    }
}
