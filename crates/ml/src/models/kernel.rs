//! RBF kernel SVM (budget kernel perceptron).
//!
//! This is the "slow" end of Figure 3: every prediction pays
//! O(supports × dims) kernel evaluations — a sequence of expensive
//! nearest-neighbor-style computations, exactly why the paper's kernel SVM
//! container fits only single-digit batch sizes inside a 20 ms SLO.

use super::Model;
use crate::datasets::Dataset;
use crate::linalg::sq_dist;
use rand::prelude::*;

/// Hyperparameters for [`KernelSvm::train`].
#[derive(Clone, Debug)]
pub struct KernelSvmConfig {
    /// Training epochs (perceptron passes).
    pub epochs: usize,
    /// RBF kernel width; if `None`, uses the median-distance heuristic.
    pub gamma: Option<f32>,
    /// Maximum number of support vectors retained (budget).
    pub max_supports: usize,
}

impl Default for KernelSvmConfig {
    fn default() -> Self {
        KernelSvmConfig {
            epochs: 3,
            gamma: None,
            max_supports: 1_000,
        }
    }
}

/// A multi-class kernel machine: one weight per (support, class).
pub struct KernelSvm {
    name: String,
    num_classes: usize,
    gamma: f32,
    supports: Vec<Vec<f32>>,
    /// `alphas[i][c]`: weight of support `i` toward class `c`.
    alphas: Vec<Vec<f32>>,
}

impl KernelSvm {
    /// Train with the multi-class kernel perceptron update, keeping at most
    /// `max_supports` support vectors (oldest evicted first).
    pub fn train(dataset: &Dataset, cfg: &KernelSvmConfig, seed: u64) -> Self {
        let k = dataset.num_classes();
        let mut rng = StdRng::seed_from_u64(seed);
        let gamma = cfg.gamma.unwrap_or_else(|| {
            // Median heuristic over a sample of pairwise distances.
            let n = dataset.train.len();
            let mut dists: Vec<f32> = (0..128.min(n * (n.saturating_sub(1)) / 2))
                .map(|_| {
                    let a = rng.random_range(0..n);
                    let b = rng.random_range(0..n);
                    sq_dist(&dataset.train[a].x, &dataset.train[b].x)
                })
                .filter(|&d| d > 0.0)
                .collect();
            dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = dists.get(dists.len() / 2).copied().unwrap_or(1.0);
            1.0 / median.max(1e-6)
        });

        let mut model = KernelSvm {
            name: "kernel-svm".into(),
            num_classes: k,
            gamma,
            supports: Vec::new(),
            alphas: Vec::new(),
        };

        let mut order: Vec<usize> = (0..dataset.train.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let ex = &dataset.train[i];
                let pred = if model.supports.is_empty() {
                    // No supports yet: predict an arbitrary wrong class to
                    // force the first update.
                    (ex.y + 1) % k as u32
                } else {
                    model.predict(&ex.x)
                };
                if pred != ex.y {
                    // Perceptron update: add this example as a support that
                    // votes +1 for the true class and -1 for the mistake.
                    let mut alpha = vec![0.0f32; k];
                    alpha[ex.y as usize] = 1.0;
                    alpha[pred as usize] = -1.0;
                    model.supports.push(ex.x.clone());
                    model.alphas.push(alpha);
                    if model.supports.len() > cfg.max_supports {
                        model.supports.remove(0);
                        model.alphas.remove(0);
                    }
                }
            }
        }
        model
    }

    /// Number of retained support vectors.
    pub fn num_supports(&self) -> usize {
        self.supports.len()
    }

    /// RBF width in use.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }
}

impl Model for KernelSvm {
    fn name(&self) -> &str {
        &self.name
    }
    fn num_classes(&self) -> usize {
        self.num_classes
    }
    fn scores(&self, x: &[f32]) -> Vec<f32> {
        let mut s = vec![0.0f32; self.num_classes];
        for (support, alpha) in self.supports.iter().zip(self.alphas.iter()) {
            let kval = (-self.gamma * sq_dist(support, x)).exp();
            if kval > 1e-12 {
                for (si, &a) in s.iter_mut().zip(alpha.iter()) {
                    *si += a * kval;
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetSpec;
    use crate::eval::accuracy;

    fn small_ds() -> crate::datasets::Dataset {
        DatasetSpec::speech_like()
            .with_train_size(390)
            .with_test_size(100)
            .with_difficulty(0.3)
            .generate(33)
    }

    #[test]
    fn kernel_svm_learns() {
        let ds = small_ds();
        let m = KernelSvm::train(&ds, &KernelSvmConfig::default(), 4);
        let acc = accuracy(&m, &ds.test);
        assert!(acc > 0.6, "accuracy {acc}");
        assert!(m.num_supports() > 0);
    }

    #[test]
    fn support_budget_is_enforced() {
        let ds = small_ds();
        let cfg = KernelSvmConfig {
            max_supports: 50,
            ..Default::default()
        };
        let m = KernelSvm::train(&ds, &cfg, 4);
        assert!(m.num_supports() <= 50);
    }

    #[test]
    fn gamma_heuristic_is_positive_and_finite() {
        let ds = small_ds();
        let m = KernelSvm::train(&ds, &KernelSvmConfig::default(), 4);
        assert!(m.gamma() > 0.0 && m.gamma().is_finite());
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = small_ds();
        let a = KernelSvm::train(&ds, &KernelSvmConfig::default(), 8);
        let b = KernelSvm::train(&ds, &KernelSvmConfig::default(), 8);
        assert_eq!(a.num_supports(), b.num_supports());
        assert_eq!(a.scores(&ds.test[0].x), b.scores(&ds.test[0].x));
    }

    #[test]
    fn explicit_gamma_is_respected() {
        let ds = small_ds();
        let cfg = KernelSvmConfig {
            gamma: Some(0.25),
            ..Default::default()
        };
        let m = KernelSvm::train(&ds, &cfg, 4);
        assert_eq!(m.gamma(), 0.25);
    }
}
