//! Figure 5 — throughput increase from delayed batching.
//!
//! Sweeps the batch-wait timeout (0–4 ms) for two containers under a
//! bursty open-loop workload:
//!
//! - the Scikit-Learn linear SVM — high per-batch fixed cost, cheap
//!   marginal items: delaying dispatch amortizes the fixed cost and
//!   throughput climbs steeply (paper: 3.3× at 2 ms);
//! - the PySpark linear SVM — low fixed cost: delay buys nothing.
//!
//! Reports goodput, mean latency, and mean dispatched batch size.

use clipper_bench::{distinct_input, phase_duration, profile_transport, single_model_stack};
use clipper_containers::Fig3Model;
use clipper_core::BatchConfig;
use clipper_workload::report::fmt_qps;
use clipper_workload::{run_open_loop, ArrivalProcess, Table};
use std::time::Duration;

#[tokio::main(flavor = "multi_thread", worker_threads = 8)]
async fn main() {
    println!("== Figure 5: Throughput Increase from Delayed Batching ==\n");
    let slo = Duration::from_millis(20);
    // Bursty load (the regime the paper motivates with Nagle's algorithm):
    // bursts arrive faster than the SKLearn container can absorb at batch
    // size 1, with gaps between bursts.
    // ~3.6K qps mean in 10ms-on/10ms-off bursts: at burst onset an eager
    // dispatcher burns the SKLearn container's 2.5ms fixed cost on tiny
    // batches, pushing it past its capacity edge; Spark's fixed cost is
    // small enough that the same load is comfortable without delay.
    let arrivals = ArrivalProcess::Bursty {
        on_rate: 7_200.0,
        on: Duration::from_millis(10),
        off: Duration::from_millis(10),
    };

    let mut table = Table::new(&[
        "container",
        "wait timeout (µs)",
        "goodput (qps)",
        "mean latency (µs)",
        "mean batch",
        "capacity headroom (qps)",
    ]);

    for model in [Fig3Model::LinearSvmPyspark, Fig3Model::LinearSvmSklearn] {
        for wait_us in [0u64, 500, 1_000, 2_000, 3_000, 4_000] {
            let transport = profile_transport("fig5", model, 3);
            let (clipper, _) = single_model_stack(
                transport,
                BatchConfig {
                    batch_wait_timeout: Duration::from_micros(wait_us),
                    // Small queue so overload sheds instead of queueing
                    // unboundedly: goodput reflects capacity.
                    queue_capacity: 128,
                    slo,
                    ..Default::default()
                },
                // Generous app deadline: we want completion latency, not
                // straggler substitution, in this figure.
                Duration::from_millis(200),
            );
            let c = clipper.clone();
            let report = run_open_loop(arrivals.clone(), phase_duration(), 9, move |seq| {
                let clipper = c.clone();
                async move {
                    clipper
                        .predict("bench", None, distinct_input(0, seq, 8))
                        .await
                        .map(|p| p.models_used > 0)
                        .unwrap_or(false)
                }
            })
            .await;
            // Mean dispatched batch size from the queue's telemetry.
            let snap = clipper.registry().snapshot();
            let mean_batch = snap
                .values
                .iter()
                .find(|(k, _)| k.ends_with("batch_size"))
                .map(|(_, v)| match v {
                    clipper_metrics::MetricValue::Histogram { mean, .. } => *mean,
                    _ => 0.0,
                })
                .unwrap_or(0.0);
            // Capacity headroom: the container's sustainable rate at the
            // observed mean batch size — the quantity delayed batching
            // actually buys (fixed cost amortized across a bigger batch).
            let profile = clipper_containers::fig3_profile(model);
            let busy_per_query =
                profile.base.as_secs_f64() / mean_batch.max(1.0) + profile.per_item.as_secs_f64();
            table.row(&[
                model.label().to_string(),
                format!("{wait_us}"),
                fmt_qps(report.throughput()),
                format!("{:.0}", report.latency.mean()),
                format!("{mean_batch:.1}"),
                fmt_qps(1.0 / busy_per_query),
            ]);
        }
    }
    table.print();
    println!("\npaper reference: SKLearn SVM throughput gains ~3.3x by 2ms; Spark SVM flat; latency grows with the delay.");
    println!("note: our work-conserving dispatcher self-batches backlog, so goodput stays flat at this offered load;");
    println!("the delay's gain appears as capacity headroom — largest for the high-fixed-cost SKLearn container (§4.3.2).");
}
