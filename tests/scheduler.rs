//! Scheduler-level serving guarantees: depth-aware routing under replica
//! heterogeneity beats blind round-robin, and hot replica removal drains
//! without dropping or wedging queries.

use clipper::core::abstraction::{BatchConfig, ModelAbstractionLayer, SchedulerPolicy};
use clipper::core::{BatchStrategy, Input, ModelId, PredictError};
use clipper::metrics::Registry;
use clipper::rpc::message::{PredictReply, WireOutput};
use clipper::rpc::transport::BatchTransport;
use clipper::workload::{run_open_loop_outcomes, ArrivalProcess, LoadReport, RequestOutcome};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A replica with a fixed per-query service time, simulated with async
/// sleeps (no CPU burned): a batch of `n` costs `n × per_item`.
struct SimReplica {
    per_item: Duration,
    served: Arc<AtomicU64>,
}

impl BatchTransport for SimReplica {
    fn predict_batch(
        &self,
        inputs: &[Input],
    ) -> clipper::rpc::BoxFuture<Result<PredictReply, clipper::rpc::RpcError>> {
        let n = inputs.len();
        let (d, served) = (self.per_item, self.served.clone());
        Box::pin(async move {
            let total = d * n as u32;
            tokio::time::sleep(total).await;
            served.fetch_add(n as u64, Ordering::Relaxed);
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(0); n],
                queue_us: 0,
                compute_us: total.as_micros() as u64,
            })
        })
    }
    fn id(&self) -> String {
        "sim".into()
    }
}

fn sim(per_item: Duration) -> (Arc<dyn BatchTransport>, Arc<AtomicU64>) {
    let served = Arc::new(AtomicU64::new(0));
    (
        Arc::new(SimReplica {
            per_item,
            served: served.clone(),
        }),
        served,
    )
}

/// One fast + one 10×-slower replica under the given policy, driven
/// open-loop. Returns the load report and (fast, slow) served counts.
async fn drive_heterogeneous(policy: SchedulerPolicy, rate: f64) -> (LoadReport, u64, u64) {
    let mal = ModelAbstractionLayer::new(16, Registry::new());
    let m = ModelId::new("hetero", 1);
    mal.add_model_with_policy(
        m.clone(),
        BatchConfig {
            strategy: BatchStrategy::Fixed(64),
            queue_capacity: 64,
            pipeline_depth: 1,
            ..Default::default()
        },
        policy,
    );
    let (fast, fast_count) = sim(Duration::from_micros(500));
    let (slow, slow_count) = sim(Duration::from_millis(5)); // 10× slower
    mal.add_replica(&m, fast).unwrap();
    mal.add_replica(&m, slow).unwrap();

    let report = run_open_loop_outcomes(
        ArrivalProcess::Uniform { rate },
        Duration::from_millis(1_500),
        7,
        move |seq| {
            let mal = mal.clone();
            let m = m.clone();
            async move {
                match mal.predict(&m, Arc::new(vec![seq as f32]), false).await {
                    Ok(_) => RequestOutcome::Ok,
                    Err(PredictError::Overloaded) => RequestOutcome::Shed,
                    Err(_) => RequestOutcome::Error,
                }
            }
        },
    )
    .await;
    (
        report,
        fast_count.load(Ordering::Relaxed),
        slow_count.load(Ordering::Relaxed),
    )
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn p2c_beats_round_robin_under_replica_heterogeneity() {
    // Offered load: ~600 qps. The slow replica alone does 200 qps, so
    // round-robin's blind half-share (300 qps) drowns it — its queue
    // fills, latency explodes, and queries shed. Depth-aware p2c routes
    // around the backlog.
    let rate = 600.0;
    let (rr, rr_fast, rr_slow) = drive_heterogeneous(SchedulerPolicy::RoundRobin, rate).await;
    let (p2c, p2c_fast, p2c_slow) =
        drive_heterogeneous(SchedulerPolicy::PowerOfTwoChoices, rate).await;

    // The fast replica must carry a proportionally larger share under p2c.
    assert!(
        p2c_fast > p2c_slow * 3,
        "p2c share should favor the fast replica: fast {p2c_fast} vs slow {p2c_slow}"
    );
    // Round-robin splits blindly (sanity check on the baseline).
    assert!(
        rr_slow * 4 > rr_fast,
        "round-robin should split roughly evenly: fast {rr_fast} vs slow {rr_slow}"
    );

    // Tail latency: p2c must beat the round-robin baseline.
    assert!(
        p2c.p99_ms() < rr.p99_ms(),
        "p2c p99 {:.1}ms must beat round-robin p99 {:.1}ms",
        p2c.p99_ms(),
        rr.p99_ms()
    );

    // Sheds: round-robin backs the slow replica's queue up until it sheds;
    // p2c falls through to the fast replica instead.
    assert!(
        p2c.shed <= rr.shed,
        "p2c sheds ({}) must not exceed round-robin sheds ({})",
        p2c.shed,
        rr.shed
    );
    assert!(
        rr.shed > 0,
        "baseline sanity: round-robin should shed under this load"
    );
}

/// Two identical replicas; optionally teach their latency models
/// opposite curves before any traffic. Returns served counts for
/// (expensive-curve, cheap-curve) after `n` sequential predicts.
async fn drive_taught_curves(teach: bool, n: u32) -> (u64, u64) {
    let mal = ModelAbstractionLayer::new(16, Registry::new());
    let m = ModelId::new("taught", 1);
    mal.add_model_with_policy(
        m.clone(),
        BatchConfig {
            strategy: BatchStrategy::Fixed(8),
            ..Default::default()
        },
        SchedulerPolicy::PowerOfTwoChoices,
    );
    let (a, a_count) = sim(Duration::from_micros(50));
    let (b, b_count) = sim(Duration::from_micros(50));
    let qa = mal.add_replica(&m, a).unwrap();
    let qb = mal.add_replica(&m, b).unwrap();

    if teach {
        // Same slope, wildly different intercepts: replica A "measured"
        // expensive (α ≈ 50ms), replica B cheap (α ≈ 100µs). The batch
        // spread gives the fit enough variance to establish.
        let teach_curve = |qid: &str, alpha_us: u64| {
            let model = mal.replica_latency_model(&m, qid).unwrap();
            for round in 0..2u64 {
                for batch in 1..=8usize {
                    model.observe(
                        batch,
                        Duration::from_micros(alpha_us + 10 * batch as u64 + round),
                    );
                }
            }
            assert!(model.is_established(), "taught curve is established");
        };
        teach_curve(&qa, 50_000);
        teach_curve(&qb, 100);
    }

    // Sequential queries: occupancy is 0-vs-0 at every pick, so raw
    // depth signals cannot separate the replicas — only the curves can.
    for i in 0..n {
        mal.predict(&m, Arc::new(vec![i as f32]), false)
            .await
            .unwrap();
    }
    (
        a_count.load(Ordering::Relaxed),
        b_count.load(Ordering::Relaxed),
    )
}

/// Satellite A/B for learned-curve scoring: with both replicas' `α+β·b̂`
/// models established, p2c must route by predicted cost (the cheap
/// replica takes ≥ 90%); without curves, identical replicas split the
/// traffic — proof the preference comes from the curves, not the tie
/// break.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn p2c_prefers_the_learned_cheaper_curve_when_established() {
    let n = 400u32;
    let (cold_a, cold_b) = drive_taught_curves(false, n).await;
    let (hot_a, hot_b) = drive_taught_curves(true, n).await;

    // Control: no curves, identical replicas — both serve real shares.
    assert_eq!(cold_a + cold_b, n as u64);
    assert!(
        cold_a.min(cold_b) * 5 >= n as u64,
        "cold routing splits (≥20% each): a {cold_a} vs b {cold_b}"
    );

    // Treatment: the cheap curve dominates routing.
    assert_eq!(hot_a + hot_b, n as u64);
    assert!(
        hot_b * 10 >= n as u64 * 9,
        "established curves steer ≥90% to the cheap replica: \
         expensive {hot_a} vs cheap {hot_b}"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn facade_hot_remove_drains_mid_traffic() {
    use clipper::core::{AppConfig, Clipper, PolicyKind};

    let clipper = Clipper::builder().build();
    let m = ModelId::new("m", 1);
    clipper.add_model(
        m.clone(),
        BatchConfig {
            strategy: BatchStrategy::Fixed(8),
            ..Default::default()
        },
    );
    let (t1, _c1) = sim(Duration::from_micros(400));
    let (t2, _c2) = sim(Duration::from_micros(400));
    let q1 = clipper.add_replica(&m, t1).unwrap();
    clipper.add_replica(&m, t2).unwrap();
    clipper.register_app(
        AppConfig::new("app", vec![m.clone()])
            .with_policy(PolicyKind::Static { model_index: 0 })
            .with_slo(Duration::from_millis(500)),
    );

    let mut tasks = Vec::new();
    for i in 0..100 {
        let clipper = clipper.clone();
        tasks.push(tokio::spawn(async move {
            clipper.predict("app", None, Arc::new(vec![i as f32])).await
        }));
    }
    tokio::time::sleep(Duration::from_millis(3)).await;
    let removed = clipper.remove_replica(&m, &q1).unwrap();
    assert_eq!(clipper.abstraction().replica_count(&m), 1);

    let mut served = 0;
    for t in tasks {
        let p = t.await.unwrap().unwrap();
        if p.models_used > 0 {
            served += 1;
        }
    }
    removed.drained().await;
    assert_eq!(
        clipper.abstraction().cache().pending_len(),
        0,
        "no wedged cache entries after hot removal"
    );
    assert_eq!(served, 100, "no prediction may be dropped by the drain");
}
