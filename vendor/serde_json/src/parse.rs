//! Recursive-descent JSON parser producing [`serde::Content`].

use crate::Error;
use serde::Content;

pub fn parse(bytes: &[u8]) -> Result<Content, Error> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Content::Seq(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]`"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Content::Map(entries)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}`"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.eat_keyword("\\u")?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp).ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    if len == 1 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}
