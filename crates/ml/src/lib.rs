//! From-scratch machine-learning substrate for Clipper.
//!
//! The Clipper paper serves models trained in Scikit-Learn, Spark MLlib,
//! TensorFlow, Caffe, and HTK. Those frameworks are not available here, so
//! this crate implements the *same model families* directly in Rust:
//!
//! | Paper model | This crate |
//! |---|---|
//! | SKLearn/PySpark linear SVM | [`models::LinearSvm`] (one-vs-rest hinge SGD) |
//! | SKLearn logistic regression | [`models::LogisticRegression`] (softmax SGD) |
//! | SKLearn kernel SVM | [`models::KernelSvm`] (RBF over a support set) |
//! | SKLearn random forest | [`models::RandomForest`] / [`models::DecisionTree`] |
//! | Caffe/TensorFlow conv nets | [`models::Mlp`] + the GPU latency simulator in `clipper-containers` |
//! | HTK HMM phoneme models | [`speech::DialectModel`] |
//!
//! What matters to the serving experiments is that these models have the
//! *native computational shape* of their framework counterparts: the linear
//! SVM really is a single dense dot product per class, and the kernel SVM
//! really pays O(supports × dims) per query, which is why their Figure-3
//! latency profiles differ by orders of magnitude.
//!
//! Datasets are seeded synthetic Gaussian mixtures shaped after Table 1
//! (MNIST 784×10, CIFAR 3072×10, ImageNet-like high-dimensional many-class,
//! TIMIT-like 8-dialect speech); see [`datasets`].

pub mod datasets;
pub mod eval;
pub mod linalg;
pub mod models;
pub mod speech;

pub use datasets::{Dataset, DatasetSpec, Example};
pub use eval::{accuracy, top_k_accuracy, zero_one_loss};
pub use models::{Label, Model};
