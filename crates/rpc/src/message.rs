//! Wire messages and their binary encoding.
//!
//! The codec is hand-rolled on [`bytes`]: every frame is
//!
//! ```text
//! +-------+---------+----------+------------+-------------+---------+
//! | magic | version | msg_type | request_id | payload_len | payload |
//! |  u32  |   u8    |    u8    |    u64     |     u32     |  bytes  |
//! +-------+---------+----------+------------+-------------+---------+
//! ```
//!
//! little-endian throughout. Feature vectors are shipped as raw `f32` runs,
//! so a batch of `b` MNIST images costs `b × 784 × 4` payload bytes — the
//! quantity the Figure-6 network-bottleneck experiment meters.

use crate::error::RpcError;
use crate::transport::Input;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::sync::Arc;

/// Frame magic ("CLIP" little-endianized).
pub const MAGIC: u32 = 0xC11B_BE55;
/// Protocol version.
pub const VERSION: u8 = 1;
/// Hard cap on payload size (64 MiB) to bound memory under corruption.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// A model container's prediction for one input.
#[derive(Clone, Debug, PartialEq)]
pub enum WireOutput {
    /// Single class label (object recognition).
    Class(u32),
    /// Per-class scores.
    Scores(Vec<f32>),
    /// Label sequence (speech transcription).
    Labels(Vec<u32>),
}

impl WireOutput {
    /// The scalar label this output argmaxes to, used by ensemble voting.
    pub fn label(&self) -> u32 {
        match self {
            WireOutput::Class(c) => *c,
            WireOutput::Scores(s) => {
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for (i, &v) in s.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best as u32
            }
            WireOutput::Labels(l) => l.first().copied().unwrap_or(0),
        }
    }

    /// Approximate encoded size in bytes (for network simulation).
    pub fn wire_size(&self) -> usize {
        match self {
            WireOutput::Class(_) => 5,
            WireOutput::Scores(s) => 5 + 4 * s.len(),
            WireOutput::Labels(l) => 5 + 4 * l.len(),
        }
    }
}

/// A completed batch prediction, with container-side timing for the
/// Figure-11 latency decomposition.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct PredictReply {
    /// One output per input, in order.
    pub outputs: Vec<WireOutput>,
    /// Microseconds the batch spent queued inside the container before
    /// compute started (e.g. waiting for the GPU).
    pub queue_us: u64,
    /// Microseconds of model compute.
    pub compute_us: u64,
}

/// All protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Container → Clipper: announce a model.
    Register {
        /// Container instance name (unique per connection).
        container_name: String,
        /// Model this container serves.
        model_name: String,
        /// Model version.
        model_version: u32,
    },
    /// Clipper → container: registration accepted.
    RegisterAck,
    /// Clipper → container: evaluate a batch.
    ///
    /// Inputs are `Arc`-shared feature vectors: building this message from
    /// a dispatched batch clones pointers only; the `f32` payload is read
    /// directly out of the shared vectors at encode time.
    PredictRequest {
        /// Feature vectors, one per query.
        inputs: Vec<Input>,
    },
    /// Container → Clipper: batch results.
    PredictResponse(PredictReply),
    /// Container → Clipper: the batch failed.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Liveness probe (either direction).
    Heartbeat,
    /// Liveness reply.
    HeartbeatAck,
    /// Graceful shutdown notice.
    Shutdown,
}

impl Message {
    fn msg_type(&self) -> u8 {
        match self {
            Message::Register { .. } => 1,
            Message::RegisterAck => 2,
            Message::PredictRequest { .. } => 3,
            Message::PredictResponse(_) => 4,
            Message::Error { .. } => 5,
            Message::Heartbeat => 6,
            Message::HeartbeatAck => 7,
            Message::Shutdown => 8,
        }
    }

    /// Encode into a full frame (header + payload).
    pub fn encode(&self, request_id: u64) -> Bytes {
        let mut payload = BytesMut::new();
        match self {
            Message::Register {
                container_name,
                model_name,
                model_version,
            } => {
                put_string(&mut payload, container_name);
                put_string(&mut payload, model_name);
                payload.put_u32_le(*model_version);
            }
            Message::RegisterAck
            | Message::Heartbeat
            | Message::HeartbeatAck
            | Message::Shutdown => {}
            Message::PredictRequest { inputs } => {
                payload.put_u32_le(inputs.len() as u32);
                for input in inputs {
                    put_f32s(&mut payload, input);
                }
            }
            Message::PredictResponse(reply) => {
                payload.put_u64_le(reply.queue_us);
                payload.put_u64_le(reply.compute_us);
                payload.put_u32_le(reply.outputs.len() as u32);
                for out in &reply.outputs {
                    match out {
                        WireOutput::Class(c) => {
                            payload.put_u8(0);
                            payload.put_u32_le(*c);
                        }
                        WireOutput::Scores(s) => {
                            payload.put_u8(1);
                            put_f32s(&mut payload, s);
                        }
                        WireOutput::Labels(l) => {
                            payload.put_u8(2);
                            payload.put_u32_le(l.len() as u32);
                            for &v in l {
                                payload.put_u32_le(v);
                            }
                        }
                    }
                }
            }
            Message::Error { message } => {
                put_string(&mut payload, message);
            }
        }

        let mut frame = BytesMut::with_capacity(18 + payload.len());
        frame.put_u32_le(MAGIC);
        frame.put_u8(VERSION);
        frame.put_u8(self.msg_type());
        frame.put_u64_le(request_id);
        frame.put_u32_le(payload.len() as u32);
        frame.extend_from_slice(&payload);
        frame.freeze()
    }

    /// Decode a payload given its already-parsed header fields.
    pub fn decode(msg_type: u8, mut payload: Bytes) -> Result<Message, RpcError> {
        let msg = match msg_type {
            1 => {
                let container_name = get_string(&mut payload)?;
                let model_name = get_string(&mut payload)?;
                let model_version = get_u32(&mut payload)?;
                Message::Register {
                    container_name,
                    model_name,
                    model_version,
                }
            }
            2 => Message::RegisterAck,
            3 => {
                let n = get_u32(&mut payload)? as usize;
                let mut inputs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    inputs.push(Arc::new(get_f32s(&mut payload)?));
                }
                Message::PredictRequest { inputs }
            }
            4 => {
                let queue_us = get_u64(&mut payload)?;
                let compute_us = get_u64(&mut payload)?;
                let n = get_u32(&mut payload)? as usize;
                let mut outputs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let tag = get_u8(&mut payload)?;
                    outputs.push(match tag {
                        0 => WireOutput::Class(get_u32(&mut payload)?),
                        1 => WireOutput::Scores(get_f32s(&mut payload)?),
                        2 => {
                            let len = get_u32(&mut payload)? as usize;
                            let mut l = Vec::with_capacity(len.min(1 << 20));
                            for _ in 0..len {
                                l.push(get_u32(&mut payload)?);
                            }
                            WireOutput::Labels(l)
                        }
                        t => {
                            return Err(RpcError::Protocol(format!("bad output tag {t}")));
                        }
                    });
                }
                Message::PredictResponse(PredictReply {
                    outputs,
                    queue_us,
                    compute_us,
                })
            }
            5 => Message::Error {
                message: get_string(&mut payload)?,
            },
            6 => Message::Heartbeat,
            7 => Message::HeartbeatAck,
            8 => Message::Shutdown,
            t => return Err(RpcError::Protocol(format!("unknown message type {t}"))),
        };
        if payload.has_remaining() {
            return Err(RpcError::Protocol(format!(
                "{} trailing bytes after message type {msg_type}",
                payload.remaining()
            )));
        }
        Ok(msg)
    }

    /// Approximate frame size in bytes (header + payload), used by the
    /// simulated network links.
    pub fn wire_size(&self) -> usize {
        let payload = match self {
            Message::Register {
                container_name,
                model_name,
                ..
            } => 8 + container_name.len() + model_name.len() + 4,
            Message::RegisterAck
            | Message::Heartbeat
            | Message::HeartbeatAck
            | Message::Shutdown => 0,
            Message::PredictRequest { inputs } => {
                4 + inputs.iter().map(|i| 4 + 4 * i.len()).sum::<usize>()
            }
            Message::PredictResponse(r) => {
                20 + r.outputs.iter().map(WireOutput::wire_size).sum::<usize>()
            }
            Message::Error { message } => 4 + message.len(),
        };
        18 + payload
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_f32s(buf: &mut BytesMut, vals: &[f32]) {
    buf.put_u32_le(vals.len() as u32);
    for &v in vals {
        buf.put_f32_le(v);
    }
}

fn get_u8(buf: &mut Bytes) -> Result<u8, RpcError> {
    if buf.remaining() < 1 {
        return Err(RpcError::Protocol("truncated u8".into()));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> Result<u32, RpcError> {
    if buf.remaining() < 4 {
        return Err(RpcError::Protocol("truncated u32".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, RpcError> {
    if buf.remaining() < 8 {
        return Err(RpcError::Protocol("truncated u64".into()));
    }
    Ok(buf.get_u64_le())
}

fn get_string(buf: &mut Bytes) -> Result<String, RpcError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(RpcError::Protocol("truncated string".into()));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| RpcError::Protocol("invalid utf8".into()))
}

fn get_f32s(buf: &mut Bytes) -> Result<Vec<f32>, RpcError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len * 4 {
        return Err(RpcError::Protocol("truncated f32 array".into()));
    }
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(buf.get_f32_le());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::as_inputs;

    fn roundtrip(msg: Message) -> Message {
        let frame = msg.encode(42);
        // Skip the 18-byte header; decode the payload.
        let mut b = Bytes::copy_from_slice(&frame);
        let magic = b.get_u32_le();
        assert_eq!(magic, MAGIC);
        assert_eq!(b.get_u8(), VERSION);
        let mt = b.get_u8();
        assert_eq!(b.get_u64_le(), 42);
        let plen = b.get_u32_le() as usize;
        assert_eq!(b.remaining(), plen);
        Message::decode(mt, b).expect("decode")
    }

    #[test]
    fn register_roundtrips() {
        let m = Message::Register {
            container_name: "c0".into(),
            model_name: "linear-svm".into(),
            model_version: 3,
        };
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn predict_request_roundtrips() {
        let m = Message::PredictRequest {
            inputs: as_inputs(vec![vec![1.0, -2.5, 3.25], vec![], vec![0.0; 17]]),
        };
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn predict_response_roundtrips_all_output_kinds() {
        let m = Message::PredictResponse(PredictReply {
            outputs: vec![
                WireOutput::Class(9),
                WireOutput::Scores(vec![0.1, 0.9]),
                WireOutput::Labels(vec![1, 2, 3]),
            ],
            queue_us: 1_000,
            compute_us: 2_000,
        });
        assert_eq!(roundtrip(m.clone()), m);
    }

    #[test]
    fn control_messages_roundtrip() {
        for m in [
            Message::RegisterAck,
            Message::Heartbeat,
            Message::HeartbeatAck,
            Message::Shutdown,
            Message::Error {
                message: "boom".into(),
            },
        ] {
            assert_eq!(roundtrip(m.clone()), m);
        }
    }

    #[test]
    fn unknown_type_is_protocol_error() {
        let err = Message::decode(99, Bytes::new()).unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)));
    }

    #[test]
    fn truncated_payload_is_protocol_error() {
        let m = Message::PredictRequest {
            inputs: as_inputs(vec![vec![1.0, 2.0]]),
        };
        let frame = m.encode(1);
        // Chop the last 3 bytes off the payload.
        let truncated = Bytes::copy_from_slice(&frame[18..frame.len() - 3]);
        let err = Message::decode(3, truncated).unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = BytesMut::new();
        payload.put_u32_le(0); // zero inputs
        payload.put_u8(0xFF); // junk
        let err = Message::decode(3, payload.freeze()).unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)));
    }

    #[test]
    fn wire_size_matches_encoded_length() {
        let msgs = vec![
            Message::Heartbeat,
            Message::PredictRequest {
                inputs: as_inputs(vec![vec![1.0; 784]; 4]),
            },
            Message::PredictResponse(PredictReply {
                outputs: vec![WireOutput::Class(1), WireOutput::Scores(vec![0.5; 10])],
                queue_us: 5,
                compute_us: 6,
            }),
            Message::Register {
                container_name: "abc".into(),
                model_name: "defg".into(),
                model_version: 1,
            },
        ];
        for m in msgs {
            assert_eq!(m.wire_size(), m.encode(0).len(), "msg {m:?}");
        }
    }

    #[test]
    fn output_label_argmaxes_scores() {
        assert_eq!(WireOutput::Class(7).label(), 7);
        assert_eq!(WireOutput::Scores(vec![0.1, 0.7, 0.2]).label(), 1);
        assert_eq!(WireOutput::Labels(vec![4, 5]).label(), 4);
        assert_eq!(WireOutput::Labels(vec![]).label(), 0);
    }
}
