//! The sharded, versioned in-memory map.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

const DEFAULT_SHARDS: usize = 16;

/// Result of a compare-and-swap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CasOutcome {
    /// Value stored; this is the new version.
    Stored(u64),
    /// Version mismatch; contains the current version.
    Conflict(u64),
    /// Key did not exist (CAS requires an existing key).
    Missing,
}

struct Entry {
    value: Vec<u8>,
    version: u64,
    expires_at: Option<Instant>,
}

impl Entry {
    fn is_expired(&self, now: Instant) -> bool {
        self.expires_at.is_some_and(|t| t <= now)
    }
}

/// A concurrent KV store with per-key versions and TTLs.
///
/// Versions increase monotonically per key across its lifetime in the map,
/// enabling optimistic concurrency for selection-state read-modify-write:
/// `get_versioned` → mutate → `cas`.
pub struct StateStore {
    shards: Vec<RwLock<HashMap<String, Entry>>>,
}

impl Default for StateStore {
    fn default() -> Self {
        Self::new()
    }
}

impl StateStore {
    /// Create a store with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Create a store with `n` shards (≥1).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1);
        StateStore {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, Entry>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let idx = (hasher.finish() as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Get a value (None if absent or expired).
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.get_versioned(key).map(|(v, _)| v)
    }

    /// Get a value and its version.
    pub fn get_versioned(&self, key: &str) -> Option<(Vec<u8>, u64)> {
        let now = Instant::now();
        let shard = self.shard(key);
        {
            let map = shard.read();
            match map.get(key) {
                Some(e) if !e.is_expired(now) => {
                    return Some((e.value.clone(), e.version));
                }
                Some(_) => {} // expired: fall through to remove
                None => return None,
            }
        }
        // Lazy expiry: upgrade to a write lock and drop the dead entry.
        let mut map = shard.write();
        if map.get(key).is_some_and(|e| e.is_expired(now)) {
            map.remove(key);
        }
        None
    }

    /// Set a value unconditionally. Returns the new version.
    pub fn set(&self, key: &str, value: Vec<u8>) -> u64 {
        let mut map = self.shard(key).write();
        let next_version = map.get(key).map_or(1, |e| e.version + 1);
        map.insert(
            key.to_string(),
            Entry {
                value,
                version: next_version,
                expires_at: None,
            },
        );
        next_version
    }

    /// Set only if the key is absent (or expired). Returns true if stored.
    pub fn set_nx(&self, key: &str, value: Vec<u8>) -> bool {
        let now = Instant::now();
        let mut map = self.shard(key).write();
        match map.get(key) {
            Some(e) if !e.is_expired(now) => false,
            _ => {
                let next_version = map.get(key).map_or(1, |e| e.version + 1);
                map.insert(
                    key.to_string(),
                    Entry {
                        value,
                        version: next_version,
                        expires_at: None,
                    },
                );
                true
            }
        }
    }

    /// Compare-and-swap: store `value` only if the current version equals
    /// `expected_version`.
    pub fn cas(&self, key: &str, expected_version: u64, value: Vec<u8>) -> CasOutcome {
        let now = Instant::now();
        let mut map = self.shard(key).write();
        match map.get_mut(key) {
            Some(e) if e.is_expired(now) => {
                map.remove(key);
                CasOutcome::Missing
            }
            Some(e) if e.version == expected_version => {
                e.value = value;
                e.version += 1;
                CasOutcome::Stored(e.version)
            }
            Some(e) => CasOutcome::Conflict(e.version),
            None => CasOutcome::Missing,
        }
    }

    /// Delete a key; returns true if it existed (and was unexpired).
    pub fn del(&self, key: &str) -> bool {
        let now = Instant::now();
        let mut map = self.shard(key).write();
        match map.remove(key) {
            Some(e) => !e.is_expired(now),
            None => false,
        }
    }

    /// Set a TTL on an existing key; returns false if the key is absent.
    pub fn expire(&self, key: &str, ttl: Duration) -> bool {
        let now = Instant::now();
        let mut map = self.shard(key).write();
        match map.get_mut(key) {
            Some(e) if !e.is_expired(now) => {
                e.expires_at = Some(now + ttl);
                true
            }
            _ => false,
        }
    }

    /// All live keys starting with `prefix`, sorted. O(n) over the store —
    /// a configuration-plane operation (registry rehydration, `KEYS` over
    /// the wire), not a serving-path one.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let now = Instant::now();
        let mut keys: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .filter(|(k, e)| k.starts_with(prefix) && !e.is_expired(now))
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        keys.sort();
        keys
    }

    /// Number of live (unexpired) keys. O(n): for tests and reporting.
    pub fn len(&self) -> usize {
        let now = Instant::now();
        self.shards
            .iter()
            .map(|s| s.read().values().filter(|e| !e.is_expired(now)).count())
            .sum()
    }

    /// Whether the store has no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let s = StateStore::new();
        assert!(s.get("a").is_none());
        s.set("a", b"hello".to_vec());
        assert_eq!(s.get("a").unwrap(), b"hello");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn versions_increase_monotonically() {
        let s = StateStore::new();
        let v1 = s.set("k", b"1".to_vec());
        let v2 = s.set("k", b"2".to_vec());
        assert!(v2 > v1);
        let (val, v) = s.get_versioned("k").unwrap();
        assert_eq!(val, b"2");
        assert_eq!(v, v2);
    }

    #[test]
    fn cas_happy_path_and_conflict() {
        let s = StateStore::new();
        let v = s.set("k", b"a".to_vec());
        assert_eq!(s.cas("k", v, b"b".to_vec()), CasOutcome::Stored(v + 1));
        // Stale version now conflicts.
        assert_eq!(s.cas("k", v, b"c".to_vec()), CasOutcome::Conflict(v + 1));
        assert_eq!(s.get("k").unwrap(), b"b");
        assert_eq!(s.cas("missing", 1, b"x".to_vec()), CasOutcome::Missing);
    }

    #[test]
    fn set_nx_only_first_wins() {
        let s = StateStore::new();
        assert!(s.set_nx("k", b"first".to_vec()));
        assert!(!s.set_nx("k", b"second".to_vec()));
        assert_eq!(s.get("k").unwrap(), b"first");
    }

    #[test]
    fn delete_removes() {
        let s = StateStore::new();
        s.set("k", b"v".to_vec());
        assert!(s.del("k"));
        assert!(!s.del("k"));
        assert!(s.get("k").is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn expiry_hides_and_removes_keys() {
        let s = StateStore::new();
        s.set("k", b"v".to_vec());
        assert!(s.expire("k", Duration::from_millis(20)));
        assert!(s.get("k").is_some());
        std::thread::sleep(Duration::from_millis(30));
        assert!(s.get("k").is_none());
        assert_eq!(s.len(), 0);
        // Expired keys can't get TTLs.
        assert!(!s.expire("k", Duration::from_millis(10)));
    }

    #[test]
    fn expired_key_set_again_bumps_version() {
        let s = StateStore::new();
        let v1 = s.set("k", b"v".to_vec());
        s.expire("k", Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
        // set_nx succeeds on the expired key and version still advances.
        assert!(s.set_nx("k", b"w".to_vec()));
        let (_, v2) = s.get_versioned("k").unwrap();
        assert!(v2 > v1, "version must not regress across expiry");
    }

    #[test]
    fn concurrent_cas_allows_exactly_one_winner_per_round() {
        let s = std::sync::Arc::new(StateStore::new());
        s.set("counter", b"0".to_vec());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                let mut wins = 0;
                for _ in 0..200 {
                    let (val, ver) = s.get_versioned("counter").unwrap();
                    let n: u64 = String::from_utf8(val).unwrap().parse().unwrap();
                    if let CasOutcome::Stored(_) =
                        s.cas("counter", ver, (n + 1).to_string().into_bytes())
                    {
                        wins += 1;
                    }
                }
                wins
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let final_n: u64 = String::from_utf8(s.get("counter").unwrap())
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(final_n, total, "every CAS win increments exactly once");
    }

    #[test]
    fn prefix_scan_returns_sorted_live_keys() {
        let s = StateStore::new();
        s.set("config/app/b", b"1".to_vec());
        s.set("config/app/a", b"1".to_vec());
        s.set("config/model/m", b"1".to_vec());
        s.set("other", b"1".to_vec());
        assert_eq!(
            s.keys_with_prefix("config/app/"),
            vec!["config/app/a".to_string(), "config/app/b".to_string()]
        );
        assert_eq!(s.keys_with_prefix("config/").len(), 3);
        // Expired keys are hidden from the scan.
        s.expire("config/app/a", Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(
            s.keys_with_prefix("config/app/"),
            vec!["config/app/b".to_string()]
        );
    }

    #[test]
    fn single_shard_store_works() {
        let s = StateStore::with_shards(1);
        s.set("a", b"1".to_vec());
        s.set("b", b"2".to_vec());
        assert_eq!(s.len(), 2);
    }
}
