//! Async frame reader/writer.
//!
//! Frames are written as a single buffered write and read with exact-length
//! reads; the framing layer validates magic, version, and payload bounds
//! before handing payload bytes to [`Message::decode`].

use crate::error::RpcError;
use crate::message::{Message, MAGIC, MAX_PAYLOAD, VERSION};
use bytes::{Buf, Bytes};
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// Header length: magic(4) + version(1) + type(1) + request_id(8) + len(4).
pub const HEADER_LEN: usize = 18;

/// Write one message frame.
pub async fn write_frame<W: AsyncWrite + Unpin>(
    writer: &mut W,
    msg: &Message,
    request_id: u64,
) -> Result<(), RpcError> {
    let frame = msg.encode(request_id);
    writer.write_all(&frame).await?;
    writer.flush().await?;
    Ok(())
}

/// Read one message frame; returns `(request_id, message)`.
pub async fn read_frame<R: AsyncRead + Unpin>(reader: &mut R) -> Result<(u64, Message), RpcError> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header).await.map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            RpcError::ConnectionClosed
        } else {
            RpcError::Io(e)
        }
    })?;
    let mut h = &header[..];
    let magic = h.get_u32_le();
    if magic != MAGIC {
        return Err(RpcError::Protocol(format!("bad magic {magic:#x}")));
    }
    let version = h.get_u8();
    if version != VERSION {
        return Err(RpcError::Protocol(format!("unsupported version {version}")));
    }
    let msg_type = h.get_u8();
    let request_id = h.get_u64_le();
    let payload_len = h.get_u32_le() as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(RpcError::Protocol(format!(
            "payload {payload_len} exceeds max {MAX_PAYLOAD}"
        )));
    }
    let mut payload = vec![0u8; payload_len];
    reader.read_exact(&mut payload).await.map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            RpcError::ConnectionClosed
        } else {
            RpcError::Io(e)
        }
    })?;
    let msg = Message::decode(msg_type, Bytes::from(payload))?;
    Ok((request_id, msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::PredictReply;
    use crate::message::WireOutput;

    #[tokio::test]
    async fn frame_roundtrip_over_duplex() {
        let (mut a, mut b) = tokio::io::duplex(64 * 1024);
        let msg = Message::PredictRequest {
            inputs: crate::transport::as_inputs(vec![vec![1.0, 2.0], vec![3.0]]),
        };
        write_frame(&mut a, &msg, 7).await.unwrap();
        let (id, got) = read_frame(&mut b).await.unwrap();
        assert_eq!(id, 7);
        assert_eq!(got, msg);
    }

    #[tokio::test]
    async fn multiple_frames_in_sequence() {
        let (mut a, mut b) = tokio::io::duplex(64 * 1024);
        let msgs = vec![
            Message::Heartbeat,
            Message::PredictResponse(PredictReply {
                outputs: vec![WireOutput::Class(3)],
                queue_us: 1,
                compute_us: 2,
            }),
            Message::Shutdown,
        ];
        for (i, m) in msgs.iter().enumerate() {
            write_frame(&mut a, m, i as u64).await.unwrap();
        }
        for (i, m) in msgs.iter().enumerate() {
            let (id, got) = read_frame(&mut b).await.unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&got, m);
        }
    }

    #[tokio::test]
    async fn closed_peer_yields_connection_closed() {
        let (a, mut b) = tokio::io::duplex(1024);
        drop(a);
        let err = read_frame(&mut b).await.unwrap_err();
        assert!(matches!(err, RpcError::ConnectionClosed));
    }

    #[tokio::test]
    async fn bad_magic_rejected() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        a.write_all(&[0u8; HEADER_LEN]).await.unwrap();
        let err = read_frame(&mut b).await.unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)));
    }

    #[tokio::test]
    async fn oversized_payload_rejected_without_allocation() {
        use bytes::BufMut;
        let (mut a, mut b) = tokio::io::duplex(1024);
        let mut header = bytes::BytesMut::new();
        header.put_u32_le(MAGIC);
        header.put_u8(VERSION);
        header.put_u8(6); // heartbeat
        header.put_u64_le(0);
        header.put_u32_le(u32::MAX); // absurd payload length
        a.write_all(&header).await.unwrap();
        let err = read_frame(&mut b).await.unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)));
    }
}
