//! Config-churn-under-load: a first-class benchmarkable scenario.
//!
//! The paper's control plane (§3, §6.3) promises that applications and
//! model versions change *while traffic flows* — a rollout must not drop
//! queries. This module drives exactly that: open-loop load against a
//! request function while a schedule of control-plane actions (rollouts,
//! app updates — any async closure, typically an HTTP call) fires at
//! fixed offsets into the run. The report pairs the usual
//! [`LoadReport`] with each action's outcome, so a test or bench can
//! assert "N rollouts landed, 0 predictions dropped".

use crate::arrivals::ArrivalProcess;
use crate::driver::{run_open_loop_outcomes, LoadReport, RequestOutcome};
use std::future::Future;
use std::net::SocketAddr;
use std::pin::Pin;
use std::time::{Duration, Instant};
use tokio::io::{AsyncReadExt, AsyncWriteExt};

/// Issue one HTTP/1.1 request on a fresh connection and return
/// `(status, body)` — the client half of a churn action (or of a test
/// driving the frontend). Deliberately minimal: request line + `host`,
/// `content-type`, `content-length`, `connection: close`.
pub async fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nhost: clipper\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut conn = tokio::net::TcpStream::connect(addr).await?;
    conn.write_all(raw.as_bytes()).await?;
    conn.shutdown().await?;
    let mut resp = String::new();
    conn.read_to_string(&mut resp).await?;
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// A boxed control-plane action: resolves to `Ok(summary)` or
/// `Err(failure)`.
pub type ActionFuture = Pin<Box<dyn Future<Output = Result<String, String>> + Send>>;

/// One scheduled control-plane action.
pub struct ChurnAction {
    /// Offset into the run at which the action fires.
    pub at: Duration,
    /// Label for the report (e.g. `"rollout m→v2"`).
    pub label: String,
    /// The action itself.
    pub run: ActionFuture,
}

impl ChurnAction {
    /// Schedule `action` at `at` into the run.
    pub fn at<F>(at: Duration, label: &str, action: F) -> Self
    where
        F: Future<Output = Result<String, String>> + Send + 'static,
    {
        ChurnAction {
            at,
            label: label.to_string(),
            run: Box::pin(action),
        }
    }
}

/// How one scheduled action went.
#[derive(Clone, Debug)]
pub struct ActionOutcome {
    /// The action's label.
    pub label: String,
    /// When it actually fired (offset into the run).
    pub fired_at: Duration,
    /// How long it took.
    pub took: Duration,
    /// `Ok(summary)` or `Err(failure)`.
    pub result: Result<String, String>,
}

/// Results of a churn run: the load report plus per-action outcomes.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// The sustained-traffic report (errors/shed counted as usual).
    pub load: LoadReport,
    /// Every scheduled action's outcome, in schedule order.
    pub actions: Vec<ActionOutcome>,
}

impl ChurnReport {
    /// Whether every action succeeded.
    pub fn all_actions_ok(&self) -> bool {
        self.actions.iter().all(|a| a.result.is_ok())
    }

    /// Queries that were *lost*: hard failures, excluding explicit
    /// admission sheds. A shed query (`Overloaded` → 429 with
    /// `"shed": true`) was answered — the client was told, promptly and
    /// truthfully, that the system refused it — so it is a routing
    /// decision, not a dropped query. `LoadReport::errors` counts sheds
    /// as a subset; this subtracts them back out.
    pub fn lost(&self) -> u64 {
        self.load.errors.saturating_sub(self.load.shed)
    }

    /// Whether the run lost nothing: zero *lost* queries (explicit
    /// admission sheds are tolerated — they are answered 429s, not
    /// losses) and every control action succeeded. Soak runs assert this
    /// while deliberately overdriving the system; use
    /// [`is_undisturbed`](Self::is_undisturbed) when sheds must not
    /// happen either.
    pub fn is_lossless(&self) -> bool {
        self.lost() == 0 && self.all_actions_ok()
    }

    /// The strict form: no errors of any kind *and* no sheds — traffic
    /// never even noticed the churn. This is the old `is_lossless`
    /// meaning, kept for scenarios run below admission-control limits.
    pub fn is_undisturbed(&self) -> bool {
        self.load.errors == 0 && self.load.shed == 0 && self.all_actions_ok()
    }
}

/// Drive open-loop traffic for `duration` while firing `actions` at their
/// offsets. Traffic and actions run concurrently; the report joins both.
///
/// `f(seq)` performs one request and classifies it (see
/// [`RequestOutcome`]).
pub async fn run_open_loop_with_churn<F, Fut>(
    arrivals: ArrivalProcess,
    duration: Duration,
    seed: u64,
    f: F,
    actions: Vec<ChurnAction>,
) -> ChurnReport
where
    F: Fn(u64) -> Fut + Send + Sync + Clone + 'static,
    Fut: Future<Output = RequestOutcome> + Send + 'static,
{
    let start = Instant::now();
    let mut action_tasks = Vec::with_capacity(actions.len());
    for action in actions {
        action_tasks.push(tokio::spawn(async move {
            tokio::time::sleep(action.at.saturating_sub(start.elapsed())).await;
            let fired_at = start.elapsed();
            let t0 = Instant::now();
            let result = action.run.await;
            ActionOutcome {
                label: action.label,
                fired_at,
                took: t0.elapsed(),
                result,
            }
        }));
    }

    let load = run_open_loop_outcomes(arrivals, duration, seed, f).await;

    let mut outcomes = Vec::with_capacity(action_tasks.len());
    for t in action_tasks {
        match t.await {
            Ok(outcome) => outcomes.push(outcome),
            Err(_) => outcomes.push(ActionOutcome {
                label: "<action task panicked>".into(),
                fired_at: start.elapsed(),
                took: Duration::ZERO,
                result: Err("action task panicked".into()),
            }),
        }
    }
    ChurnReport {
        load,
        actions: outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn actions_fire_mid_traffic_and_are_reported() {
        let flipped = Arc::new(AtomicBool::new(false));
        let probe = flipped.clone();
        let report = run_open_loop_with_churn(
            ArrivalProcess::Uniform { rate: 400.0 },
            Duration::from_millis(300),
            7,
            move |_seq| {
                let probe = probe.clone();
                async move {
                    // Requests observe whichever "config" is live.
                    let _ = probe.load(Ordering::Relaxed);
                    RequestOutcome::Ok
                }
            },
            vec![
                ChurnAction::at(Duration::from_millis(100), "flip", {
                    let flipped = flipped.clone();
                    async move {
                        flipped.store(true, Ordering::Relaxed);
                        Ok("flipped".into())
                    }
                }),
                ChurnAction::at(Duration::from_millis(150), "fails", async {
                    Err("nope".into())
                }),
            ],
        )
        .await;
        assert!(report.load.completed > 0);
        assert_eq!(report.actions.len(), 2);
        assert_eq!(report.actions[0].result, Ok("flipped".into()));
        assert!(report.actions[0].fired_at >= Duration::from_millis(95));
        assert!(report.actions[1].result.is_err());
        assert!(!report.all_actions_ok());
        assert!(!report.is_lossless());
        assert!(flipped.load(Ordering::Relaxed));
    }

    #[test]
    fn sheds_are_tolerated_by_is_lossless_but_lost_queries_are_not() {
        // Regression: `is_lossless` used to require `shed == 0`, so a soak
        // that deliberately overdrives admission control could never
        // assert "zero lost". Sheds are answered 429s — only errors
        // *beyond* the shed count are losses.
        let report_with = |errors: u64, shed: u64| ChurnReport {
            load: LoadReport {
                duration: Duration::from_secs(1),
                completed: 100,
                errors,
                shed,
                lost: errors.saturating_sub(shed),
                latency: clipper_metrics::Histogram::new().snapshot(),
            },
            actions: vec![ActionOutcome {
                label: "noop".into(),
                fired_at: Duration::ZERO,
                took: Duration::ZERO,
                result: Ok("ok".into()),
            }],
        };
        // Sheds only: nothing lost; lossless but not undisturbed.
        let shed_only = report_with(7, 7);
        assert_eq!(shed_only.lost(), 0);
        assert!(shed_only.is_lossless());
        assert!(!shed_only.is_undisturbed());
        // A hard failure beyond the sheds is a loss.
        let lossy = report_with(8, 7);
        assert_eq!(lossy.lost(), 1);
        assert!(!lossy.is_lossless());
        assert!(!lossy.is_undisturbed());
        // Clean run: both hold.
        let clean = report_with(0, 0);
        assert!(clean.is_lossless() && clean.is_undisturbed());
        // A failed action spoils losslessness even with clean traffic.
        let mut failed_action = report_with(0, 0);
        failed_action.actions[0].result = Err("boom".into());
        assert!(!failed_action.is_lossless());
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn lossless_run_is_recognized() {
        let report = run_open_loop_with_churn(
            ArrivalProcess::Uniform { rate: 300.0 },
            Duration::from_millis(150),
            1,
            |_seq| async { RequestOutcome::Ok },
            vec![ChurnAction::at(Duration::from_millis(50), "noop", async {
                Ok("done".into())
            })],
        )
        .await;
        assert!(report.is_lossless());
    }
}
