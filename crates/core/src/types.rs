//! Core domain types shared across both layers.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A versioned model identity (`Predict(m, x)`'s `m`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelId {
    /// Model name, e.g. `"mnist-linear-svm"`.
    pub name: String,
    /// Version; bumping it deploys a new model transparently (§2.2).
    pub version: u32,
}

impl ModelId {
    /// Construct a model id.
    pub fn new(name: &str, version: u32) -> Self {
        ModelId {
            name: name.to_string(),
            version,
        }
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:v{}", self.name, self.version)
    }
}

/// A query input: a shared feature vector. `Arc` because one input fans out
/// to many models, queues, batches, and cache keys without copying — the
/// alias lives in `clipper-rpc` so transports speak the same shared type.
pub use clipper_rpc::transport::Input;

/// A model (or ensemble) output. Re-exported wire type so containers,
/// cache, and policies speak the same language.
pub use clipper_rpc::message::WireOutput as Output;

/// Ground-truth feedback joined against earlier predictions (§5).
#[derive(Clone, Debug, PartialEq)]
pub struct Feedback {
    /// The true outcome for the input.
    pub truth: Output,
}

impl Feedback {
    /// Feedback with a class label.
    pub fn class(label: u32) -> Self {
        Feedback {
            truth: Output::Class(label),
        }
    }

    /// Feedback with a label sequence (speech transcription).
    pub fn labels(seq: Vec<u32>) -> Self {
        Feedback {
            truth: Output::Labels(seq),
        }
    }
}

/// Loss in `[0, 1]` between a prediction and the truth — the quantity the
/// bandit policies consume (§5.1): zero-one loss for labels/scores,
/// per-position error rate for sequences.
pub fn output_loss(pred: &Output, truth: &Output) -> f64 {
    match (pred, truth) {
        (Output::Labels(p), Output::Labels(t)) => {
            if p.is_empty() && t.is_empty() {
                return 0.0;
            }
            let len = p.len().max(t.len());
            let mismatch =
                p.iter().zip(t.iter()).filter(|(a, b)| a != b).count() + p.len().abs_diff(t.len());
            mismatch as f64 / len as f64
        }
        _ => {
            if pred.label() == truth.label() {
                0.0
            } else {
                1.0
            }
        }
    }
}

/// The final answer returned to an application.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Combined output.
    pub output: Output,
    /// Agreement-based confidence in `[0, 1]` (§5.2.1).
    pub confidence: f64,
    /// Models whose real predictions arrived by the deadline.
    pub models_used: usize,
    /// Models whose predictions were substituted (stragglers, §5.2.2).
    pub models_missing: usize,
    /// End-to-end latency of this prediction.
    pub latency: Duration,
}

impl Prediction {
    /// Whether an application with `threshold` confidence should fall back
    /// to its sensible default action (§5.2.1).
    pub fn is_confident(&self, threshold: f64) -> bool {
        self.confidence >= threshold
    }
}

/// Which selection policy an application uses.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub enum PolicyKind {
    /// Exp3 single-model bandit (§5.1); `eta` is the learning rate.
    Exp3 {
        /// Learning rate (the paper's η).
        eta: f64,
    },
    /// Exp4 ensemble bandit (§5.2).
    Exp4 {
        /// Learning rate (the paper's η).
        eta: f64,
    },
    /// ε-greedy single-model selection (extension).
    EpsilonGreedy {
        /// Exploration probability.
        epsilon: f64,
    },
    /// UCB1 single-model selection (extension).
    Ucb1,
    /// Thompson-sampling single-model selection (extension).
    Thompson,
    /// Always query every model, combine by unweighted vote (no learning).
    MajorityVote,
    /// Always use one fixed model.
    Static {
        /// Index into the app's candidate model list.
        model_index: usize,
    },
}

impl Default for PolicyKind {
    fn default() -> Self {
        PolicyKind::Exp3 { eta: 0.1 }
    }
}

/// An application registration: candidate models, SLO, policy.
#[derive(Clone, Debug)]
pub struct AppConfig {
    /// Application name (routing key for predict/feedback).
    pub name: String,
    /// Candidate models the selection layer chooses among.
    pub candidate_models: Vec<ModelId>,
    /// Selection policy.
    pub policy: PolicyKind,
    /// Latency objective; also the straggler deadline.
    pub slo: Duration,
    /// Answer used when no model responds in time at all.
    pub default_output: Output,
    /// Seed for the policy's reproducible randomness.
    pub seed: u64,
}

impl AppConfig {
    /// An app with defaults: Exp3(η=0.1), 20 ms SLO, class-0 default.
    pub fn new(name: &str, candidate_models: Vec<ModelId>) -> Self {
        AppConfig {
            name: name.to_string(),
            candidate_models,
            policy: PolicyKind::default(),
            slo: Duration::from_millis(20),
            default_output: Output::Class(0),
            seed: 0,
        }
    }

    /// Set the selection policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Set the latency objective.
    pub fn with_slo(mut self, slo: Duration) -> Self {
        self.slo = slo;
        self
    }

    /// Set the default output.
    pub fn with_default_output(mut self, output: Output) -> Self {
        self.default_output = output;
        self
    }

    /// Set the policy seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Apply a live-update delta, returning the amended config.
    pub fn apply(mut self, update: AppUpdate) -> Self {
        if let Some(slo) = update.slo {
            self.slo = slo;
        }
        if let Some(policy) = update.policy {
            self.policy = policy;
        }
        if let Some(models) = update.candidate_models {
            self.candidate_models = models;
        }
        if let Some(out) = update.default_output {
            self.default_output = out;
        }
        if let Some(seed) = update.seed {
            self.seed = seed;
        }
        self
    }
}

/// A partial update to a registered application (`PATCH` semantics):
/// `None` fields keep their current values. Applied atomically by
/// `Clipper::update_app` — in-flight predicts keep the configuration they
/// started with; the next predict sees the amended one.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AppUpdate {
    /// New latency objective (and straggler deadline).
    pub slo: Option<Duration>,
    /// New selection policy.
    pub policy: Option<PolicyKind>,
    /// New candidate model set.
    pub candidate_models: Option<Vec<ModelId>>,
    /// New default output.
    pub default_output: Option<Output>,
    /// New policy seed.
    pub seed: Option<u64>,
}

impl AppUpdate {
    /// A delta that changes nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the latency objective.
    pub fn with_slo(mut self, slo: Duration) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Set the selection policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Set the candidate model set.
    pub fn with_candidate_models(mut self, models: Vec<ModelId>) -> Self {
        self.candidate_models = Some(models);
        self
    }

    /// Set the default output.
    pub fn with_default_output(mut self, output: Output) -> Self {
        self.default_output = Some(output);
        self
    }

    /// Set the policy seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_id_display() {
        assert_eq!(ModelId::new("svm", 2).to_string(), "svm:v2");
    }

    #[test]
    fn zero_one_loss_on_labels() {
        assert_eq!(output_loss(&Output::Class(1), &Output::Class(1)), 0.0);
        assert_eq!(output_loss(&Output::Class(1), &Output::Class(2)), 1.0);
        // Scores compare by argmax.
        assert_eq!(
            output_loss(&Output::Scores(vec![0.1, 0.9]), &Output::Class(1)),
            0.0
        );
    }

    #[test]
    fn sequence_loss_is_fractional() {
        let loss = output_loss(
            &Output::Labels(vec![1, 2, 3, 4]),
            &Output::Labels(vec![1, 2, 0, 0]),
        );
        assert!((loss - 0.5).abs() < 1e-9);
        assert_eq!(
            output_loss(&Output::Labels(vec![]), &Output::Labels(vec![])),
            0.0
        );
    }

    #[test]
    fn confidence_threshold_check() {
        let p = Prediction {
            output: Output::Class(1),
            confidence: 0.8,
            models_used: 4,
            models_missing: 1,
            latency: Duration::from_millis(5),
        };
        assert!(p.is_confident(0.8));
        assert!(!p.is_confident(0.9));
    }

    #[test]
    fn app_update_applies_only_set_fields() {
        let cfg = AppConfig::new("a", vec![ModelId::new("m", 1)])
            .with_slo(Duration::from_millis(10))
            .with_seed(3);
        let updated = cfg.clone().apply(
            AppUpdate::new()
                .with_slo(Duration::from_millis(40))
                .with_policy(PolicyKind::MajorityVote),
        );
        assert_eq!(updated.slo, Duration::from_millis(40));
        assert_eq!(updated.policy, PolicyKind::MajorityVote);
        // Untouched fields survive.
        assert_eq!(updated.seed, 3);
        assert_eq!(updated.candidate_models, cfg.candidate_models);
        // The empty delta is the identity.
        let same = cfg.clone().apply(AppUpdate::new());
        assert_eq!(same.slo, cfg.slo);
        assert_eq!(same.policy, cfg.policy);
    }

    #[test]
    fn app_config_builder_chain() {
        let cfg = AppConfig::new("a", vec![ModelId::new("m", 1)])
            .with_policy(PolicyKind::Ucb1)
            .with_slo(Duration::from_millis(50))
            .with_default_output(Output::Class(9))
            .with_seed(7);
        assert_eq!(cfg.policy, PolicyKind::Ucb1);
        assert_eq!(cfg.slo, Duration::from_millis(50));
        assert_eq!(cfg.default_output, Output::Class(9));
        assert_eq!(cfg.seed, 7);
    }
}
