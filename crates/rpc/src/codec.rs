//! Async frame reader/writer with per-connection buffer reuse.
//!
//! The hot path is [`FrameWriter`] / [`FrameReader`]: each retains one
//! buffer for the life of the connection, so steady-state framing does
//! zero allocation and one syscall per direction. A writer can
//! [`queue`](FrameWriter::queue) several frames and flush them as a
//! single `write` — the RPC writer tasks drain their outbound channel
//! this way, so responses that land in one readiness window coalesce.
//!
//! The free functions [`write_frame`] / [`read_frame`] are the simple
//! one-shot equivalents, kept for handshakes and tests that speak the
//! raw protocol; the framing layer validates magic, version, and payload
//! bounds before handing payload bytes to [`Message::decode`].

use crate::error::RpcError;
use crate::message::{Message, MAGIC, MAX_PAYLOAD, VERSION};
use tokio::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};

/// Header length: magic(4) + version(1) + type(1) + request_id(8) + len(4).
pub const HEADER_LEN: usize = 18;

/// Initial capacity for retained connection buffers.
const INITIAL_BUF: usize = 16 * 1024;
/// Retained buffers above this shrink back after the frame that grew
/// them is gone, so one 64 MiB frame doesn't pin 64 MiB per connection.
const MAX_RETAINED: usize = 1 << 20;

/// Parse and validate an 18-byte frame header.
/// Returns `(msg_type, request_id, payload_len)`.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u64, usize), RpcError> {
    let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(RpcError::Protocol(format!("bad magic {magic:#x}")));
    }
    let version = header[4];
    if version != VERSION {
        return Err(RpcError::Protocol(format!("unsupported version {version}")));
    }
    let msg_type = header[5];
    let request_id = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(header[14..18].try_into().expect("4 bytes")) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(RpcError::Protocol(format!(
            "payload {payload_len} exceeds max {MAX_PAYLOAD}"
        )));
    }
    Ok((msg_type, request_id, payload_len))
}

fn map_eof(e: std::io::Error) -> RpcError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        RpcError::ConnectionClosed
    } else {
        RpcError::Io(e)
    }
}

/// Buffered frame encoder over an async writer.
///
/// Frames are encoded into one retained buffer; [`flush`](Self::flush)
/// writes everything queued so far as a single `write_all`. Encoding
/// allocates only when a frame outgrows the retained capacity, and the
/// buffer shrinks back once an oversized flush completes.
pub struct FrameWriter<W> {
    writer: W,
    buf: Vec<u8>,
}

impl<W: AsyncWrite + Unpin> FrameWriter<W> {
    /// Wrap `writer` with an empty retained buffer.
    pub fn new(writer: W) -> Self {
        FrameWriter {
            writer,
            buf: Vec::with_capacity(INITIAL_BUF),
        }
    }

    /// Encode one frame into the retained buffer without writing it.
    pub fn queue(&mut self, msg: &Message, request_id: u64) {
        msg.encode_into(request_id, &mut self.buf);
    }

    /// Bytes queued and not yet flushed.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Write everything queued as one `write_all` and flush the writer.
    pub async fn flush(&mut self) -> Result<(), RpcError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.writer.write_all(&self.buf).await?;
        self.writer.flush().await?;
        self.buf.clear();
        if self.buf.capacity() > MAX_RETAINED {
            self.buf = Vec::with_capacity(INITIAL_BUF);
        }
        Ok(())
    }

    /// Queue one frame and flush immediately.
    pub async fn send(&mut self, msg: &Message, request_id: u64) -> Result<(), RpcError> {
        self.queue(msg, request_id);
        self.flush().await
    }
}

/// Buffered frame decoder over an async reader.
///
/// Reads land in one retained buffer; each decoded frame borrows its
/// payload straight out of that buffer (zero copy — [`Message::decode`]
/// copies only the values that escape). Steady state allocates nothing
/// in the framing layer.
pub struct FrameReader<R> {
    reader: R,
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf`.
    start: usize,
    /// End of valid bytes in `buf`.
    end: usize,
}

impl<R: AsyncRead + Unpin> FrameReader<R> {
    /// Wrap `reader` with an empty retained buffer.
    pub fn new(reader: R) -> Self {
        FrameReader {
            reader,
            buf: vec![0u8; INITIAL_BUF],
            start: 0,
            end: 0,
        }
    }

    /// Read the next frame; returns `(request_id, message)`.
    ///
    /// Yields [`RpcError::ConnectionClosed`] on clean EOF at a frame
    /// boundary and on EOF mid-frame (a torn frame is indistinguishable
    /// from a peer dying mid-write; both mean the connection is done).
    pub async fn next(&mut self) -> Result<(u64, Message), RpcError> {
        self.ensure(HEADER_LEN).await?;
        let header: &[u8; HEADER_LEN] = self.buf[self.start..self.start + HEADER_LEN]
            .try_into()
            .expect("HEADER_LEN bytes");
        let (msg_type, request_id, payload_len) = parse_header(header)?;
        self.ensure(HEADER_LEN + payload_len).await?;
        let payload = &self.buf[self.start + HEADER_LEN..self.start + HEADER_LEN + payload_len];
        let msg = Message::decode(msg_type, payload)?;
        self.start += HEADER_LEN + payload_len;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
            if self.buf.len() > MAX_RETAINED {
                self.buf = vec![0u8; INITIAL_BUF];
            }
        }
        Ok((request_id, msg))
    }

    /// Make at least `n` unconsumed bytes available at `self.start`.
    async fn ensure(&mut self, n: usize) -> Result<(), RpcError> {
        if self.end - self.start >= n {
            return Ok(());
        }
        // Compact so the frame can be contiguous from index 0.
        if self.start > 0 && self.start + n > self.buf.len() {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        if n > self.buf.len() {
            self.buf.resize(n.max(self.buf.len() * 2), 0);
        }
        while self.end - self.start < n {
            let got = self.reader.read(&mut self.buf[self.end..]).await?;
            if got == 0 {
                return Err(RpcError::ConnectionClosed);
            }
            self.end += got;
        }
        Ok(())
    }
}

/// Write one message frame (one-shot; hot paths use [`FrameWriter`]).
pub async fn write_frame<W: AsyncWrite + Unpin>(
    writer: &mut W,
    msg: &Message,
    request_id: u64,
) -> Result<(), RpcError> {
    let frame = msg.encode(request_id);
    writer.write_all(&frame).await?;
    writer.flush().await?;
    Ok(())
}

/// Read one message frame (one-shot; hot paths use [`FrameReader`]).
/// Returns `(request_id, message)`.
pub async fn read_frame<R: AsyncRead + Unpin>(reader: &mut R) -> Result<(u64, Message), RpcError> {
    let mut header = [0u8; HEADER_LEN];
    reader.read_exact(&mut header).await.map_err(map_eof)?;
    let (msg_type, request_id, payload_len) = parse_header(&header)?;
    let mut payload = vec![0u8; payload_len];
    reader.read_exact(&mut payload).await.map_err(map_eof)?;
    let msg = Message::decode(msg_type, &payload)?;
    Ok((request_id, msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::PredictReply;
    use crate::message::WireOutput;
    use tokio::io::AsyncWriteExt;

    #[tokio::test]
    async fn frame_roundtrip_over_duplex() {
        let (mut a, mut b) = tokio::io::duplex(64 * 1024);
        let msg = Message::PredictRequest {
            inputs: crate::transport::as_inputs(vec![vec![1.0, 2.0], vec![3.0]]),
        };
        write_frame(&mut a, &msg, 7).await.unwrap();
        let (id, got) = read_frame(&mut b).await.unwrap();
        assert_eq!(id, 7);
        assert_eq!(got, msg);
    }

    #[tokio::test]
    async fn multiple_frames_in_sequence() {
        let (mut a, mut b) = tokio::io::duplex(64 * 1024);
        let msgs = vec![
            Message::Heartbeat,
            Message::PredictResponse(PredictReply {
                outputs: vec![WireOutput::Class(3)],
                queue_us: 1,
                compute_us: 2,
            }),
            Message::Shutdown,
        ];
        for (i, m) in msgs.iter().enumerate() {
            write_frame(&mut a, m, i as u64).await.unwrap();
        }
        for (i, m) in msgs.iter().enumerate() {
            let (id, got) = read_frame(&mut b).await.unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&got, m);
        }
    }

    #[tokio::test]
    async fn writer_coalesces_queued_frames_reader_splits_them() {
        let (a, mut b) = tokio::io::duplex(64 * 1024);
        let msgs = vec![
            Message::Heartbeat,
            Message::PredictRequest {
                inputs: crate::transport::as_inputs(vec![vec![1.5; 9]]),
            },
            Message::Error {
                message: "e".into(),
            },
        ];
        let mut w = FrameWriter::new(a);
        for (i, m) in msgs.iter().enumerate() {
            w.queue(m, i as u64);
        }
        assert!(w.pending() > 0);
        w.flush().await.unwrap();
        assert_eq!(w.pending(), 0);

        let mut r = FrameReader::new(b);
        for (i, m) in msgs.iter().enumerate() {
            let (id, got) = r.next().await.unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&got, m);
        }
        // Reuse after idle: another send on the same pair still works.
        w.send(&Message::Shutdown, 99).await.unwrap();
        let (id, got) = r.next().await.unwrap();
        assert_eq!((id, got), (99, Message::Shutdown));
        b = r.reader;
        drop(w);
        let mut tail = Vec::new();
        use tokio::io::AsyncReadExt;
        b.read_to_end(&mut tail).await.unwrap();
        assert!(tail.is_empty(), "no stray bytes left on the wire");
    }

    #[tokio::test]
    async fn reader_handles_frames_larger_than_initial_buffer() {
        let (mut a, b) = tokio::io::duplex(1 << 20);
        // ~100 KiB payload: forces the retained read buffer to grow.
        let big = Message::PredictRequest {
            inputs: crate::transport::as_inputs(vec![vec![0.5; 25_000]]),
        };
        let small = Message::Heartbeat;
        let writer = tokio::spawn(async move {
            write_frame(&mut a, &big, 1).await.unwrap();
            write_frame(&mut a, &small, 2).await.unwrap();
            big
        });
        let mut r = FrameReader::new(b);
        let (id, got) = r.next().await.unwrap();
        let big = writer.await.unwrap();
        assert_eq!(id, 1);
        assert_eq!(got, big);
        let (id, got) = r.next().await.unwrap();
        assert_eq!((id, got), (2, Message::Heartbeat));
    }

    #[tokio::test]
    async fn reader_buffer_shrinks_after_oversized_frame() {
        let (mut a, b) = tokio::io::duplex(8 << 20);
        let big = Message::PredictRequest {
            inputs: crate::transport::as_inputs(vec![vec![0.0; 600_000]]), // ~2.4 MB
        };
        let writer = tokio::spawn(async move {
            write_frame(&mut a, &big, 1).await.unwrap();
            write_frame(&mut a, &Message::Heartbeat, 2).await.unwrap();
        });
        let mut r = FrameReader::new(b);
        r.next().await.unwrap();
        assert!(
            r.buf.len() <= MAX_RETAINED,
            "buffer should shrink back, still {} bytes",
            r.buf.len()
        );
        let (id, _) = r.next().await.unwrap();
        assert_eq!(id, 2);
        writer.await.unwrap();
    }

    #[tokio::test]
    async fn closed_peer_yields_connection_closed() {
        let (a, mut b) = tokio::io::duplex(1024);
        drop(a);
        let err = read_frame(&mut b).await.unwrap_err();
        assert!(matches!(err, RpcError::ConnectionClosed));
    }

    #[tokio::test]
    async fn closed_peer_yields_connection_closed_for_frame_reader() {
        let (a, b) = tokio::io::duplex(1024);
        drop(a);
        let mut r = FrameReader::new(b);
        let err = r.next().await.unwrap_err();
        assert!(matches!(err, RpcError::ConnectionClosed));
    }

    #[tokio::test]
    async fn eof_mid_frame_yields_connection_closed() {
        let (mut a, b) = tokio::io::duplex(1024);
        let frame = Message::Error {
            message: "partial".into(),
        }
        .encode(5);
        a.write_all(&frame[..frame.len() - 2]).await.unwrap();
        drop(a);
        let mut r = FrameReader::new(b);
        let err = r.next().await.unwrap_err();
        assert!(matches!(err, RpcError::ConnectionClosed));
    }

    #[tokio::test]
    async fn bad_magic_rejected() {
        let (mut a, mut b) = tokio::io::duplex(1024);
        a.write_all(&[0u8; HEADER_LEN]).await.unwrap();
        let err = read_frame(&mut b).await.unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)));
    }

    #[tokio::test]
    async fn oversized_payload_rejected_without_allocation() {
        use bytes::BufMut;
        let (mut a, b) = tokio::io::duplex(1024);
        let mut header = bytes::BytesMut::new();
        header.put_u32_le(MAGIC);
        header.put_u8(VERSION);
        header.put_u8(6); // heartbeat
        header.put_u64_le(0);
        header.put_u32_le(u32::MAX); // absurd payload length
        a.write_all(&header).await.unwrap();
        let mut r = FrameReader::new(b);
        let err = r.next().await.unwrap_err();
        assert!(matches!(err, RpcError::Protocol(_)));
    }
}
