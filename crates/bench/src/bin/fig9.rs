//! Figure 9 — straggler mitigation as ensembles grow.
//!
//! Ensembles of 2–16 single-tree containers (a random forest served as an
//! ensemble, as in the paper's SK-Learn RF on MNIST) behind transports
//! with injected stragglers. Two configurations per size:
//!
//! - **blocking**: the app's deadline is far beyond any straggler, so
//!   `combine` waits for every model — tail latency grows with ensemble
//!   size (Figure 9a "Stragglers");
//! - **mitigated**: a 20 ms SLO; `combine` fires at the deadline with
//!   whatever arrived (Figure 9a "Straggler Mitigation"), trading a small
//!   accuracy loss (9c) for bounded latency, with the missing fraction
//!   reported (9b).

use clipper_bench::phase_duration;
use clipper_containers::{
    ContainerConfig, ContainerLogic, LocalContainerTransport, ModelContainer, TimingModel,
};
use clipper_core::{AppConfig, BatchConfig, Clipper, Feedback, ModelId, PolicyKind};
use clipper_metrics::{Counter, Histogram};
use clipper_ml::datasets::DatasetSpec;
use clipper_ml::models::{DecisionTree, DecisionTreeConfig};
use clipper_rpc::faulty::{FaultConfig, FaultyTransport};
use clipper_workload::Table;
use std::sync::Arc;
use std::time::Duration;

#[tokio::main(flavor = "multi_thread", worker_threads = 8)]
async fn main() {
    println!("== Figure 9: Straggler Mitigation vs Ensemble Size ==\n");
    let ds = DatasetSpec::mnist_like()
        .with_train_size(900)
        .with_test_size(400)
        .with_difficulty(0.12)
        .generate(23);

    let mut table = Table::new(&[
        "ensemble",
        "mode",
        "mean lat (ms)",
        "p99 lat (ms)",
        "% missing (mean)",
        "accuracy",
    ]);

    for &size in &[2usize, 4, 8, 12, 16] {
        for (mode, slo) in [
            ("blocking", Duration::from_millis(400)),
            ("mitigated", Duration::from_millis(20)),
        ] {
            let clipper = Clipper::builder().build();
            let mut ids = Vec::new();
            for t in 0..size {
                // One bootstrap tree per container.
                let mut bag = ds.clone();
                let n = bag.train.len();
                bag.train.rotate_left((t * 97) % n);
                bag.train.truncate(n / 2);
                let tree = Arc::new(DecisionTree::train_on(
                    &bag.train,
                    ds.num_classes(),
                    &DecisionTreeConfig {
                        max_depth: 8,
                        feature_subsample: Some(48),
                        ..Default::default()
                    },
                    t as u64,
                ));
                let id = ModelId::new(&format!("tree-{t}"), 1);
                clipper.add_model(id.clone(), BatchConfig::default());
                let container = ModelContainer::new(ContainerConfig {
                    name: format!("tree-{t}:0"),
                    model_name: format!("tree-{t}"),
                    model_version: 1,
                    logic: ContainerLogic::Classifier(tree),
                    timing: TimingModel::Measured,
                    seed: t as u64,
                });
                // Straggler injection: every container occasionally stalls
                // well past the SLO (the paper's stragglers come from load
                // interference across many containers).
                let faulty = Arc::new(FaultyTransport::new(
                    LocalContainerTransport::new(container),
                    FaultConfig {
                        base_delay: Duration::from_millis(2),
                        jitter: Duration::from_millis(6),
                        straggler_prob: 0.03,
                        straggler_delay: Duration::from_millis(60),
                        drop_prob: 0.0,
                    },
                    1_000 + t as u64,
                ));
                clipper.add_replica(&id, faulty).expect("replica");
                ids.push(id);
            }
            clipper.register_app(
                AppConfig::new("forest", ids)
                    .with_policy(PolicyKind::MajorityVote)
                    .with_slo(slo),
            );

            let latency = Histogram::new();
            let missing_pct = Histogram::new();
            let correct = Counter::new();
            let total = Counter::new();

            let deadline = std::time::Instant::now() + phase_duration();
            let mut i = 0usize;
            while std::time::Instant::now() < deadline {
                let ex = &ds.test[i % ds.test.len()];
                let input: clipper_core::Input = Arc::new(ex.x.clone());
                let p = clipper
                    .predict("forest", None, input.clone())
                    .await
                    .unwrap();
                latency.record(p.latency.as_micros() as u64);
                missing_pct.record((100 * p.models_missing / size) as u64);
                total.inc();
                if p.output.label() == ex.y {
                    correct.inc();
                }
                // Light feedback traffic keeps the join path realistic.
                if i % 10 == 0 {
                    let _ = clipper
                        .feedback("forest", None, input, Feedback::class(ex.y))
                        .await;
                }
                i += 1;
            }

            let lat = latency.snapshot();
            let miss = missing_pct.snapshot();
            table.row(&[
                format!("{size}"),
                mode.to_string(),
                format!("{:.1}", lat.mean() / 1_000.0),
                format!("{:.1}", lat.p99() as f64 / 1_000.0),
                format!("{:.1}", miss.mean()),
                format!("{:.3}", correct.get() as f64 / total.get().max(1) as f64),
            ]);
        }
    }
    table.print();
    println!("\npaper reference: blocking P99 rises sharply with ensemble size (≫20ms); mitigation holds latency at the SLO,");
    println!("missing stays small (most predictions arrive), and accuracy dips only slightly vs blocking");
}
