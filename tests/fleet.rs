//! Fleet-manager integration tests: container self-registration over
//! HTTP and RPC, the heartbeat-driven `Healthy → Suspect → Expired`
//! state machine with zero-drop drains and warm re-admission, the
//! registration races the control plane must survive, and the
//! idempotency contract between fleet expiry and the suspect sweep.

use clipper::containers::{
    spawn_tcp_container, ContainerConfig, ContainerLogic, ModelContainer, TimingModel,
};
use clipper::core::api::{HeartbeatReport, ReplicaSpec};
use clipper::core::{
    ApiError, AppConfig, BatchConfig, Clipper, FleetConfig, FleetEvent, FnLauncher, HttpFrontend,
    ModelId, Output, PolicyKind, ReplicaLauncher,
};
use clipper::rpc::faulty::{FaultConfig, FaultyTransport};
use clipper::rpc::message::{PredictReply, WireOutput};
use clipper::rpc::transport::{BatchTransport, FnTransport, Input};
use clipper::statestore::StateStore;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CAPABILITY: &str = "test:inproc";

/// A transport answering a constant label.
fn const_transport(label: u32) -> Arc<dyn BatchTransport> {
    Arc::new(FnTransport::new(
        &format!("const-{label}"),
        move |inputs: &[Input]| {
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(label); inputs.len()],
                queue_us: 0,
                compute_us: 20,
            })
        },
    ))
}

/// A launcher attaching `const_transport(label)` under [`CAPABILITY`].
fn const_launcher(label: u32) -> Arc<dyn ReplicaLauncher> {
    Arc::new(FnLauncher::new(CAPABILITY, move |_rec| {
        const_transport(label)
    }))
}

fn spec(name: &str) -> ReplicaSpec {
    ReplicaSpec {
        container_name: name.to_string(),
        model_name: "m".into(),
        model_version: 1,
        capabilities: vec![CAPABILITY.into()],
    }
}

/// A Clipper with model `m` v1 (no replicas yet) and an app over it.
fn base_clipper(store: Option<Arc<StateStore>>, fleet_cfg: FleetConfig) -> Clipper {
    let mut builder = Clipper::builder().fleet_config(fleet_cfg);
    if let Some(store) = store {
        builder = builder.statestore(store);
    }
    let clipper = builder.build();
    let m = ModelId::new("m", 1);
    clipper.add_model(m.clone(), BatchConfig::default());
    clipper.register_app(
        AppConfig::new("app", vec![m])
            .with_policy(PolicyKind::Static { model_index: 0 })
            .with_slo(Duration::from_millis(200))
            .with_default_output(Output::Class(0)),
    );
    clipper
}

/// Issue one HTTP request on a fresh connection; return (status, body).
async fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    clipper::workload::http_request(addr, method, path, body)
        .await
        .expect("http request")
}

/// A container self-registers over `POST /api/v1/replicas`, the frontend
/// attaches it through a matching launcher, and it serves traffic; the
/// rest of the `/api/v1/replicas` CRUD surface round-trips.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn http_registration_attaches_a_replica_and_serves() {
    let clipper = base_clipper(None, FleetConfig::default());
    clipper.fleet().add_launcher(const_launcher(7));
    let frontend = HttpFrontend::bind("127.0.0.1:0", clipper.clone())
        .await
        .unwrap();
    let addr = frontend.local_addr();

    // Announcing an unknown model is a 404, not a silent accept.
    let (status, body) = http(
        addr,
        "POST",
        "/api/v1/replicas",
        "{\"container_name\":\"c-0\",\"model_name\":\"ghost\",\"model_version\":1}",
    )
    .await;
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("model_unknown"), "{body}");

    // A real registration attaches immediately (launcher matched).
    let (status, body) = http(
        addr,
        "POST",
        "/api/v1/replicas",
        "{\"container_name\":\"c-0\",\"model_name\":\"m\",\"model_version\":1,\
         \"capabilities\":[\"test:inproc\"]}",
    )
    .await;
    assert_eq!(status, 201, "{body}");
    assert!(
        body.contains("\"queue_id\":\""),
        "attached in-process: {body}"
    );
    assert!(body.contains("\"warm_start\":false"), "{body}");
    assert!(body.contains("\"heartbeat_interval_ms\""), "{body}");

    // ...and serves predictions through the app.
    let (status, body) = http(addr, "POST", "/apps/app/predict", "{\"input\":[1.0]}").await;
    assert_eq!(status, 200, "{body}");

    // Membership is visible, one row, healthy.
    let (status, body) = http(addr, "GET", "/api/v1/replicas", "").await;
    assert_eq!(status, 200);
    assert!(body.contains("\"container_name\":\"c-0\""), "{body}");
    assert!(body.contains("\"health\":\"healthy\""), "{body}");
    let (status, body) = http(addr, "GET", "/api/v1/replicas/c-0", "").await;
    assert_eq!(status, 200, "{body}");

    // A liveness beat (empty body allowed) answers with the view.
    let (status, body) = http(addr, "POST", "/api/v1/replicas/c-0/heartbeat", "").await;
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"health\":\"healthy\""), "{body}");

    // Graceful deregistration frees the name and the view.
    let (status, body) = http(addr, "DELETE", "/api/v1/replicas/c-0", "").await;
    assert_eq!(status, 200, "{body}");
    let (status, body) = http(addr, "GET", "/api/v1/replicas/c-0", "").await;
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("replica_unknown"), "{body}");
    assert_eq!(
        clipper.abstraction().replica_count(&ModelId::new("m", 1)),
        0
    );
}

/// A real TCP container dials the fleet's RPC data plane, registers
/// itself, serves traffic, and — once its process dies — is expired and
/// drained by the health monitor (the connection's passive probe is its
/// heartbeat).
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn rpc_container_dials_in_serves_and_expires_on_death() {
    let cfg = FleetConfig {
        heartbeat_interval: Duration::from_millis(50),
        suspect_after: 2,
        expire_after: 4,
    };
    let clipper = base_clipper(None, cfg);
    let m = ModelId::new("m", 1);
    let fleet = clipper.fleet();
    let rpc_addr = fleet.serve_rpc("127.0.0.1:0").await.unwrap();
    assert_eq!(fleet.rpc_addr(), Some(rpc_addr));

    let container = ModelContainer::new(ContainerConfig {
        name: "rpc-c0".into(),
        model_name: "m".into(),
        model_version: 1,
        logic: ContainerLogic::Fixed(WireOutput::Class(3)),
        timing: TimingModel::Measured,
        seed: 7,
    });
    let task = spawn_tcp_container(rpc_addr, container);

    // The container completes its own registration: wait for admission.
    let mut waited = 0;
    while clipper.abstraction().replica_count(&m) == 0 && waited < 500 {
        tokio::time::sleep(Duration::from_millis(10)).await;
        waited += 1;
    }
    assert_eq!(clipper.abstraction().replica_count(&m), 1, "RPC admission");
    let view = fleet.view("rpc-c0").expect("member admitted");
    assert_eq!(view.health, "healthy");
    assert!(view.queue_id.is_some(), "attached to the data plane");

    let p = clipper
        .predict("app", None, Arc::new(vec![1.0]))
        .await
        .unwrap();
    assert_eq!(p.output, Output::Class(3), "served over real RPC");

    // Its connection-level liveness counts as a heartbeat: monitor
    // passes keep it healthy without any HTTP beats.
    fleet.check_members().await;
    assert_eq!(fleet.view("rpc-c0").unwrap().health, "healthy");

    // Kill the container process. The probe goes dark, silence
    // accumulates, and the monitor expires + drains the member.
    task.abort();
    let mut waited = 0;
    while fleet.view("rpc-c0").unwrap().health != "expired" && waited < 1_000 {
        fleet.check_members().await;
        tokio::time::sleep(Duration::from_millis(10)).await;
        waited += 1;
    }
    assert_eq!(fleet.view("rpc-c0").unwrap().health, "expired");
    assert_eq!(clipper.abstraction().replica_count(&m), 0, "queue drained");
    assert!(
        fleet
            .events()
            .iter()
            .any(|e| matches!(e, FleetEvent::Expired { container, .. } if container == "rpc-c0")),
        "expiry recorded: {:#?}",
        fleet.events()
    );
}

/// The full heartbeat state machine under live traffic: missed beats
/// turn the member Suspect (feeding p2c suspect-avoidance), then
/// Expired (graceful drain, zero queries lost), and the returning
/// container re-registers warm — its drained latency curve rides back
/// in as the new queue's prior.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn missed_heartbeats_suspect_then_expire_then_warm_readmit() {
    let cfg = FleetConfig {
        heartbeat_interval: Duration::from_millis(40),
        suspect_after: 2,
        expire_after: 4,
    };
    let clipper = base_clipper(None, cfg);
    let m = ModelId::new("m", 1);
    let fleet = clipper.fleet();
    fleet.add_launcher(const_launcher(1));
    // A baseline replica outside the fleet keeps the model serving while
    // the fleet member dies, so "zero lost" is about the drain, not luck.
    clipper.add_replica(&m, const_transport(1)).unwrap();

    let outcome = fleet.register(spec("c-0")).unwrap();
    assert!(!outcome.warm_start, "first registration is cold");
    let qid = outcome.queue_id.expect("attached");

    // Teach the member's queue a latency curve (batch spread establishes
    // the fit) so expiry has a tune to harvest.
    let model = clipper
        .abstraction()
        .replica_latency_model(&m, &qid)
        .unwrap();
    for round in 0..3 {
        for b in 1..=8usize {
            model.observe(b, Duration::from_micros(200 + 50 * b as u64 + round));
        }
    }
    assert!(model.is_established(), "curve learned before the kill");

    // Open-loop traffic for the whole scenario; every query must be
    // answered (fail-fill counts, an error does not).
    let stop = Arc::new(AtomicBool::new(false));
    let errors = {
        let clipper = clipper.clone();
        let stop = stop.clone();
        tokio::spawn(async move {
            let mut errors = 0u64;
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                if clipper
                    .predict("app", None, Arc::new(vec![i as f32]))
                    .await
                    .is_err()
                {
                    errors += 1;
                }
                i += 1;
                tokio::time::sleep(Duration::from_millis(2)).await;
            }
            errors
        })
    };

    // On-schedule beats keep the member healthy across monitor passes.
    for _ in 0..4 {
        fleet.heartbeat("c-0", HeartbeatReport::default()).unwrap();
        fleet.check_members().await;
        tokio::time::sleep(Duration::from_millis(20)).await;
    }
    assert_eq!(fleet.view("c-0").unwrap().health, "healthy");

    // Stop beating. Silence crosses the suspect bar first: the member is
    // deprioritized (visible to the scheduler) but not drained.
    let mut waited = 0;
    while fleet.view("c-0").unwrap().health == "healthy" && waited < 500 {
        fleet.check_members().await;
        tokio::time::sleep(Duration::from_millis(10)).await;
        waited += 1;
    }
    let saw_suspect = fleet.view("c-0").unwrap().health == "suspect";
    if saw_suspect {
        assert!(
            clipper.abstraction().suspect_queue_ids(&m).contains(&qid),
            "suspicion feeds p2c suspect-avoidance"
        );
        // A beat arriving now would restore Healthy — prove it, then go
        // silent again for good.
        fleet.heartbeat("c-0", HeartbeatReport::default()).unwrap();
        assert_eq!(fleet.view("c-0").unwrap().health, "healthy");
        assert!(
            clipper.abstraction().suspect_queue_ids(&m).is_empty(),
            "recovery clears the scheduler hint"
        );
    }

    // Full silence → Expired: graceful drain, tombstone, harvested tune.
    let mut waited = 0;
    while fleet.view("c-0").unwrap().health != "expired" && waited < 1_000 {
        fleet.check_members().await;
        tokio::time::sleep(Duration::from_millis(10)).await;
        waited += 1;
    }
    assert_eq!(fleet.view("c-0").unwrap().health, "expired");
    assert_eq!(clipper.abstraction().replica_count(&m), 1, "baseline only");
    let events = fleet.events();
    if saw_suspect {
        assert!(
            events.iter().any(
                |e| matches!(e, FleetEvent::Suspected { container, .. } if container == "c-0")
            ),
            "suspect transition recorded: {events:#?}"
        );
    }
    assert!(
        events.iter().any(
            |e| matches!(e, FleetEvent::Expired { container, drained: true, .. } if container == "c-0")
        ),
        "expiry drained the queue: {events:#?}"
    );

    stop.store(true, Ordering::Relaxed);
    assert_eq!(errors.await.unwrap(), 0, "zero lost across the whole flap");

    // The container comes back: re-registration is warm — the tombstone's
    // harvested curve is the new queue's prior, established from query 1.
    let outcome = fleet.register(spec("c-0")).unwrap();
    assert!(outcome.warm_start, "readmission carries the harvested tune");
    let new_qid = outcome.queue_id.expect("attached");
    assert_ne!(new_qid, qid, "a fresh queue, not the drained one");
    assert!(
        clipper
            .abstraction()
            .replica_latency_model(&m, &new_qid)
            .unwrap()
            .is_established(),
        "warm start: established before any observation"
    );
    assert!(
        fleet.events().iter().any(
            |e| matches!(e, FleetEvent::Readmitted { container, warm_start: true } if container == "c-0")
        ),
        "readmission recorded"
    );
    assert_eq!(fleet.view("c-0").unwrap().health, "healthy");
}

/// A heartbeat arriving after expiry is an unambiguous 410 — on the
/// frontend that expired the member, and on a sibling frontend that only
/// knows the tombstone through the statestore. Re-registration revives.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn heartbeat_after_expiry_is_gone_until_reregistration() {
    let store = Arc::new(StateStore::new());
    let clipper = base_clipper(Some(store.clone()), FleetConfig::default());
    clipper.fleet().add_launcher(const_launcher(1));
    let frontend = HttpFrontend::bind("127.0.0.1:0", clipper.clone())
        .await
        .unwrap();
    let addr = frontend.local_addr();

    let (status, _) = http(
        addr,
        "POST",
        "/api/v1/replicas",
        "{\"container_name\":\"c-0\",\"model_name\":\"m\",\"model_version\":1,\
         \"capabilities\":[\"test:inproc\"]}",
    )
    .await;
    assert_eq!(status, 201);

    assert!(clipper.fleet().expire("c-0").await, "deterministic expiry");

    // The late beat: 410, not 404 — the container must re-register.
    let (status, body) = http(addr, "POST", "/api/v1/replicas/c-0/heartbeat", "{}").await;
    assert_eq!(status, 410, "{body}");
    assert!(body.contains("replica_gone"), "{body}");

    // A sibling frontend that never met the member reads the tombstone
    // from the store and answers the same 410.
    let sibling = base_clipper(Some(store), FleetConfig::default());
    match sibling.fleet().heartbeat("c-0", HeartbeatReport::default()) {
        Err(ApiError::ReplicaGone(name)) => assert_eq!(name, "c-0"),
        other => panic!("sibling must answer gone, got {other:?}"),
    }

    // Re-registration is the way back; beats flow again.
    let (status, body) = http(
        addr,
        "POST",
        "/api/v1/replicas",
        "{\"container_name\":\"c-0\",\"model_name\":\"m\",\"model_version\":1,\
         \"capabilities\":[\"test:inproc\"]}",
    )
    .await;
    assert_eq!(status, 201, "{body}");
    let (status, body) = http(addr, "POST", "/api/v1/replicas/c-0/heartbeat", "").await;
    assert_eq!(status, 200, "{body}");
}

/// A replica whose batches take real time: expiry's graceful drain is
/// still in flight when the container re-registers under the same name.
/// The tombstone is replaced, the new queue serves, the old drain
/// completes — nothing lost, nothing double-drained.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn re_registration_during_an_in_flight_drain_is_safe() {
    struct SlowTransport;
    impl BatchTransport for SlowTransport {
        fn predict_batch(
            &self,
            inputs: &[Input],
        ) -> clipper::rpc::BoxFuture<Result<PredictReply, clipper::rpc::RpcError>> {
            let n = inputs.len();
            Box::pin(async move {
                tokio::time::sleep(Duration::from_millis(25)).await;
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(1); n],
                    queue_us: 0,
                    compute_us: 25_000,
                })
            })
        }
        fn id(&self) -> String {
            "slow".into()
        }
    }

    let clipper = base_clipper(None, FleetConfig::default());
    let m = ModelId::new("m", 1);
    let fleet = clipper.fleet();
    fleet.add_launcher(Arc::new(FnLauncher::new(CAPABILITY, |_rec| {
        Arc::new(SlowTransport) as Arc<dyn BatchTransport>
    })));

    let outcome = fleet.register(spec("c-0")).unwrap();
    let old_qid = outcome.queue_id.expect("attached");

    // Load the slow queue so its drain genuinely takes time.
    let mut predicts = Vec::new();
    for i in 0..24u32 {
        let clipper = clipper.clone();
        predicts.push(tokio::spawn(async move {
            clipper.predict("app", None, Arc::new(vec![i as f32])).await
        }));
    }
    tokio::time::sleep(Duration::from_millis(10)).await;

    // Expire: the tombstone lands immediately, the drain await does not.
    let expire = {
        let fleet = fleet.clone();
        tokio::spawn(async move { fleet.expire("c-0").await })
    };
    tokio::time::sleep(Duration::from_millis(10)).await;

    // The container restarts while its old queue is still draining.
    let outcome = fleet.register(spec("c-0")).unwrap();
    let new_qid = outcome.queue_id.expect("re-attached");
    assert_ne!(new_qid, old_qid, "a fresh queue under the same name");
    assert_eq!(fleet.view("c-0").unwrap().health, "healthy");
    fleet.heartbeat("c-0", HeartbeatReport::default()).unwrap();

    assert!(expire.await.unwrap(), "the expiry still completed");
    for p in predicts {
        p.await
            .unwrap()
            .expect("no query dropped by the drain race");
    }
    assert_eq!(fleet.drain_count(), 1, "the old queue drained exactly once");
    assert_eq!(clipper.abstraction().replica_count(&m), 1);

    let p = clipper
        .predict("app", None, Arc::new(vec![99.0]))
        .await
        .unwrap();
    assert_eq!(p.output, Output::Class(1), "the new queue serves");
}

/// Expiry and the suspect sweep race on the same queue id — a dead
/// replica is both silent *and* failing. `remove_replica` is exclusive,
/// so exactly one path drains; counters stay truthful; replays no-op.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn concurrent_expiry_and_suspect_drain_stay_idempotent() {
    let clipper = base_clipper(None, FleetConfig::default());
    let m = ModelId::new("m", 1);
    let fleet = clipper.fleet();
    clipper.add_replica(&m, const_transport(1)).unwrap();
    let faulty = Arc::new(FaultyTransport::new(
        const_transport(1),
        FaultConfig::default(),
        7,
    ));
    {
        let faulty = faulty.clone();
        fleet.add_launcher(Arc::new(FnLauncher::new(CAPABILITY, move |_rec| {
            faulty.clone() as Arc<dyn BatchTransport>
        })));
    }
    let qid = fleet.register(spec("c-0")).unwrap().queue_id.unwrap();

    // Black-hole the fleet member and drive traffic until the scheduler
    // marks it suspect through its failing batches.
    faulty.fail_hard(true);
    let mut waited = 0;
    while clipper.abstraction().suspect_queue_ids(&m).is_empty() && waited < 2_000 {
        for i in 0..16u32 {
            clipper
                .predict("app", None, Arc::new(vec![1_000.0 + (waited + i) as f32]))
                .await
                .expect("fault fail-fills, never errors");
        }
        waited += 1;
    }
    assert_eq!(
        clipper.abstraction().suspect_queue_ids(&m),
        vec![qid.clone()]
    );

    // The race: the operator sweep and the fleet expiry go for the same
    // queue at once.
    let (removed, transitioned) =
        tokio::join!(clipper.drain_suspect_replicas(&m), fleet.expire("c-0"));
    assert!(transitioned, "expire always claims the state transition");
    let expiry_drained = fleet
        .events()
        .iter()
        .any(|e| matches!(e, FleetEvent::Expired { drained: true, .. }));
    assert_eq!(
        removed.len() + usize::from(expiry_drained),
        1,
        "exactly one path drained the queue: sweep={removed:?} expiry_drained={expiry_drained}"
    );
    assert_eq!(
        fleet.drain_count(),
        u64::from(expiry_drained),
        "the fleet counter only counts drains the fleet actually won"
    );
    assert_eq!(clipper.abstraction().replica_count(&m), 1, "baseline left");
    assert_eq!(fleet.view("c-0").unwrap().health, "expired");

    // Replays are no-ops on both sides.
    assert!(clipper.drain_suspect_replicas(&m).await.is_empty());
    assert!(!fleet.expire("c-0").await, "second expiry is a no-op");
    assert_eq!(
        fleet.drain_count(),
        u64::from(expiry_drained),
        "no double count"
    );

    // The healthy baseline keeps serving real answers.
    let p = clipper
        .predict("app", None, Arc::new(vec![7.0]))
        .await
        .unwrap();
    assert_eq!(p.output, Output::Class(1));
}

/// One persisted registration, many frontends: a sibling adopts the
/// record via `sync_config()`, a restarted frontend via `rehydrate()` —
/// both attach through their own launcher and serve.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn sibling_frontends_adopt_a_persisted_registration() {
    let store = Arc::new(StateStore::new());
    let m = ModelId::new("m", 1);

    // Frontend A deploys the model + app; frontend C boots from the
    // store *before* any replica exists.
    let a = base_clipper(Some(store.clone()), FleetConfig::default());
    a.fleet().add_launcher(const_launcher(1));
    let c = Clipper::builder().statestore(store.clone()).build();
    c.fleet().add_launcher(const_launcher(1));
    let report = c.rehydrate();
    assert_eq!(report.replicas, 0, "nothing to adopt yet");
    assert!(c.abstraction().has_model(&m), "model directory restored");

    // The container registers through A; the record persists.
    let outcome = a.fleet().register(spec("c-0")).unwrap();
    assert!(outcome.queue_id.is_some());
    assert_eq!(a.abstraction().replica_count(&m), 1);

    // C picks it up on its next config sync — attached via its own
    // launcher, healthy, unmanaged.
    let sync = c.sync_config().await;
    assert_eq!(sync.adopted_replicas, 1, "adopted the persisted record");
    let view = c.fleet().view("c-0").expect("member adopted");
    assert_eq!(view.health, "healthy");
    assert!(!view.managed);
    assert!(view.queue_id.is_some(), "attached through C's launcher");
    assert_eq!(c.abstraction().replica_count(&m), 1);

    // Adoption is idempotent: a second sync adopts nothing new.
    assert_eq!(c.sync_config().await.adopted_replicas, 0);

    // A restarted frontend adopts the same record during rehydrate.
    let d = Clipper::builder().statestore(store).build();
    d.fleet().add_launcher(const_launcher(1));
    let report = d.rehydrate();
    assert_eq!(report.replicas, 1, "rehydrate re-adopts the fleet");
    assert_eq!(d.abstraction().replica_count(&m), 1);

    // Both adopters serve predictions from their own attachment.
    for clipper in [&c, &d] {
        let p = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(1));
    }
}

/// The autoscaler tracks load end-to-end: a load step scales the fleet
/// up within one evaluation, subsiding load scales it back down after
/// the configured quiet streak — managed replicas only.
#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn autoscaler_scales_up_under_load_and_back_down_when_quiet() {
    use clipper::core::{AutoscaleConfig, AutoscaleDecision};

    /// A replica whose batches take real time, so queued work shows up
    /// as backlog at evaluation time.
    struct SlowTransport;
    impl BatchTransport for SlowTransport {
        fn predict_batch(
            &self,
            inputs: &[Input],
        ) -> clipper::rpc::BoxFuture<Result<PredictReply, clipper::rpc::RpcError>> {
            let n = inputs.len();
            Box::pin(async move {
                tokio::time::sleep(Duration::from_millis(10)).await;
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(1); n],
                    queue_us: 0,
                    compute_us: 10_000,
                })
            })
        }
        fn id(&self) -> String {
            "slow".into()
        }
    }

    let clipper = base_clipper(None, FleetConfig::default());
    let m = ModelId::new("m", 1);
    let fleet = clipper.fleet();
    fleet.add_launcher(Arc::new(FnLauncher::new(CAPABILITY, |_rec| {
        Arc::new(SlowTransport) as Arc<dyn BatchTransport>
    })));
    let cfg = AutoscaleConfig {
        model: m.clone(),
        min_replicas: 1,
        max_replicas: 3,
        eval_interval: Duration::from_millis(50),
        scale_up_backlog_ns: 1, // any backlog at all scales up
        scale_down_backlog_ns: 0,
        scale_down_evals: 2,
        capability: CAPABILITY.into(),
        name_prefix: "auto".into(),
    };
    let mut state = Default::default();

    // Below the floor: the first evaluation launches the minimum.
    assert_eq!(
        fleet.autoscale_tick(&cfg, &mut state).await,
        AutoscaleDecision::Up
    );
    assert_eq!(clipper.abstraction().replica_count(&m), 1);
    let launched = fleet.view("auto-1").expect("managed replica launched");
    assert!(launched.managed, "autoscaler-launched replicas are managed");

    // Load step: pile queries onto the slow replica so the evaluation
    // sees real backlog — a second replica within a single period.
    let mut predicts = Vec::new();
    for i in 0..32u32 {
        let clipper = clipper.clone();
        predicts.push(tokio::spawn(async move {
            clipper.predict("app", None, Arc::new(vec![i as f32])).await
        }));
    }
    tokio::time::sleep(Duration::from_millis(5)).await;
    assert!(clipper.abstraction().backlog_ns(&m) > 0, "load is visible");
    assert_eq!(
        fleet.autoscale_tick(&cfg, &mut state).await,
        AutoscaleDecision::Up
    );
    assert_eq!(clipper.abstraction().replica_count(&m), 2);
    assert!(
        fleet
            .events()
            .iter()
            .any(|e| matches!(e, FleetEvent::ScaledUp { container } if container == "auto-2")),
        "scale-up recorded: {:#?}",
        fleet.events()
    );

    // Every queued query completes — scale-up never sheds work.
    for p in predicts {
        p.await.unwrap().expect("scale-up loses nothing");
    }
    // A predict can resolve by deadline fail-fill while its item is
    // still queued; wait for the *queues* to go idle so the quiet
    // streak below sees a genuinely subsided load.
    let mut waited = 0;
    while clipper.abstraction().backlog_ns(&m) > 0 {
        waited += 1;
        assert!(waited < 1_000, "burst backlog never drained");
        tokio::time::sleep(Duration::from_millis(2)).await;
    }

    // Load subsides: after the quiet streak the newest managed replica
    // is reaped (graceful drain), but never below the floor.
    for _ in 0..6 {
        fleet.autoscale_tick(&cfg, &mut state).await;
        tokio::time::sleep(Duration::from_millis(2)).await;
    }
    assert_eq!(clipper.abstraction().replica_count(&m), 1, "reaped to one");
    assert_eq!(
        fleet.view("auto-2"),
        None,
        "the newest managed replica was deregistered"
    );
    assert!(fleet.view("auto-1").is_some(), "the floor replica survives");
    assert!(
        fleet
            .events()
            .iter()
            .any(|e| matches!(e, FleetEvent::ScaledDown { container } if container == "auto-2")),
        "scale-down recorded"
    );
}
