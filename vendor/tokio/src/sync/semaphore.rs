//! Counting semaphore with RAII permits.

use std::collections::VecDeque;
use std::future::poll_fn;
use std::sync::{Arc, Mutex};
use std::task::{Poll, Waker};

struct Sem {
    permits: usize,
    closed: bool,
    waiters: VecDeque<Waker>,
}

/// An async counting semaphore, mirroring `tokio::sync::Semaphore`.
pub struct Semaphore {
    inner: Mutex<Sem>,
}

/// Error: the semaphore was closed while waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireError(());

impl std::fmt::Display for AcquireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "semaphore closed")
    }
}

impl std::error::Error for AcquireError {}

/// Permit tied to a borrowed semaphore.
pub struct SemaphorePermit<'a> {
    sem: &'a Semaphore,
}

/// Permit tied to an `Arc`-owned semaphore.
pub struct OwnedSemaphorePermit {
    sem: Arc<Semaphore>,
}

impl Semaphore {
    /// Create a semaphore with `permits` available permits.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            inner: Mutex::new(Sem {
                permits,
                closed: false,
                waiters: VecDeque::new(),
            }),
        }
    }

    /// Permits currently available.
    pub fn available_permits(&self) -> usize {
        self.inner.lock().unwrap().permits
    }

    /// Return `n` permits, waking waiters.
    pub fn add_permits(&self, n: usize) {
        let wakers: Vec<Waker> = {
            let mut s = self.inner.lock().unwrap();
            s.permits += n;
            // Wake every waiter, not just n: a registered waker may belong
            // to a future that was since dropped (cancellation) and would
            // otherwise swallow the wake. Survivors re-contend and
            // re-register — spurious wakes are cheap, lost wakes hang.
            s.waiters.drain(..).collect()
        };
        for w in wakers {
            w.wake();
        }
    }

    /// Close: waiting and future acquires fail with [`AcquireError`].
    pub fn close(&self) {
        let wakers: Vec<Waker> = {
            let mut s = self.inner.lock().unwrap();
            s.closed = true;
            s.waiters.drain(..).collect()
        };
        for w in wakers {
            w.wake();
        }
    }

    /// Whether the semaphore is closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    fn poll_acquire(&self, waker: &Waker) -> Poll<Result<(), AcquireError>> {
        let mut s = self.inner.lock().unwrap();
        if s.closed {
            Poll::Ready(Err(AcquireError(())))
        } else if s.permits > 0 {
            s.permits -= 1;
            Poll::Ready(Ok(()))
        } else {
            s.waiters.push_back(waker.clone());
            Poll::Pending
        }
    }

    /// Wait for one permit, borrowing the semaphore.
    pub async fn acquire(&self) -> Result<SemaphorePermit<'_>, AcquireError> {
        poll_fn(|cx| self.poll_acquire(cx.waker())).await?;
        Ok(SemaphorePermit { sem: self })
    }

    /// Take one permit without waiting.
    pub fn try_acquire(&self) -> Result<SemaphorePermit<'_>, AcquireError> {
        let mut s = self.inner.lock().unwrap();
        if s.closed || s.permits == 0 {
            return Err(AcquireError(()));
        }
        s.permits -= 1;
        drop(s);
        Ok(SemaphorePermit { sem: self })
    }

    /// Wait for one permit, holding the semaphore through an `Arc`.
    pub async fn acquire_owned(self: Arc<Self>) -> Result<OwnedSemaphorePermit, AcquireError> {
        poll_fn(|cx| self.poll_acquire(cx.waker())).await?;
        Ok(OwnedSemaphorePermit { sem: self })
    }
}

fn release(sem: &Semaphore) {
    // Wake all waiters (see `add_permits`): stale wakers from cancelled
    // acquires must not be able to swallow the single wake a permit
    // would otherwise deliver.
    let wakers: Vec<Waker> = {
        let mut s = sem.inner.lock().unwrap();
        s.permits += 1;
        s.waiters.drain(..).collect()
    };
    for w in wakers {
        w.wake();
    }
}

impl Drop for SemaphorePermit<'_> {
    fn drop(&mut self) {
        release(self.sem);
    }
}

impl Drop for OwnedSemaphorePermit {
    fn drop(&mut self) {
        release(&self.sem);
    }
}
