//! The model container: logic + timing behind the batch-predict interface.
//!
//! A container is a serially-shared resource (one model, one device): the
//! [`LocalContainerTransport`] enforces that with an internal lock, and the
//! TCP path inherits it from the RPC client's serial worker loop. Queue
//! time (waiting for the container) and compute time are reported
//! separately in every [`PredictReply`] so the Figure-11 decomposition
//! falls out of ordinary telemetry.

use crate::gpu::GpuDevice;
use crate::latency::{precise_sleep, LatencyProfile};
use crate::logic::ContainerLogic;
use clipper_rpc::client::{serve_container, BatchHandler, ContainerClientConfig};
use clipper_rpc::error::RpcError;
use clipper_rpc::message::PredictReply;
use clipper_rpc::transport::{BatchTransport, BoxFuture, Input};
use parking_lot::Mutex;
use rand::prelude::*;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// How a container's clock behaves.
#[derive(Clone)]
pub enum TimingModel {
    /// Real measured compute time only — no simulation.
    Measured,
    /// Pad each batch to a calibrated latency profile (Figure-3 curves).
    /// Real compute still happens; the pad covers the gap between our
    /// models and the paper's framework stacks.
    Profile(LatencyProfile),
    /// Execute on a simulated wave-parallel GPU (Figure-6/11 deep models).
    /// Containers sharing one `Arc<GpuDevice>` contend for it, replicas
    /// with their own devices scale linearly.
    Gpu(Arc<GpuDevice>),
    /// Like `Profile`, with an extra per-batch overhead factor — the
    /// "Python container" of Figure 11 (interpreter + serialization tax).
    ProfileWithOverhead(LatencyProfile, f64),
}

/// Configuration for one container instance.
#[derive(Clone)]
pub struct ContainerConfig {
    /// Container instance name (unique per replica), e.g. `"mnist-svm:0"`.
    pub name: String,
    /// Model name this container registers under.
    pub model_name: String,
    /// Model version.
    pub model_version: u32,
    /// What the container computes.
    pub logic: ContainerLogic,
    /// How long it takes.
    pub timing: TimingModel,
    /// Seed for latency jitter.
    pub seed: u64,
}

/// A model container: evaluates batches serially with its timing model.
pub struct ModelContainer {
    cfg: ContainerConfig,
    rng: Mutex<StdRng>,
    /// Serial-execution lock: one batch in the container at a time
    /// (GPU-timed containers serialize on the device instead).
    busy: Mutex<()>,
}

impl ModelContainer {
    /// Build a container from its config.
    pub fn new(cfg: ContainerConfig) -> Arc<Self> {
        let seed = cfg.seed;
        Arc::new(ModelContainer {
            cfg,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            busy: Mutex::new(()),
        })
    }

    /// The container's configuration.
    pub fn config(&self) -> &ContainerConfig {
        &self.cfg
    }

    /// Evaluate one batch of shared feature vectors synchronously (call
    /// from a blocking context).
    ///
    /// Returns the reply with `queue_us` = time spent waiting for the
    /// container/device and `compute_us` = time inside the model.
    pub fn evaluate_blocking(&self, inputs: &[Input]) -> PredictReply {
        match &self.cfg.timing {
            TimingModel::Gpu(device) => {
                // CPU-side answer computation is cheap; device time rules.
                let outputs = self.cfg.logic.evaluate(inputs);
                let (queue, compute) = device.execute_blocking(inputs.len());
                PredictReply {
                    outputs,
                    queue_us: queue.as_micros() as u64,
                    compute_us: compute.as_micros() as u64,
                }
            }
            timing => {
                let enqueue = Instant::now();
                let guard = self.busy.lock();
                let queue = enqueue.elapsed();
                let start = Instant::now();
                let outputs = self.cfg.logic.evaluate(inputs);
                let target = match timing {
                    TimingModel::Measured => None,
                    TimingModel::Profile(p) => Some(p.sample(inputs.len(), &mut self.rng.lock())),
                    TimingModel::ProfileWithOverhead(p, overhead) => {
                        let base = p.sample(inputs.len(), &mut self.rng.lock());
                        Some(base.mul_f64(1.0 + overhead))
                    }
                    TimingModel::Gpu(_) => unreachable!("handled above"),
                };
                if let Some(target) = target {
                    let elapsed = start.elapsed();
                    if elapsed < target {
                        precise_sleep(target - elapsed);
                    }
                }
                let compute = start.elapsed();
                drop(guard);
                PredictReply {
                    outputs,
                    queue_us: queue.as_micros() as u64,
                    compute_us: compute.as_micros() as u64,
                }
            }
        }
    }
}

impl BatchHandler for ModelContainer {
    fn handle_batch(&self, inputs: Vec<Input>) -> Result<PredictReply, String> {
        Ok(self.evaluate_blocking(&inputs))
    }
}

/// In-process transport to a container — the fast path used by most
/// experiments (no sockets, same semantics).
pub struct LocalContainerTransport {
    container: Arc<ModelContainer>,
}

impl LocalContainerTransport {
    /// Wrap a container.
    pub fn new(container: Arc<ModelContainer>) -> Arc<Self> {
        Arc::new(LocalContainerTransport { container })
    }
}

impl BatchTransport for LocalContainerTransport {
    fn predict_batch(&self, inputs: &[Input]) -> BoxFuture<Result<PredictReply, RpcError>> {
        let container = self.container.clone();
        let inputs = inputs.to_vec(); // Arc clones only
        Box::pin(async move {
            tokio::task::spawn_blocking(move || container.evaluate_blocking(&inputs))
                .await
                .map_err(|e| RpcError::Remote(format!("container panicked: {e}")))
        })
    }

    fn id(&self) -> String {
        self.container.cfg.name.clone()
    }
}

/// Run a container as a real RPC client against a Clipper server at `addr`.
/// Returns the task handle; aborting it kills the container.
pub fn spawn_tcp_container(
    addr: SocketAddr,
    container: Arc<ModelContainer>,
) -> tokio::task::JoinHandle<Result<(), RpcError>> {
    let cfg = ContainerClientConfig {
        container_name: container.cfg.name.clone(),
        model_name: container.cfg.model_name.clone(),
        model_version: container.cfg.model_version,
    };
    tokio::spawn(async move { serve_container(addr, cfg, container).await })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipper_rpc::message::WireOutput;
    use clipper_rpc::transport::as_inputs;
    use std::time::Duration;

    fn fixed_container(timing: TimingModel) -> Arc<ModelContainer> {
        ModelContainer::new(ContainerConfig {
            name: "test:0".into(),
            model_name: "test".into(),
            model_version: 1,
            logic: ContainerLogic::Fixed(WireOutput::Class(3)),
            timing,
            seed: 7,
        })
    }

    #[test]
    fn measured_timing_reports_compute() {
        let c = fixed_container(TimingModel::Measured);
        let r = c.evaluate_blocking(&as_inputs(vec![vec![0.0], vec![1.0]]));
        assert_eq!(r.outputs, vec![WireOutput::Class(3); 2]);
        // No simulation: compute should be fast (well under a millisecond).
        assert!(r.compute_us < 5_000);
    }

    #[test]
    fn profile_timing_pads_to_target() {
        let p = LatencyProfile::deterministic(Duration::from_millis(2), Duration::from_micros(500));
        let c = fixed_container(TimingModel::Profile(p));
        let start = Instant::now();
        let r = c.evaluate_blocking(&as_inputs(vec![vec![0.0]; 4]));
        let elapsed = start.elapsed();
        // Expected: 2ms + 4·0.5ms = 4ms.
        assert!(elapsed >= Duration::from_millis(4), "elapsed {elapsed:?}");
        assert!(r.compute_us >= 4_000);
    }

    #[test]
    fn python_overhead_inflates_latency() {
        let p = LatencyProfile::deterministic(Duration::from_millis(5), Duration::ZERO);
        let fast = fixed_container(TimingModel::Profile(p.clone()));
        let slow = fixed_container(TimingModel::ProfileWithOverhead(p, 0.5));
        let rf = fast.evaluate_blocking(&[Arc::new(vec![0.0])]);
        let rs = slow.evaluate_blocking(&[Arc::new(vec![0.0])]);
        assert!(
            rs.compute_us as f64 >= rf.compute_us as f64 * 1.3,
            "python overhead should add ≥30%: {} vs {}",
            rs.compute_us,
            rf.compute_us
        );
    }

    #[test]
    fn container_serializes_concurrent_batches() {
        let p = LatencyProfile::deterministic(Duration::from_millis(20), Duration::ZERO);
        let c = fixed_container(TimingModel::Profile(p));
        let c2 = c.clone();
        let t = std::thread::spawn(move || c2.evaluate_blocking(&[Arc::new(vec![0.0])]));
        std::thread::sleep(Duration::from_millis(5));
        let r = c.evaluate_blocking(&[Arc::new(vec![0.0])]);
        t.join().unwrap();
        assert!(
            r.queue_us >= 10_000,
            "second batch must queue behind the first, queued {}µs",
            r.queue_us
        );
    }

    #[tokio::test]
    async fn local_transport_roundtrips() {
        let c = fixed_container(TimingModel::Measured);
        let t = LocalContainerTransport::new(c);
        let r = t
            .predict_batch(&as_inputs(vec![vec![0.0]; 5]))
            .await
            .unwrap();
        assert_eq!(r.outputs.len(), 5);
        assert_eq!(t.id(), "test:0");
    }

    #[tokio::test]
    async fn tcp_container_serves_over_real_sockets() {
        let mut server = clipper_rpc::server::RpcServer::bind("127.0.0.1:0")
            .await
            .unwrap();
        let addr = server.local_addr();
        let c = fixed_container(TimingModel::Measured);
        let _task = spawn_tcp_container(addr, c);
        let (info, handle) = server.next_container().await.unwrap();
        assert_eq!(info.model_name, "test");
        let r = handle
            .predict_batch(&[Arc::new(vec![1.0, 2.0])])
            .await
            .unwrap();
        assert_eq!(r.outputs, vec![WireOutput::Class(3)]);
    }
}
