//! Figure 7 — ensemble prediction accuracy with confidence splits.
//!
//! Five models with staggered accuracy (as the paper's Table-2 zoo has) on
//! the CIFAR-shaped (top-1 error) and ImageNet-shaped (top-5 error)
//! benchmarks. Reports:
//! - the single best model's error,
//! - the (uniform) linear ensemble's error,
//! - the error and population share of the "4-agree" and "5-agree"
//!   confidence buckets — the robust-prediction split of §5.2.1.
//!
//! The ImageNet benchmark is scaled to 200 classes so every class has
//! enough training examples on a laptop budget (see DESIGN.md §3).
//!
//! The binary self-checks against expected-accuracy constants that fold
//! in the Rocchio centroid warm start (PR 1 applied it to `LinearSvm`,
//! PR 2 to `LogisticRegression`): cold-start linear models landed near
//! the paper's 0.0915 best-single CIFAR error, while the warm-started zoo
//! reaches ~0.057 — the constants below are tight enough that losing the
//! warm start fails the run.

use clipper_ml::datasets::{Dataset, DatasetSpec};
use clipper_ml::linalg::top_k;
use clipper_ml::models::{
    LinearSvm, LinearSvmConfig, LogisticRegression, LogisticRegressionConfig, Mlp, MlpConfig, Model,
};
use clipper_workload::Table;
use std::sync::Arc;

/// Five models of comparable quality (as the paper's zoo of strong conv
/// nets): three families at full data plus two re-seeded variants on 80%
/// subsamples — enough diversity for agreement to carry signal, without a
/// weak model dragging the uniform ensemble.
fn train_zoo(ds: &Dataset, with_mlp: bool) -> Vec<Arc<dyn Model>> {
    let mut sub_a = ds.clone();
    sub_a.train.rotate_left(ds.train.len() / 5);
    sub_a.train.truncate(ds.train.len() * 4 / 5);
    let mut sub_b = ds.clone();
    sub_b.train.rotate_left(2 * ds.train.len() / 5);
    sub_b.train.truncate(ds.train.len() * 4 / 5);
    // A small MLP is competitive on 10-class benchmarks but not at 200
    // classes; there the fifth member is another re-seeded linear model.
    let first: Arc<dyn Model> = if with_mlp {
        Arc::new(Mlp::train(
            ds,
            &MlpConfig {
                hidden: vec![48],
                epochs: 4,
                lr: 0.08,
            },
            1,
        ))
    } else {
        let mut sub_c = ds.clone();
        sub_c.train.rotate_left(3 * ds.train.len() / 5);
        sub_c.train.truncate(ds.train.len() * 4 / 5);
        Arc::new(LogisticRegression::train(
            &sub_c,
            &LogisticRegressionConfig {
                epochs: 3,
                ..Default::default()
            },
            6,
        ))
    };
    vec![
        first,
        Arc::new(LogisticRegression::train(
            ds,
            &LogisticRegressionConfig {
                epochs: 3,
                ..Default::default()
            },
            2,
        )),
        Arc::new(LinearSvm::train(
            ds,
            &LinearSvmConfig {
                epochs: 3,
                ..Default::default()
            },
            3,
        )),
        Arc::new(LogisticRegression::train(
            &sub_a,
            &LogisticRegressionConfig {
                epochs: 4,
                ..Default::default()
            },
            4,
        )),
        Arc::new(LogisticRegression::train(
            &sub_b,
            &LogisticRegressionConfig {
                epochs: 3,
                ..Default::default()
            },
            5,
        )),
    ]
}

/// Expected-accuracy ceilings (error rates) under the seeded datasets.
/// Measured post-warm-start: CIFAR best single 0.057 / ensemble 0.068 /
/// 5-agree 0.008; ImageNet best single 0.150 / ensemble 0.128. Margins
/// absorb float noise, not a regression to cold-start training (which
/// lands near 0.09+ on CIFAR best-single).
const MAX_CIFAR_BEST_SINGLE_ERR: f64 = 0.075;
const MAX_CIFAR_ENSEMBLE_ERR: f64 = 0.090;
const MAX_CIFAR_5AGREE_ERR: f64 = 0.030;
const MAX_IMAGENET_BEST_SINGLE_ERR: f64 = 0.180;
const MAX_IMAGENET_ENSEMBLE_ERR: f64 = 0.160;

/// The numbers a benchmark run is graded on.
struct BenchOutcome {
    best_err: f64,
    ens_err: f64,
    err5: f64,
}

/// Whether the true label is in the model's top-k.
fn is_correct(scores: &[f32], truth: u32, k: usize) -> bool {
    top_k(scores, k).contains(&(truth as usize))
}

fn run_benchmark(name: &str, ds: &Dataset, k: usize, table: &mut Table) -> BenchOutcome {
    let zoo = train_zoo(ds, k == 1);

    let mut model_errors = vec![0usize; zoo.len()];
    let mut bucket_total = vec![0usize; zoo.len() + 1];
    let mut bucket_wrong = vec![0usize; zoo.len() + 1];
    let mut ensemble_wrong = 0usize;

    for ex in &ds.test {
        let all_scores: Vec<Vec<f32>> = zoo.iter().map(|m| m.scores(&ex.x)).collect();
        for (mi, s) in all_scores.iter().enumerate() {
            if !is_correct(s, ex.y, k) {
                model_errors[mi] += 1;
            }
        }
        // Uniform linear ensemble: softmax-normalize every model's scores
        // (SVM margins and probabilities live on different scales), then
        // average the resulting distributions.
        let dim = all_scores[0].len();
        let mut mean = vec![0.0f32; dim];
        for s in &all_scores {
            let mut p = s.clone();
            // Softmax only non-probability scores (SVM margins); logreg and
            // MLP outputs are already distributions and a second softmax
            // would flatten them toward uniform.
            let sum: f32 = p.iter().sum();
            let looks_prob = (sum - 1.0).abs() < 1e-3 && p.iter().all(|v| (0.0..=1.0).contains(v));
            if !looks_prob {
                clipper_ml::linalg::softmax(&mut p);
            }
            for (a, &v) in mean.iter_mut().zip(p.iter()) {
                *a += v / zoo.len() as f32;
            }
        }
        let ens_label = clipper_ml::linalg::argmax(&mean) as u32;
        let ens_ok = is_correct(&mean, ex.y, k);
        if !ens_ok {
            ensemble_wrong += 1;
        }
        let agree = all_scores
            .iter()
            .filter(|s| clipper_ml::linalg::argmax(s) as u32 == ens_label)
            .count();
        bucket_total[agree] += 1;
        if !ens_ok {
            bucket_wrong[agree] += 1;
        }
    }

    let n = ds.test.len() as f64;
    let best_err = model_errors
        .iter()
        .map(|&e| e as f64 / n)
        .fold(f64::INFINITY, f64::min);
    let ens_err = ensemble_wrong as f64 / n;
    let agg = |levels: std::ops::RangeInclusive<usize>| -> (f64, f64) {
        let total: usize = levels.clone().map(|l| bucket_total[l]).sum();
        let wrong: usize = levels.map(|l| bucket_wrong[l]).sum();
        if total == 0 {
            (0.0, 0.0)
        } else {
            (wrong as f64 / total as f64, total as f64 / n)
        }
    };
    let (err4, share4) = agg(4..=4);
    let (err5, share5) = agg(5..=5);
    let (err_unsure, share_unsure) = agg(0..=3);

    let metric = if k == 1 { "top-1" } else { "top-5" };
    table.row(&[
        name.into(),
        metric.into(),
        format!("{:.3}", best_err),
        format!("{:.3}", ens_err),
        format!("{:.3} ({:.0}%)", err4, share4 * 100.0),
        format!("{:.3} ({:.0}%)", err5, share5 * 100.0),
        format!("{:.3} ({:.0}%)", err_unsure, share_unsure * 100.0),
    ]);
    BenchOutcome {
        best_err,
        ens_err,
        err5,
    }
}

/// Grade one measured error against its ceiling, accumulating failures.
fn check(failures: &mut Vec<String>, what: &str, measured: f64, ceiling: f64) {
    if measured > ceiling {
        failures.push(format!(
            "{what}: {measured:.3} exceeds expected {ceiling:.3}"
        ));
    } else {
        println!("check ok: {what} {measured:.3} <= {ceiling:.3}");
    }
}

fn main() {
    println!("== Figure 7: Ensemble Prediction Accuracy ==\n");
    let mut table = Table::new(&[
        "benchmark",
        "metric",
        "best single err",
        "ensemble err",
        "4-agree err (share)",
        "5-agree err (share)",
        "unsure err (share)",
    ]);

    let cifar = DatasetSpec::cifar_like()
        .with_train_size(900)
        .with_test_size(600)
        .with_difficulty(0.25)
        .generate(11);
    let cifar_out = run_benchmark("CIFAR-10-like", &cifar, 1, &mut table);

    let mut imagenet_spec = DatasetSpec::imagenet_like();
    imagenet_spec.num_classes = 200; // scaled; see module docs
    let imagenet = imagenet_spec
        .with_train_size(5_000)
        .with_test_size(500)
        .with_difficulty(0.24)
        .generate(13);
    let imagenet_out = run_benchmark("ImageNet-like (200c)", &imagenet, 5, &mut table);

    table.print();
    println!("\npaper reference (CIFAR top-1): single 0.0915, ensemble 0.0845, 4-agree 0.0610, 5-agree 0.0235, unsure 0.1807/0.1260");
    println!("paper reference (ImageNet top-5): single 0.0618, ensemble 0.0586, 4-agree 0.0469, 5-agree 0.0327, unsure 0.3182/0.1983");
    println!("shape: ensemble ≤ best single; error falls monotonically with agreement; the unsure bucket is much worse");

    // Self-check against the warm-start-adjusted expected accuracies.
    println!();
    let mut failures = Vec::new();
    check(
        &mut failures,
        "CIFAR best single err",
        cifar_out.best_err,
        MAX_CIFAR_BEST_SINGLE_ERR,
    );
    check(
        &mut failures,
        "CIFAR ensemble err",
        cifar_out.ens_err,
        MAX_CIFAR_ENSEMBLE_ERR,
    );
    check(
        &mut failures,
        "CIFAR 5-agree err",
        cifar_out.err5,
        MAX_CIFAR_5AGREE_ERR,
    );
    check(
        &mut failures,
        "ImageNet best single err",
        imagenet_out.best_err,
        MAX_IMAGENET_BEST_SINGLE_ERR,
    );
    check(
        &mut failures,
        "ImageNet ensemble err",
        imagenet_out.ens_err,
        MAX_IMAGENET_ENSEMBLE_ERR,
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
