//! Collection strategies.

use crate::strategy::Strategy;
use rand::prelude::*;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate vectors whose elements come from `element` and whose length is
/// drawn uniformly from `size`, mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "empty size range for collection::vec");
    VecStrategy { element, size }
}
