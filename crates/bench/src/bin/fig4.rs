//! Figure 4 — comparison of dynamic batching strategies.
//!
//! For each Figure-3 container, drive a saturating closed-loop workload
//! through the full serving stack under a 20 ms SLO, with three batching
//! strategies: adaptive (AIMD, the default), quantile regression, and no
//! batching. Reports sustained throughput and P99 latency.
//!
//! Paper shape to reproduce: adaptive ≈ quantile ≫ no batching, with the
//! largest gain (~26×) on the Scikit-Learn linear SVM, and the kernel SVM
//! orders of magnitude below everything else in absolute throughput.

use clipper_bench::{distinct_input, phase_duration, profile_transport, single_model_stack};
use clipper_containers::Fig3Model;
use clipper_core::{BatchConfig, BatchStrategy};
use clipper_workload::report::fmt_qps;
use clipper_workload::{run_closed_loop, Table};
use std::time::Duration;

#[tokio::main(flavor = "multi_thread", worker_threads = 8)]
async fn main() {
    println!("== Figure 4: Comparison of Dynamic Batching Strategies ==\n");
    let slo = Duration::from_millis(20);
    let strategies: [(&str, BatchStrategy); 3] = [
        ("adaptive", BatchStrategy::default()),
        ("quantile", BatchStrategy::QuantileRegression),
        ("no-batching", BatchStrategy::NoBatching),
    ];

    let mut table = Table::new(&["container", "strategy", "throughput (qps)", "p99 (µs)"]);
    let mut sklearn_svm: (f64, f64) = (0.0, 0.0); // (adaptive, no batching)

    for model in Fig3Model::all() {
        for (sname, strategy) in &strategies {
            let transport = profile_transport("fig4", model, 7);
            // The 20 ms SLO drives the *batching* controllers; the app
            // deadline is generous so we measure completion latency
            // instead of triggering straggler substitution (which would
            // count default answers as served predictions).
            let (clipper, _) = single_model_stack(
                transport,
                BatchConfig {
                    strategy: strategy.clone(),
                    slo,
                    ..Default::default()
                },
                Duration::from_secs(5),
            );
            // Saturating closed loop for the batching strategies; moderate
            // concurrency for no-batching (its serial capacity is tiny and
            // deep queues would only measure queueing, not the strategy).
            let clients = match (model, *sname) {
                (Fig3Model::KernelSvmSklearn, "no-batching") => 8,
                (Fig3Model::KernelSvmSklearn, _) => 64,
                (_, "no-batching") => 16,
                _ => 768,
            };
            // Warmup lets AIMD/quantile climb to the knee.
            let c = clipper.clone();
            run_closed_loop(clients, phase_duration(), move |client, seq| {
                let clipper = c.clone();
                async move {
                    clipper
                        .predict("bench", None, distinct_input(client, seq, 8))
                        .await
                        .map(|p| p.models_used > 0)
                        .unwrap_or(false)
                }
            })
            .await;
            let c = clipper.clone();
            let report = run_closed_loop(clients, phase_duration(), move |client, seq| {
                let clipper = c.clone();
                async move {
                    clipper
                        .predict("bench", None, distinct_input(client, 1_000_000 + seq, 8))
                        .await
                        .map(|p| p.models_used > 0)
                        .unwrap_or(false)
                }
            })
            .await;
            table.row(&[
                model.label().to_string(),
                sname.to_string(),
                fmt_qps(report.throughput()),
                format!("{}", report.latency.p99()),
            ]);
            if model == Fig3Model::LinearSvmSklearn {
                match *sname {
                    "adaptive" => sklearn_svm.0 = report.throughput(),
                    "no-batching" => sklearn_svm.1 = report.throughput(),
                    _ => {}
                }
            }
        }
    }
    table.print();
    if sklearn_svm.1 > 0.0 {
        println!(
            "\nSKLearn linear SVM adaptive vs no-batching: {:.1}x (paper: ~26x)",
            sklearn_svm.0 / sklearn_svm.1
        );
    }
    println!("paper reference: adaptive ≈ quantile ≫ no batching; P99 stays ≈ SLO under adaptive batching");
}
