//! Async client for the statestore protocol.

use crate::resp::{encode_command, RespValue};
use crate::store::CasOutcome;
use bytes::BytesMut;
use std::net::SocketAddr;
use std::time::Duration;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;
use tokio::sync::Mutex;

/// Largest encode buffer kept alive between calls; one oversized SET
/// shouldn't pin its value's worth of memory on the connection forever.
const RETAINED_BUF: usize = 64 * 1024;

/// Reconnect budget for retryable calls: redials with exponential
/// backoff starting at [`RETRY_BACKOFF_FLOOR`], doubling up to
/// [`RETRY_BACKOFF_CAP`], at most this many retries per call.
const MAX_RETRIES: u32 = 5;
const RETRY_BACKOFF_FLOOR: Duration = Duration::from_millis(10);
const RETRY_BACKOFF_CAP: Duration = Duration::from_millis(200);

/// A connection to a [`crate::StateStoreServer`]. Requests are serialized
/// per connection (clone-free; wrap in `Arc` and share, or open several).
/// Both wire buffers are retained across calls, so a steady-state request
/// allocates nothing on the encode side.
///
/// The connection self-heals: when the server drops it (restart, crash,
/// network blip), *retryable* calls — reads, plus at-least-once-safe
/// writes like `SET` — transparently redial with capped exponential
/// backoff and re-issue the command. `CAS` never auto-retries (a replayed
/// CAS whose first application succeeded would misreport `Conflict`), but
/// even a non-retryable failure leaves the client usable: the dead stream
/// is discarded and the next call dials fresh.
pub struct StateStoreClient {
    addr: SocketAddr,
    conn: Mutex<ConnState>,
}

struct ConnState {
    /// `None` after a disconnect — the next call redials lazily.
    stream: Option<TcpStream>,
    inbuf: BytesMut,
    outbuf: BytesMut,
}

/// Client-side errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// Server replied with an error we don't model.
    Server(String),
    /// Protocol violation.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Whether an error means the connection is gone (as opposed to the
/// server answering with an application error): redialing may help.
fn is_disconnect(e: &ClientError) -> bool {
    match e {
        ClientError::Io(_) => true,
        ClientError::Protocol(m) => m == "server closed",
        ClientError::Server(_) => false,
    }
}

impl StateStoreClient {
    /// Connect to a server.
    pub async fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        let stream = Self::dial(addr).await?;
        Ok(StateStoreClient {
            addr,
            conn: Mutex::new(ConnState {
                stream: Some(stream),
                inbuf: BytesMut::with_capacity(4096),
                outbuf: BytesMut::with_capacity(4096),
            }),
        })
    }

    async fn dial(addr: SocketAddr) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect(addr).await?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Issue one command. `retryable` calls redial and replay on
    /// disconnect (capped exponential backoff, [`MAX_RETRIES`] retries);
    /// non-retryable calls fail fast but still discard the dead stream so
    /// the *next* call starts from a fresh dial.
    async fn call(&self, parts: &[&[u8]], retryable: bool) -> Result<RespValue, ClientError> {
        let mut guard = self.conn.lock().await;
        let mut backoff = RETRY_BACKOFF_FLOOR;
        let mut attempt: u32 = 0;
        loop {
            let result = if guard.stream.is_some() {
                Self::exchange(&mut guard, parts).await
            } else {
                match Self::dial(self.addr).await {
                    Ok(s) => {
                        // A fresh connection can't have bytes of an old
                        // reply in flight.
                        guard.inbuf.clear();
                        guard.stream = Some(s);
                        Self::exchange(&mut guard, parts).await
                    }
                    Err(e) => Err(e),
                }
            };
            match result {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if is_disconnect(&e) {
                        guard.stream = None;
                    }
                    if !retryable || !is_disconnect(&e) || attempt >= MAX_RETRIES {
                        return Err(e);
                    }
                    attempt += 1;
                    tokio::time::sleep(backoff).await;
                    backoff = (backoff * 2).min(RETRY_BACKOFF_CAP);
                }
            }
        }
    }

    async fn exchange(conn: &mut ConnState, parts: &[&[u8]]) -> Result<RespValue, ClientError> {
        let stream = conn.stream.as_mut().expect("exchange requires a stream");
        let (inbuf, outbuf) = (&mut conn.inbuf, &mut conn.outbuf);
        outbuf.clear();
        encode_command(outbuf, parts);
        let sent = stream.write_all(outbuf).await;
        if outbuf.len() > RETAINED_BUF {
            *outbuf = BytesMut::with_capacity(4096);
        }
        sent?;
        loop {
            match RespValue::parse(inbuf).map_err(ClientError::Protocol)? {
                Some(v) => return Ok(v),
                None => {
                    let n = stream.read_buf(inbuf).await?;
                    if n == 0 {
                        return Err(ClientError::Protocol("server closed".into()));
                    }
                }
            }
        }
    }

    /// `PING` → server liveness.
    pub async fn ping(&self) -> Result<(), ClientError> {
        match self.call(&[b"PING"], true).await? {
            RespValue::Simple(s) if s == "PONG" => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `GET key`.
    pub async fn get(&self, key: &str) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(&[b"GET", key.as_bytes()], true).await? {
            RespValue::Bulk(v) => Ok(Some(v)),
            RespValue::Null => Ok(None),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `GETV key` → value and version.
    pub async fn get_versioned(&self, key: &str) -> Result<Option<(Vec<u8>, u64)>, ClientError> {
        match self.call(&[b"GETV", key.as_bytes()], true).await? {
            RespValue::Array(items) => match items.as_slice() {
                [RespValue::Bulk(v), RespValue::Integer(ver)] => Ok(Some((v.clone(), *ver as u64))),
                other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
            },
            RespValue::Null => Ok(None),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `SET key value` → new version.
    pub async fn set(&self, key: &str, value: Vec<u8>) -> Result<u64, ClientError> {
        match self.call(&[b"SET", key.as_bytes(), &value], true).await? {
            RespValue::Integer(v) => Ok(v as u64),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `CAS key version value`.
    pub async fn cas(
        &self,
        key: &str,
        expected_version: u64,
        value: Vec<u8>,
    ) -> Result<CasOutcome, ClientError> {
        let mut tmp = [0u8; 20];
        let ver = crate::resp::u64_digits(&mut tmp, expected_version);
        let reply = self
            .call(&[b"CAS", key.as_bytes(), ver, &value], false)
            .await?;
        match reply {
            RespValue::Integer(v) => Ok(CasOutcome::Stored(v as u64)),
            RespValue::Error(e) if e.starts_with("CONFLICT") => {
                let ver = e
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| ClientError::Protocol(format!("bad conflict: {e}")))?;
                Ok(CasOutcome::Conflict(ver))
            }
            RespValue::Error(e) if e == "MISSING" => Ok(CasOutcome::Missing),
            RespValue::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `DEL key` → whether it existed.
    pub async fn del(&self, key: &str) -> Result<bool, ClientError> {
        match self.call(&[b"DEL", key.as_bytes()], true).await? {
            RespValue::Integer(n) => Ok(n == 1),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `DBSIZE` → live key count.
    pub async fn dbsize(&self) -> Result<usize, ClientError> {
        match self.call(&[b"DBSIZE"], true).await? {
            RespValue::Integer(n) => Ok(n as usize),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// `KEYS prefix` → sorted live keys under the prefix (config-plane
    /// scan used for registry rehydration).
    pub async fn keys(&self, prefix: &str) -> Result<Vec<String>, ClientError> {
        match self.call(&[b"KEYS", prefix.as_bytes()], true).await? {
            RespValue::Array(items) => items
                .into_iter()
                .map(|v| match v {
                    RespValue::Bulk(b) => Ok(String::from_utf8_lossy(&b).into_owned()),
                    other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
                })
                .collect(),
            other => Err(ClientError::Protocol(format!("unexpected {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::StateStoreServer;
    use crate::store::StateStore;
    use std::sync::Arc;

    async fn pair() -> (StateStoreServer, StateStoreClient) {
        let server = StateStoreServer::bind("127.0.0.1:0", Arc::new(StateStore::new()))
            .await
            .unwrap();
        let client = StateStoreClient::connect(server.local_addr())
            .await
            .unwrap();
        (server, client)
    }

    #[tokio::test]
    async fn ping_get_set_roundtrip() {
        let (_server, client) = pair().await;
        client.ping().await.unwrap();
        assert!(client.get("k").await.unwrap().is_none());
        let v = client.set("k", b"value".to_vec()).await.unwrap();
        assert_eq!(v, 1);
        assert_eq!(client.get("k").await.unwrap().unwrap(), b"value");
        assert_eq!(client.dbsize().await.unwrap(), 1);
        assert_eq!(client.keys("k").await.unwrap(), vec!["k".to_string()]);
        assert!(client.keys("nope").await.unwrap().is_empty());
        assert!(client.del("k").await.unwrap());
    }

    #[tokio::test]
    async fn cas_over_the_wire() {
        let (_server, client) = pair().await;
        let v1 = client.set("s", b"a".to_vec()).await.unwrap();
        let outcome = client.cas("s", v1, b"b".to_vec()).await.unwrap();
        assert_eq!(outcome, CasOutcome::Stored(v1 + 1));
        let stale = client.cas("s", v1, b"c".to_vec()).await.unwrap();
        assert_eq!(stale, CasOutcome::Conflict(v1 + 1));
        let missing = client.cas("nope", 1, b"x".to_vec()).await.unwrap();
        assert_eq!(missing, CasOutcome::Missing);
    }

    #[tokio::test]
    async fn get_versioned_over_the_wire() {
        let (_server, client) = pair().await;
        client.set("k", b"v1".to_vec()).await.unwrap();
        client.set("k", b"v2".to_vec()).await.unwrap();
        let (val, ver) = client.get_versioned("k").await.unwrap().unwrap();
        assert_eq!(val, b"v2");
        assert_eq!(ver, 2);
        assert!(client.get_versioned("absent").await.unwrap().is_none());
    }

    #[tokio::test]
    async fn client_redials_after_its_connection_is_severed() {
        let (server, client) = pair().await;
        client.set("k", b"v1".to_vec()).await.unwrap();
        // Simulated crash/restart: every established connection dies;
        // the listener (the "restarted" process) accepts fresh dials.
        server.sever_connections();
        // Retryable calls must heal transparently — no visible error.
        assert_eq!(client.get("k").await.unwrap().unwrap(), b"v1");
        server.sever_connections();
        let v2 = client.set("k", b"v2".to_vec()).await.unwrap();
        assert_eq!(v2, 2);
        client.ping().await.unwrap();
    }

    #[tokio::test]
    async fn client_survives_repeated_severing_mid_traffic() {
        // Kill the connection every few operations while a mixed
        // read/write workload flows; zero client-visible failures.
        let (server, client) = pair().await;
        for i in 0..30u32 {
            if i % 5 == 0 {
                server.sever_connections();
            }
            let key = format!("k:{}", i % 3);
            client.set(&key, i.to_string().into_bytes()).await.unwrap();
            let got = client.get(&key).await.unwrap().unwrap();
            assert_eq!(got, i.to_string().into_bytes());
        }
        assert_eq!(client.dbsize().await.unwrap(), 3);
    }

    #[tokio::test]
    async fn cas_fails_fast_on_disconnect_but_the_client_recovers() {
        let (server, client) = pair().await;
        let v1 = client.set("s", b"a".to_vec()).await.unwrap();
        drop(server); // server fully gone: redial can't succeed either
        let err = client.cas("s", v1, b"b".to_vec()).await.unwrap_err();
        assert!(
            super::is_disconnect(&err),
            "CAS must surface the disconnect, got {err:?}"
        );
        // A new server on a fresh port is out of reach for this client
        // (fixed addr), but the dead stream must have been discarded so
        // the next call attempts a clean dial rather than reusing it.
        let err2 = client.ping().await.unwrap_err();
        assert!(matches!(err2, ClientError::Io(_)));
    }

    #[tokio::test]
    async fn many_clients_share_one_server() {
        let server = StateStoreServer::bind("127.0.0.1:0", Arc::new(StateStore::new()))
            .await
            .unwrap();
        let addr = server.local_addr();
        let mut tasks = Vec::new();
        for i in 0..8 {
            tasks.push(tokio::spawn(async move {
                let c = StateStoreClient::connect(addr).await.unwrap();
                c.set(&format!("user:{i}"), vec![i as u8]).await.unwrap();
                c.get(&format!("user:{i}")).await.unwrap().unwrap()
            }));
        }
        for (i, t) in tasks.into_iter().enumerate() {
            assert_eq!(t.await.unwrap(), vec![i as u8]);
        }
        assert_eq!(server.store().len(), 8);
    }
}
