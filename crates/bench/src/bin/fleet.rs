//! Fleet control-loop bench — the replica-lifecycle entry in the repo's
//! bench trajectory (`BENCH_fleet.json`).
//!
//! One scripted scenario over a live fleet manager (spawned health
//! monitor, real heartbeats, manual-ticked autoscaler) under sustained
//! open-loop traffic:
//!
//! 1. **register** — a baseline replica plus the flapping container
//!    `flap-0` self-register; a beat pump heartbeats every live member on
//!    schedule, and a calibration sweep establishes `flap-0`'s latency
//!    curve so expiry has a tune to harvest.
//! 2. **flap** — `flap-0`'s heartbeats stop cold. The monitor walks it
//!    `Healthy → Suspect → Expired` and gracefully drains its queue; the
//!    bench measures wall-clock detection latency from the kill to the
//!    observed expiry.
//! 3. **readmit** — the container re-registers and must come back
//!    *warm*: the harvested curve rides in as the new queue's prior.
//! 4. **load step** — a concurrent burst piles backlog onto the slow
//!    replicas; the autoscaler must decide `Up` within one evaluation.
//! 5. **subside** — the burst drains; after the quiet streak the
//!    autoscaler reaps every managed replica it launched.
//!
//! Flags: `--smoke` (short heartbeats for CI), `--out <path>` (default
//! `BENCH_fleet.json`). `CLIPPER_BENCH_SECONDS` stretches the
//! steady-traffic padding between scenario beats. With `FLEET_ENFORCE=1`
//! the binary exits non-zero unless: zero queries lost across the whole
//! scenario (sheds are answered, not lost), detection latency ≤ 3
//! heartbeat intervals, the readmission was warm, scale-up landed within
//! one evaluation of the load step, and every managed replica was reaped
//! after the load subsided. The emitted JSON is re-parsed and
//! self-validated before the gates run.

use clipper_core::api::{HeartbeatReport, ReplicaSpec};
use clipper_core::{
    AppConfig, AutoscaleConfig, AutoscaleDecision, BatchConfig, Clipper, FleetConfig, FleetEvent,
    FnLauncher, ModelId, Output, PolicyKind, PredictError,
};
use clipper_rpc::error::RpcError;
use clipper_rpc::message::{PredictReply, WireOutput};
use clipper_rpc::transport::{BatchTransport, BoxFuture, Input};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CAPABILITY: &str = "bench:inproc";
const FLAP: &str = "flap-0";
const MODEL: &str = "m";

/// A replica with real service time, so queued work is visible backlog.
struct SimTransport {
    per_item: Duration,
}

impl BatchTransport for SimTransport {
    fn predict_batch(&self, inputs: &[Input]) -> BoxFuture<Result<PredictReply, RpcError>> {
        let n = inputs.len();
        let d = Duration::from_millis(1) + self.per_item * n as u32;
        Box::pin(async move {
            tokio::time::sleep(d).await;
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(1); n],
                queue_us: 0,
                compute_us: d.as_micros() as u64,
            })
        })
    }
    fn id(&self) -> String {
        "sim".into()
    }
}

fn sim_transport() -> Arc<dyn BatchTransport> {
    Arc::new(SimTransport {
        per_item: Duration::from_micros(200),
    })
}

fn spec(name: &str) -> ReplicaSpec {
    ReplicaSpec {
        container_name: name.to_string(),
        model_name: MODEL.into(),
        model_version: 1,
        capabilities: vec![CAPABILITY.into()],
    }
}

#[derive(Clone, Serialize, Deserialize)]
struct TimelineRow {
    t_s: f64,
    replicas: usize,
    managed: usize,
}

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    cores: usize,
    heartbeat_ms: u64,
    suspect_after: u32,
    expire_after: u32,
    seconds: f64,
    issued: u64,
    completed: u64,
    shed: u64,
    lost: u64,
    detection_ms: f64,
    expired_silent_ms: u64,
    saw_suspect: bool,
    warm_readmit: bool,
    scale_up_ticks: u32,
    scaled_down: bool,
    managed_final: usize,
    final_replicas: usize,
    registrations: u64,
    expiries: u64,
    drains: u64,
    replica_timeline: Vec<TimelineRow>,
    events: Vec<String>,
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut smoke = false;
    let mut out_path = "BENCH_fleet.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => panic!("unknown flag {other:?} (see --smoke/--out)"),
        }
        i += 1;
    }
    let hb = if smoke {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(150)
    };
    // Steady-traffic padding between scenario beats, CI-shrinkable.
    let pad: f64 = std::env::var("CLIPPER_BENCH_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 0.5 } else { 2.0 });
    let pad = Duration::from_secs_f64(pad.clamp(0.2, 30.0));
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let fleet_cfg = FleetConfig {
        heartbeat_interval: hb,
        suspect_after: 1,
        expire_after: 2,
    };
    println!(
        "== fleet: heartbeat {}ms, suspect x{}, expire x{}, {cores} cores ==\n",
        hb.as_millis(),
        fleet_cfg.suspect_after,
        fleet_cfg.expire_after
    );

    let clipper = Clipper::builder().fleet_config(fleet_cfg.clone()).build();
    let m = ModelId::new(MODEL, 1);
    clipper.add_model(m.clone(), BatchConfig::default());
    clipper.register_app(
        AppConfig::new("app", vec![m.clone()])
            .with_policy(PolicyKind::Static { model_index: 0 })
            .with_slo(Duration::from_millis(200))
            .with_default_output(Output::Class(0)),
    );
    let fleet = clipper.fleet();
    fleet.add_launcher(Arc::new(FnLauncher::new(CAPABILITY, |_rec| {
        sim_transport()
    })));
    let start = Instant::now();

    // Phase 1: register. A baseline member that never flaps, plus the
    // flapping container under test.
    fleet.register(spec("base-0")).expect("register base-0");
    let outcome = fleet.register(spec(FLAP)).expect("register flap-0");
    let flap_qid = outcome.queue_id.clone().expect("attached in-process");
    assert!(!outcome.warm_start, "first registration is cold");

    // Calibration sweep: establish flap-0's latency curve so the expiry
    // has a tune to harvest (batch spread identifies the slope).
    let model = clipper
        .abstraction()
        .replica_latency_model(&m, &flap_qid)
        .expect("flap queue live");
    for round in 0..3u64 {
        for batch in 1..=8usize {
            model.observe(
                batch,
                Duration::from_micros(1_000 + 200 * batch as u64 + round),
            );
        }
    }
    assert!(model.is_established(), "calibration established the curve");

    // The beat pump: every live member heartbeats on schedule, except a
    // member the scenario has killed. Managed (autoscaled) members are
    // picked up automatically as they appear.
    let killed = Arc::new(AtomicBool::new(false));
    let pump = {
        let fleet = fleet.clone();
        let killed = killed.clone();
        tokio::spawn(async move {
            loop {
                for view in fleet.list() {
                    if view.health == "expired"
                        || (view.container_name == FLAP && killed.load(Ordering::Relaxed))
                    {
                        continue;
                    }
                    let _ = fleet.heartbeat(&view.container_name, HeartbeatReport::default());
                }
                tokio::time::sleep(hb / 3).await;
            }
        })
    };
    let monitor = fleet.spawn_monitor();

    // Open-loop traffic across the whole scenario: sheds are answered
    // decisions; anything else failing counts as lost.
    let stop = Arc::new(AtomicBool::new(false));
    let issued = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let lost = Arc::new(AtomicU64::new(0));
    let traffic = {
        let clipper = clipper.clone();
        let (stop, issued, shed, lost) = (stop.clone(), issued.clone(), shed.clone(), lost.clone());
        tokio::spawn(async move {
            let mut i = 0u32;
            while !stop.load(Ordering::Relaxed) {
                issued.fetch_add(1, Ordering::Relaxed);
                match clipper
                    .predict("app", None, Arc::new(vec![i as f32, 1.0]))
                    .await
                {
                    Ok(_) => {}
                    Err(PredictError::Overloaded) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        lost.fetch_add(1, Ordering::Relaxed);
                    }
                }
                i += 1;
                tokio::time::sleep(Duration::from_millis(2)).await;
            }
        })
    };

    // Replica-count timeline sampler.
    let timeline = Arc::new(std::sync::Mutex::new(Vec::<TimelineRow>::new()));
    let sampler = {
        let clipper = clipper.clone();
        let fleet = fleet.clone();
        let timeline = timeline.clone();
        let m = m.clone();
        tokio::spawn(async move {
            loop {
                let managed = fleet
                    .list()
                    .iter()
                    .filter(|v| v.managed && v.health != "expired")
                    .count();
                timeline.lock().unwrap().push(TimelineRow {
                    t_s: start.elapsed().as_secs_f64(),
                    replicas: clipper.abstraction().replica_count(&m),
                    managed,
                });
                tokio::time::sleep(hb / 2).await;
            }
        })
    };

    tokio::time::sleep(pad).await;

    // Phase 2: flap. Heartbeats stop; the monitor must walk the member
    // to Expired and drain it.
    println!("flap: killing {FLAP}'s heartbeats");
    killed.store(true, Ordering::Relaxed);
    let kill_at = Instant::now();
    let mut saw_suspect = false;
    let deadline = kill_at + hb * 20;
    loop {
        let health = fleet.view(FLAP).map(|v| v.health).unwrap_or_default();
        if health == "suspect" {
            saw_suspect = true;
        }
        if health == "expired" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "monitor never expired {FLAP} (stuck at {health:?})"
        );
        tokio::time::sleep(Duration::from_millis(2)).await;
    }
    let detection_ms = kill_at.elapsed().as_secs_f64() * 1_000.0;
    let expired_silent_ms = fleet
        .events()
        .iter()
        .find_map(|e| match e {
            FleetEvent::Expired {
                container,
                silent_ms,
                drained: true,
            } if container == FLAP => Some(*silent_ms),
            _ => None,
        })
        .expect("expiry event with a graceful drain");
    println!(
        "flap: detected + drained in {detection_ms:.0}ms (observed silence {expired_silent_ms}ms, suspect seen: {saw_suspect})"
    );

    tokio::time::sleep(pad / 2).await;

    // Phase 3: readmit. The container returns; the harvested curve must
    // ride back in as the new queue's prior.
    let outcome = fleet.register(spec(FLAP)).expect("re-register flap-0");
    let warm_readmit = outcome.warm_start;
    killed.store(false, Ordering::Relaxed);
    let new_qid = outcome.queue_id.expect("re-attached");
    let warm_established = clipper
        .abstraction()
        .replica_latency_model(&m, &new_qid)
        .map(|lm| lm.is_established())
        .unwrap_or(false);
    println!("readmit: warm_start={warm_readmit}, established-before-traffic={warm_established}");

    tokio::time::sleep(pad / 2).await;

    // Phase 4: load step. A concurrent burst piles real backlog onto the
    // slow replicas; the autoscaler must scale up within one evaluation.
    println!("load step: {} concurrent queries", 256);
    let autoscale_cfg = AutoscaleConfig {
        model: m.clone(),
        min_replicas: 2,
        max_replicas: 4,
        eval_interval: hb,
        scale_up_backlog_ns: 2_000_000,
        scale_down_backlog_ns: 200_000,
        scale_down_evals: 2,
        capability: CAPABILITY.into(),
        name_prefix: "auto".into(),
    };
    let mut autoscale_state = Default::default();
    let mut burst = Vec::new();
    for i in 0..256u32 {
        let clipper = clipper.clone();
        burst.push(tokio::spawn(async move {
            clipper
                .predict("app", None, Arc::new(vec![10_000.0 + i as f32, 2.0]))
                .await
        }));
    }
    tokio::time::sleep(Duration::from_millis(10)).await;
    let mut scale_up_ticks = 0u32;
    loop {
        scale_up_ticks += 1;
        let decision = fleet
            .autoscale_tick(&autoscale_cfg, &mut autoscale_state)
            .await;
        if decision == AutoscaleDecision::Up {
            break;
        }
        assert!(scale_up_ticks < 10, "autoscaler never scaled up under load");
        tokio::time::sleep(hb).await;
    }
    println!("load step: scaled up on evaluation #{scale_up_ticks}");
    for b in burst {
        match b.await.expect("burst task") {
            Ok(_) | Err(PredictError::Overloaded) => {}
            Err(e) => {
                lost.fetch_add(1, Ordering::Relaxed);
                eprintln!("burst query failed: {e}");
            }
        }
    }

    // Phase 5: subside. The backlog is gone; the quiet streak must reap
    // every managed replica the autoscaler launched.
    let mut scaled_down = false;
    for _ in 0..20 {
        tokio::time::sleep(hb).await;
        fleet
            .autoscale_tick(&autoscale_cfg, &mut autoscale_state)
            .await;
        let managed = fleet
            .list()
            .iter()
            .filter(|v| v.managed && v.health != "expired")
            .count();
        if managed == 0 {
            scaled_down = true;
            break;
        }
    }
    let managed_final = fleet
        .list()
        .iter()
        .filter(|v| v.managed && v.health != "expired")
        .count();
    println!("subside: managed replicas reaped={scaled_down} (left: {managed_final})");

    tokio::time::sleep(pad / 2).await;
    stop.store(true, Ordering::Relaxed);
    traffic.await.expect("traffic task");
    sampler.abort();
    pump.abort();
    monitor.abort();

    let issued = issued.load(Ordering::Relaxed);
    let shed = shed.load(Ordering::Relaxed);
    let lost = lost.load(Ordering::Relaxed);
    let raw_events = fleet.events();
    let registrations = raw_events
        .iter()
        .filter(|e| {
            matches!(
                e,
                FleetEvent::Registered { .. } | FleetEvent::Readmitted { .. }
            )
        })
        .count() as u64;
    let expiries = raw_events
        .iter()
        .filter(|e| matches!(e, FleetEvent::Expired { .. }))
        .count() as u64;
    let events: Vec<String> = raw_events.iter().map(|e| format!("{e:?}")).collect();
    for e in &events {
        println!("  event: {e}");
    }
    let out = Report {
        bench: "fleet".into(),
        cores,
        heartbeat_ms: hb.as_millis() as u64,
        suspect_after: fleet_cfg.suspect_after,
        expire_after: fleet_cfg.expire_after,
        seconds: start.elapsed().as_secs_f64(),
        issued,
        completed: issued - shed - lost,
        shed,
        lost,
        detection_ms,
        expired_silent_ms,
        saw_suspect,
        warm_readmit: warm_readmit && warm_established,
        scale_up_ticks,
        scaled_down,
        managed_final,
        final_replicas: clipper.abstraction().replica_count(&m),
        registrations,
        expiries,
        drains: fleet.drain_count(),
        replica_timeline: timeline.lock().unwrap().clone(),
        events,
    };
    println!(
        "\nissued {} · shed {} · lost {} · detection {:.0}ms · warm {} · up-in {} eval(s) · reaped {}",
        out.issued, out.shed, out.lost, out.detection_ms, out.warm_readmit, out.scale_up_ticks,
        out.scaled_down
    );

    let json = serde_json::to_string(&out).expect("serialize report");
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Self-validation: the emitted file must parse back and be coherent.
    let parsed: Report = serde_json::from_str(&std::fs::read_to_string(&out_path).expect("reread"))
        .expect("emitted JSON must parse back into the report schema");
    assert!(parsed.issued > 0, "malformed report: no traffic");
    assert_eq!(
        parsed.completed + parsed.shed + parsed.lost,
        parsed.issued,
        "malformed report: outcomes do not account for every query"
    );
    assert!(
        !parsed.replica_timeline.is_empty(),
        "malformed report: empty replica timeline"
    );

    if std::env::var("FLEET_ENFORCE").as_deref() == Ok("1") {
        let mut ok = true;
        if out.lost > 0 {
            eprintln!("FAIL: {} queries lost across the flap", out.lost);
            ok = false;
        }
        let bound_ms = (hb * 3).as_secs_f64() * 1_000.0;
        if out.detection_ms > bound_ms {
            eprintln!(
                "FAIL: detection {:.0}ms exceeds 3 heartbeat intervals ({bound_ms:.0}ms)",
                out.detection_ms
            );
            ok = false;
        }
        if !out.warm_readmit {
            eprintln!("FAIL: readmission was not warm");
            ok = false;
        }
        if out.scale_up_ticks > 1 {
            eprintln!(
                "FAIL: scale-up took {} evaluations (bound: 1)",
                out.scale_up_ticks
            );
            ok = false;
        }
        if !out.scaled_down || out.managed_final > 0 {
            eprintln!(
                "FAIL: managed replicas not reaped after subside ({} left)",
                out.managed_final
            );
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "enforce: ok (lost 0, detection {:.0}ms <= {bound_ms:.0}ms, warm readmit, \
             up in 1 eval, managed reaped)",
            out.detection_ms
        );
    }
}
