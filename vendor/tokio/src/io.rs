//! Async I/O traits, extension combinators, `BufReader`, and in-memory
//! [`duplex`] pipes.

use std::future::poll_fn;
use std::io;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// A cursor into a caller-provided read buffer, mirroring
/// `tokio::io::ReadBuf` (without the uninitialized-memory machinery —
/// buffers here are always initialized).
pub struct ReadBuf<'a> {
    buf: &'a mut [u8],
    filled: usize,
}

impl<'a> ReadBuf<'a> {
    /// Wrap an initialized buffer.
    pub fn new(buf: &'a mut [u8]) -> ReadBuf<'a> {
        ReadBuf { buf, filled: 0 }
    }

    /// The filled prefix.
    pub fn filled(&self) -> &[u8] {
        &self.buf[..self.filled]
    }

    /// Bytes of space left.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.filled
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Append `data` to the filled region. Panics if it does not fit.
    pub fn put_slice(&mut self, data: &[u8]) {
        assert!(data.len() <= self.remaining(), "ReadBuf overflow");
        self.buf[self.filled..self.filled + data.len()].copy_from_slice(data);
        self.filled += data.len();
    }

    /// The unfilled region, for direct writes followed by [`Self::advance`].
    pub fn unfilled_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.filled..]
    }

    /// Mark `n` more bytes as filled.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "ReadBuf overflow");
        self.filled += n;
    }
}

/// Asynchronous byte source.
pub trait AsyncRead {
    /// Attempt to read into `buf`; EOF is `Ready(Ok(()))` with nothing
    /// appended.
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>>;
}

/// Asynchronous byte sink.
pub trait AsyncWrite {
    /// Attempt to write from `buf`, returning how many bytes were
    /// accepted.
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>>;

    /// Flush buffered data.
    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;

    /// Shut down the write side.
    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;

    /// Attempt a gather-write from multiple buffers, returning how many
    /// bytes were accepted across them.
    ///
    /// The default degrades to a plain [`poll_write`](Self::poll_write)
    /// of the first non-empty buffer — correct for any sink, just not
    /// coalesced. Sinks that can reach the kernel in one syscall
    /// (`TcpStream`) override this with a real `writev`.
    fn poll_write_vectored(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[io::IoSlice<'_>],
    ) -> Poll<io::Result<usize>> {
        match bufs.iter().find(|b| !b.is_empty()) {
            Some(b) => self.poll_write(cx, b),
            None => Poll::Ready(Ok(0)),
        }
    }
}

impl<T: AsyncRead + Unpin + ?Sized> AsyncRead for &mut T {
    fn poll_read(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        Pin::new(&mut **self).poll_read(cx, buf)
    }
}

impl<T: AsyncWrite + Unpin + ?Sized> AsyncWrite for &mut T {
    fn poll_write(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        Pin::new(&mut **self).poll_write(cx, buf)
    }
    fn poll_flush(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut **self).poll_flush(cx)
    }
    fn poll_shutdown(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut **self).poll_shutdown(cx)
    }
    fn poll_write_vectored(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[io::IoSlice<'_>],
    ) -> Poll<io::Result<usize>> {
        Pin::new(&mut **self).poll_write_vectored(cx, bufs)
    }
}

/// Read combinators, mirroring `tokio::io::AsyncReadExt`.
pub trait AsyncReadExt: AsyncRead {
    /// Read up to `buf.len()` bytes; `Ok(0)` means EOF (or an empty `buf`).
    fn read<'a>(
        &'a mut self,
        buf: &'a mut [u8],
    ) -> impl std::future::Future<Output = io::Result<usize>> + 'a
    where
        Self: Unpin,
    {
        async move {
            poll_fn(|cx| {
                let mut rb = ReadBuf::new(buf);
                match Pin::new(&mut *self).poll_read(cx, &mut rb) {
                    Poll::Ready(Ok(())) => Poll::Ready(Ok(rb.filled().len())),
                    Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
                    Poll::Pending => Poll::Pending,
                }
            })
            .await
        }
    }

    /// Read exactly `buf.len()` bytes or fail with `UnexpectedEof`.
    fn read_exact<'a>(
        &'a mut self,
        buf: &'a mut [u8],
    ) -> impl std::future::Future<Output = io::Result<usize>> + 'a
    where
        Self: Unpin,
    {
        async move {
            let mut filled = 0;
            while filled < buf.len() {
                let n = self.read(&mut buf[filled..]).await?;
                if n == 0 {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "early eof"));
                }
                filled += n;
            }
            Ok(filled)
        }
    }

    /// Read some bytes and append them to `buf`.
    fn read_buf<'a, B: bytes::BufMut>(
        &'a mut self,
        buf: &'a mut B,
    ) -> impl std::future::Future<Output = io::Result<usize>> + 'a
    where
        Self: Unpin,
    {
        async move {
            let mut chunk = [0u8; 16 * 1024];
            let n = self.read(&mut chunk).await?;
            buf.put_slice(&chunk[..n]);
            Ok(n)
        }
    }

    /// Read until EOF, appending UTF-8 text to `buf`; returns bytes read.
    fn read_to_string<'a>(
        &'a mut self,
        buf: &'a mut String,
    ) -> impl std::future::Future<Output = io::Result<usize>> + 'a
    where
        Self: Unpin,
    {
        async move {
            let mut bytes = Vec::new();
            let n = self.read_to_end(&mut bytes).await?;
            let s = String::from_utf8(bytes).map_err(|_| {
                io::Error::new(io::ErrorKind::InvalidData, "stream is not valid UTF-8")
            })?;
            buf.push_str(&s);
            Ok(n)
        }
    }

    /// Read until EOF, appending to `buf`; returns total bytes read.
    fn read_to_end<'a>(
        &'a mut self,
        buf: &'a mut Vec<u8>,
    ) -> impl std::future::Future<Output = io::Result<usize>> + 'a
    where
        Self: Unpin,
    {
        async move {
            let mut total = 0;
            let mut chunk = [0u8; 16 * 1024];
            loop {
                let n = self.read(&mut chunk).await?;
                if n == 0 {
                    return Ok(total);
                }
                buf.extend_from_slice(&chunk[..n]);
                total += n;
            }
        }
    }
}

impl<T: AsyncRead + ?Sized> AsyncReadExt for T {}

/// Write combinators, mirroring `tokio::io::AsyncWriteExt`.
pub trait AsyncWriteExt: AsyncWrite {
    /// Write the entire buffer.
    fn write_all<'a>(
        &'a mut self,
        buf: &'a [u8],
    ) -> impl std::future::Future<Output = io::Result<()>> + 'a
    where
        Self: Unpin,
    {
        async move {
            let mut written = 0;
            while written < buf.len() {
                let n = poll_fn(|cx| Pin::new(&mut *self).poll_write(cx, &buf[written..])).await?;
                if n == 0 {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "write returned 0"));
                }
                written += n;
            }
            Ok(())
        }
    }

    /// Write as much of `buf` as the sink accepts in one call.
    fn write<'a>(
        &'a mut self,
        buf: &'a [u8],
    ) -> impl std::future::Future<Output = io::Result<usize>> + 'a
    where
        Self: Unpin,
    {
        async move { poll_fn(|cx| Pin::new(&mut *self).poll_write(cx, buf)).await }
    }

    /// Flush the sink.
    fn flush(&mut self) -> impl std::future::Future<Output = io::Result<()>> + '_
    where
        Self: Unpin,
    {
        async move { poll_fn(|cx| Pin::new(&mut *self).poll_flush(cx)).await }
    }

    /// Shut down the write side.
    fn shutdown(&mut self) -> impl std::future::Future<Output = io::Result<()>> + '_
    where
        Self: Unpin,
    {
        async move { poll_fn(|cx| Pin::new(&mut *self).poll_shutdown(cx)).await }
    }

    /// Gather-write as much as the sink accepts in one call.
    fn write_vectored<'a>(
        &'a mut self,
        bufs: &'a [io::IoSlice<'a>],
    ) -> impl std::future::Future<Output = io::Result<usize>> + 'a
    where
        Self: Unpin,
    {
        async move { poll_fn(|cx| Pin::new(&mut *self).poll_write_vectored(cx, bufs)).await }
    }

    /// Write every byte of every buffer, advancing `bufs` in place
    /// across partial writes like `std::io::Write::write_all_vectored`.
    fn write_all_vectored<'a, 'b>(
        &'a mut self,
        mut bufs: &'a mut [io::IoSlice<'b>],
    ) -> impl std::future::Future<Output = io::Result<()>> + 'a
    where
        Self: Unpin,
    {
        async move {
            loop {
                if bufs.iter().all(|b| b.is_empty()) {
                    return Ok(());
                }
                let n = poll_fn(|cx| Pin::new(&mut *self).poll_write_vectored(cx, bufs)).await?;
                if n == 0 {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "write returned 0"));
                }
                io::IoSlice::advance_slices(&mut bufs, n);
            }
        }
    }
}

impl<T: AsyncWrite + ?Sized> AsyncWriteExt for T {}

/// A buffered reader over any [`AsyncRead`].
pub struct BufReader<R> {
    inner: R,
    buf: Box<[u8]>,
    pos: usize,
    cap: usize,
}

impl<R: AsyncRead + Unpin> BufReader<R> {
    /// Wrap `inner` with an 8 KiB buffer.
    pub fn new(inner: R) -> BufReader<R> {
        BufReader {
            inner,
            buf: vec![0u8; 8 * 1024].into_boxed_slice(),
            pos: 0,
            cap: 0,
        }
    }

    /// The wrapped reader.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Unwrap, discarding any buffered bytes.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: AsyncRead + Unpin> AsyncRead for BufReader<R> {
    fn poll_read(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        out: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let this = &mut *self;
        if this.pos == this.cap {
            // Large reads bypass the internal buffer entirely.
            if out.remaining() >= this.buf.len() {
                return Pin::new(&mut this.inner).poll_read(cx, out);
            }
            let mut rb = ReadBuf::new(&mut this.buf);
            match Pin::new(&mut this.inner).poll_read(cx, &mut rb) {
                Poll::Ready(Ok(())) => {
                    this.pos = 0;
                    this.cap = rb.filled().len();
                    if this.cap == 0 {
                        return Poll::Ready(Ok(())); // EOF
                    }
                }
                other => return other,
            }
        }
        let n = out.remaining().min(this.cap - this.pos);
        out.put_slice(&this.buf[this.pos..this.pos + n]);
        this.pos += n;
        Poll::Ready(Ok(()))
    }
}

// ---- in-memory duplex pipe ----

struct Pipe {
    buf: std::collections::VecDeque<u8>,
    capacity: usize,
    write_closed: bool,
    read_closed: bool,
    read_waker: Option<Waker>,
    write_waker: Option<Waker>,
}

impl Pipe {
    fn new(capacity: usize) -> Arc<Mutex<Pipe>> {
        Arc::new(Mutex::new(Pipe {
            buf: std::collections::VecDeque::new(),
            capacity,
            write_closed: false,
            read_closed: false,
            read_waker: None,
            write_waker: None,
        }))
    }
}

/// One end of an in-memory bidirectional byte stream.
pub struct DuplexStream {
    /// Pipe this end reads from.
    rx: Arc<Mutex<Pipe>>,
    /// Pipe this end writes to.
    tx: Arc<Mutex<Pipe>>,
}

/// Create a connected pair of in-memory streams with `max_buf_size` bytes
/// of buffer in each direction, mirroring `tokio::io::duplex`.
pub fn duplex(max_buf_size: usize) -> (DuplexStream, DuplexStream) {
    let a_to_b = Pipe::new(max_buf_size);
    let b_to_a = Pipe::new(max_buf_size);
    (
        DuplexStream {
            rx: Arc::clone(&b_to_a),
            tx: Arc::clone(&a_to_b),
        },
        DuplexStream {
            rx: a_to_b,
            tx: b_to_a,
        },
    )
}

impl AsyncRead for DuplexStream {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        out: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let mut p = self.rx.lock().unwrap();
        if p.buf.is_empty() {
            if p.write_closed {
                return Poll::Ready(Ok(())); // EOF
            }
            p.read_waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let n = out.remaining().min(p.buf.len());
        // Copy the (at most two) contiguous runs of the ring buffer in
        // bulk rather than byte-at-a-time.
        let (front, back) = p.buf.as_slices();
        let from_front = n.min(front.len());
        out.put_slice(&front[..from_front]);
        out.put_slice(&back[..n - from_front]);
        p.buf.drain(..n);
        if let Some(w) = p.write_waker.take() {
            drop(p);
            w.wake();
        }
        Poll::Ready(Ok(()))
    }
}

impl AsyncWrite for DuplexStream {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let mut p = self.tx.lock().unwrap();
        if p.read_closed {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "duplex peer dropped",
            )));
        }
        if p.write_closed {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "duplex write side shut down",
            )));
        }
        let space = p.capacity.saturating_sub(p.buf.len());
        if space == 0 {
            p.write_waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let n = space.min(buf.len());
        p.buf.extend(&buf[..n]);
        if let Some(w) = p.read_waker.take() {
            drop(p);
            w.wake();
        }
        Poll::Ready(Ok(n))
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        let mut p = self.tx.lock().unwrap();
        p.write_closed = true;
        if let Some(w) = p.read_waker.take() {
            drop(p);
            w.wake();
        }
        Poll::Ready(Ok(()))
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        {
            let mut p = self.tx.lock().unwrap();
            p.write_closed = true;
            if let Some(w) = p.read_waker.take() {
                drop(p);
                w.wake();
            }
        }
        {
            let mut p = self.rx.lock().unwrap();
            p.read_closed = true;
            if let Some(w) = p.write_waker.take() {
                drop(p);
                w.wake();
            }
        }
    }
}

/// Split any full-duplex stream into separately-owned halves.
pub fn split<S>(stream: S) -> (ReadHalf<S>, WriteHalf<S>)
where
    S: AsyncRead + AsyncWrite + Unpin,
{
    let shared = Arc::new(Mutex::new(stream));
    (
        ReadHalf {
            inner: Arc::clone(&shared),
        },
        WriteHalf { inner: shared },
    )
}

/// Read half produced by [`split`].
pub struct ReadHalf<S> {
    inner: Arc<Mutex<S>>,
}

/// Write half produced by [`split`].
pub struct WriteHalf<S> {
    inner: Arc<Mutex<S>>,
}

impl<S: AsyncRead + Unpin> AsyncRead for ReadHalf<S> {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let mut s = self.inner.lock().unwrap();
        Pin::new(&mut *s).poll_read(cx, buf)
    }
}

impl<S: AsyncWrite + Unpin> AsyncWrite for WriteHalf<S> {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let mut s = self.inner.lock().unwrap();
        Pin::new(&mut *s).poll_write(cx, buf)
    }
    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        let mut s = self.inner.lock().unwrap();
        Pin::new(&mut *s).poll_flush(cx)
    }
    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        let mut s = self.inner.lock().unwrap();
        Pin::new(&mut *s).poll_shutdown(cx)
    }
    fn poll_write_vectored(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[io::IoSlice<'_>],
    ) -> Poll<io::Result<usize>> {
        let mut s = self.inner.lock().unwrap();
        Pin::new(&mut *s).poll_write_vectored(cx, bufs)
    }
}
