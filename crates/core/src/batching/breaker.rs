//! Per-replica circuit breaker (§5.2.2 robustness): stop dispatching at a
//! replica that keeps failing, probe it after a cooldown, and readmit it
//! only once a probe batch succeeds.
//!
//! The breaker runs the classic three-state machine per replica queue:
//!
//! - **Closed** — batches dispatch normally. Every batch outcome lands in
//!   a sliding window of the last [`BreakerConfig::window`] batches; the
//!   breaker *opens* when the failure rate over a sufficiently full window
//!   crosses [`BreakerConfig::failure_threshold`], or immediately on
//!   [`BreakerConfig::streak`] consecutive failures.
//! - **Open** — the worker refuses to dispatch here; queued items are
//!   redispatched onto sibling replicas (or fail-filled when none can take
//!   them). [`CircuitBreaker::is_tripped`] reports `true` for the
//!   [`BreakerConfig::cooldown`] duration, feeding the scheduler's
//!   suspect hint so new traffic routes around the replica. Once the
//!   cooldown elapses the breaker stops reporting tripped — routing
//!   resumes, and the first batch to arrive becomes the probe.
//! - **HalfOpen** — exactly one probe batch is admitted
//!   ([`CircuitBreaker::admit_batch`]); its outcome decides: success
//!   *closes* the breaker (window reset), failure *re-opens* it for
//!   another cooldown.
//!
//! All state transitions are counted ([`CircuitBreaker::opened`],
//! [`CircuitBreaker::half_opened`], [`CircuitBreaker::closed`]) and the
//! live state is exported as a per-queue `/metrics` gauge by the model
//! abstraction layer.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Circuit-breaker tuning (per replica queue).
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Sliding window length in batches (capped at 64 — outcomes live in
    /// a bitmask).
    pub window: usize,
    /// Failure rate over the window that opens the breaker (once at least
    /// `min_samples` outcomes are in the window).
    pub failure_threshold: f64,
    /// Minimum outcomes in the window before the rate test applies — a
    /// single failed batch after an idle period must not trip a 100% rate.
    pub min_samples: usize,
    /// Consecutive failures that open the breaker regardless of the
    /// window (fast trip for a replica that is hard-down).
    pub streak: usize,
    /// How long an opened breaker holds traffic off before probing.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            failure_threshold: 0.5,
            min_samples: 8,
            // Matches the queue's consecutive-error suspect threshold, so
            // a replica the scheduler routes around for a failure streak
            // always has a tripped breaker — whose probe cycle is what
            // later routes traffic *back* (see `wants_probe`).
            streak: 3,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// Live state of a [`CircuitBreaker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Dispatching normally.
    Closed,
    /// One probe batch is (or is about to be) in flight.
    HalfOpen,
    /// Refusing dispatch until the cooldown elapses.
    Open,
}

impl BreakerState {
    /// Stable numeric code for the `/metrics` gauge
    /// (0 = closed, 1 = half-open, 2 = open).
    pub fn code(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

const ST_CLOSED: u8 = 0;
const ST_HALF_OPEN: u8 = 1;
const ST_OPEN: u8 = 2;

/// Sliding-window batch outcomes plus the half-open probe token.
struct BreakerWindow {
    /// Bit i set = outcome i in the ring was a failure.
    bits: u64,
    /// Next ring slot to overwrite.
    head: usize,
    /// Outcomes recorded so far, saturating at the window length.
    len: usize,
    /// Consecutive failures (reset by any success).
    streak: usize,
    /// Whether the half-open probe slot is taken.
    probing: bool,
}

/// The per-replica breaker. All reads on the routing path
/// ([`is_tripped`](CircuitBreaker::is_tripped),
/// [`state`](CircuitBreaker::state)) are lock-free; the window mutex is
/// touched only once per *batch* (not per query), off the submit path.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    /// Reference point for the atomic `open_until_ns` deadline.
    base: Instant,
    state: AtomicU8,
    /// Cooldown deadline in nanoseconds since `base` (valid while Open).
    open_until_ns: AtomicU64,
    window: Mutex<BreakerWindow>,
    n_opened: AtomicU64,
    n_half_opened: AtomicU64,
    n_closed: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg: BreakerConfig {
                window: cfg.window.clamp(1, 64),
                ..cfg
            },
            base: Instant::now(),
            state: AtomicU8::new(ST_CLOSED),
            open_until_ns: AtomicU64::new(0),
            window: Mutex::new(BreakerWindow {
                bits: 0,
                head: 0,
                len: 0,
                streak: 0,
                probing: false,
            }),
            n_opened: AtomicU64::new(0),
            n_half_opened: AtomicU64::new(0),
            n_closed: AtomicU64::new(0),
        }
    }

    fn now_ns(&self) -> u64 {
        self.base.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            ST_CLOSED => BreakerState::Closed,
            ST_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Open,
        }
    }

    /// Whether the breaker is currently holding traffic off: `Open` and
    /// still inside the cooldown. Routing treats a tripped breaker like a
    /// suspect replica; once the cooldown elapses this reports `false`
    /// again so the scheduler can deliver the probe batch — a pull-based
    /// queue that nobody routes to would otherwise never get the chance
    /// to close its breaker.
    pub fn is_tripped(&self) -> bool {
        self.state.load(Ordering::Acquire) == ST_OPEN
            && self.now_ns() < self.open_until_ns.load(Ordering::Acquire)
    }

    /// Whether the breaker is ready for a recovery probe: `Open` with
    /// the cooldown elapsed, or `HalfOpen` with the probe slot free. The
    /// scheduler uses this to deliberately hand one query to a suspect
    /// replica — a pull-based queue that nobody routes to could never
    /// prove it recovered, and the breaker would stay open forever.
    pub fn wants_probe(&self) -> bool {
        match self.state.load(Ordering::Acquire) {
            ST_OPEN => self.now_ns() >= self.open_until_ns.load(Ordering::Acquire),
            ST_HALF_OPEN => !self.window.lock().probing,
            _ => false,
        }
    }

    /// Ask to dispatch one batch. `Closed` admits; `Open` admits only
    /// past the cooldown (transitioning to `HalfOpen` and consuming the
    /// probe slot); `HalfOpen` admits only if the probe slot is free.
    pub fn admit_batch(&self) -> bool {
        match self.state.load(Ordering::Acquire) {
            ST_CLOSED => true,
            ST_OPEN => {
                if self.now_ns() < self.open_until_ns.load(Ordering::Acquire) {
                    return false;
                }
                let mut w = self.window.lock();
                // Re-check under the lock: a racing worker may have taken
                // the probe slot already.
                match self.state.load(Ordering::Acquire) {
                    ST_OPEN => {
                        w.probing = true;
                        self.state.store(ST_HALF_OPEN, Ordering::Release);
                        self.n_half_opened.fetch_add(1, Ordering::Relaxed);
                        true
                    }
                    ST_CLOSED => true,
                    _ => {
                        if w.probing {
                            false
                        } else {
                            w.probing = true;
                            true
                        }
                    }
                }
            }
            _ => {
                let mut w = self.window.lock();
                if w.probing {
                    false
                } else {
                    w.probing = true;
                    true
                }
            }
        }
    }

    /// Record one batch outcome (called once per dispatched batch).
    pub fn record(&self, ok: bool) {
        let mut w = self.window.lock();
        match self.state.load(Ordering::Acquire) {
            ST_HALF_OPEN => {
                w.probing = false;
                if ok {
                    // Probe succeeded: close with a fresh window.
                    w.bits = 0;
                    w.head = 0;
                    w.len = 0;
                    w.streak = 0;
                    self.state.store(ST_CLOSED, Ordering::Release);
                    self.n_closed.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.open_locked();
                }
            }
            ST_CLOSED => {
                let bit = 1u64 << w.head;
                if !ok {
                    w.bits |= bit;
                } else {
                    w.bits &= !bit;
                }
                w.head = (w.head + 1) % self.cfg.window;
                w.len = (w.len + 1).min(self.cfg.window);
                w.streak = if ok { 0 } else { w.streak + 1 };
                let rate_trips = w.len >= self.cfg.min_samples
                    && (w.bits.count_ones() as f64 / w.len as f64) >= self.cfg.failure_threshold;
                if rate_trips || w.streak >= self.cfg.streak {
                    self.open_locked();
                    // Fresh window after recovery.
                    w.bits = 0;
                    w.head = 0;
                    w.len = 0;
                    w.streak = 0;
                }
            }
            _ => {
                // Already Open: a straggler batch dispatched before the
                // trip is still settling — nothing to update.
            }
        }
    }

    /// Transition to Open and arm the cooldown (window lock held).
    fn open_locked(&self) {
        self.open_until_ns.store(
            self.now_ns()
                .saturating_add(self.cfg.cooldown.as_nanos().min(u64::MAX as u128) as u64),
            Ordering::Release,
        );
        self.state.store(ST_OPEN, Ordering::Release);
        self.n_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Closed→Open transitions observed (including HalfOpen re-opens).
    pub fn opened(&self) -> u64 {
        self.n_opened.load(Ordering::Relaxed)
    }

    /// Open→HalfOpen transitions (probes granted).
    pub fn half_opened(&self) -> u64 {
        self.n_half_opened.load(Ordering::Relaxed)
    }

    /// HalfOpen→Closed transitions (successful recoveries).
    pub fn closed(&self) -> u64 {
        self.n_closed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            streak: 3,
            cooldown: Duration::from_millis(20),
        }
    }

    #[test]
    fn opens_on_a_failure_streak() {
        let b = CircuitBreaker::new(fast_cfg());
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(false);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.is_tripped());
        assert_eq!(b.opened(), 1);
        assert!(!b.admit_batch(), "open breaker must refuse inside cooldown");
    }

    #[test]
    fn opens_on_failure_rate_without_a_streak() {
        let b = CircuitBreaker::new(fast_cfg());
        // Alternate so no 3-streak forms, but the window rate hits 50%.
        for _ in 0..4 {
            b.record(false);
            b.record(true);
        }
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn successes_keep_it_closed() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..100 {
            b.record(true);
        }
        // One failure in a healthy window is noise, not an outage.
        b.record(false);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit_batch());
    }

    #[test]
    fn half_open_probe_success_closes() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..3 {
            b.record(false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(25));
        assert!(!b.is_tripped(), "cooldown elapsed: routable again");
        assert!(b.admit_batch(), "first batch after cooldown is the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit_batch(), "only one probe at a time");
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.half_opened(), 1);
        assert_eq!(b.closed(), 1);
        assert!(b.admit_batch());
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..3 {
            b.record(false);
        }
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit_batch());
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.is_tripped(), "re-open re-arms the cooldown");
        assert_eq!(b.opened(), 2);
        // And it can still recover after another cooldown.
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit_batch());
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn wants_probe_tracks_the_recovery_cycle() {
        let b = CircuitBreaker::new(fast_cfg());
        assert!(!b.wants_probe(), "closed breaker needs no probe");
        for _ in 0..3 {
            b.record(false);
        }
        assert!(!b.wants_probe(), "cooling down: hold traffic off");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.wants_probe(), "cooldown elapsed: ask for a probe");
        assert!(b.admit_batch());
        assert!(!b.wants_probe(), "probe in flight: no second probe");
        b.record(true);
        assert!(!b.wants_probe(), "closed again");
    }

    #[test]
    fn state_codes_are_stable() {
        assert_eq!(BreakerState::Closed.code(), 0);
        assert_eq!(BreakerState::HalfOpen.code(), 1);
        assert_eq!(BreakerState::Open.code(), 2);
    }
}
