//! Bandwidth/latency-simulated network links (the Figure-6 substrate).
//!
//! Figure 6 scales model replicas across a GPU cluster behind 10 Gbps and
//! 1 Gbps switches: with 1 Gbps, the aggregate GPU throughput exceeds the
//! wire and the network saturates at the second replica. [`SimLink`]
//! reproduces the physics: a full-duplex serial resource where each frame
//! occupies the direction for `bytes / bandwidth` seconds, plus a fixed
//! propagation delay each way. All transports wrapped by one link share
//! its capacity — the Clipper-side NIC.

use clipper_rpc::error::RpcError;
use clipper_rpc::message::PredictReply;
use clipper_rpc::transport::{BatchTransport, BoxFuture, Input};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One direction of a serial link.
struct Scheduler {
    state: Mutex<SchedState>,
}

struct SchedState {
    next_free: Instant,
    /// Accumulated simulated wire occupancy — the exact `bytes/bandwidth`
    /// transfer time, independent of timer granularity or scheduler
    /// noise. Tests assert on this instead of wall clock.
    busy: Duration,
}

impl Scheduler {
    fn new() -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                next_free: Instant::now(),
                busy: Duration::ZERO,
            }),
        }
    }

    /// Reserve the direction for `bytes` at `bytes_per_sec`; returns when
    /// the transfer will complete (absolute deadline to sleep until).
    fn reserve(&self, bytes: usize, bytes_per_sec: f64) -> Instant {
        let transfer = Duration::from_secs_f64(bytes as f64 / bytes_per_sec.max(1.0));
        let mut state = self.state.lock();
        let start = state.next_free.max(Instant::now());
        let done = start + transfer;
        state.next_free = done;
        state.busy += transfer;
        done
    }

    fn busy(&self) -> Duration {
        self.state.lock().busy
    }
}

/// A shared, bandwidth-limited, full-duplex link.
pub struct SimLink {
    bytes_per_sec: f64,
    one_way: Duration,
    tx: Scheduler,
    rx: Scheduler,
}

impl SimLink {
    /// A link with `gbps` gigabits/second capacity and `rtt` round-trip
    /// propagation delay.
    pub fn gbps(gbps: f64, rtt: Duration) -> Arc<Self> {
        Arc::new(SimLink {
            bytes_per_sec: gbps * 1e9 / 8.0,
            one_way: rtt / 2,
            tx: Scheduler::new(),
            rx: Scheduler::new(),
        })
    }

    /// Link capacity in bytes/second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Total simulated occupancy of the request (tx) direction so far —
    /// the sum of exact `bytes/bandwidth` transfer times, free of wall-
    /// clock noise.
    pub fn tx_busy(&self) -> Duration {
        self.tx.busy()
    }

    /// Total simulated occupancy of the response (rx) direction so far.
    pub fn rx_busy(&self) -> Duration {
        self.rx.busy()
    }

    /// Wrap a transport so its traffic flows over this link. Many
    /// transports may share one link (they contend for its capacity).
    pub fn wrap(self: &Arc<Self>, inner: Arc<dyn BatchTransport>) -> Arc<dyn BatchTransport> {
        Arc::new(SimLinkedTransport {
            link: self.clone(),
            inner,
        })
    }
}

struct SimLinkedTransport {
    link: Arc<SimLink>,
    inner: Arc<dyn BatchTransport>,
}

/// Wire size of a batch request: frame header + count + per-input floats
/// (matches `Message::PredictRequest::wire_size`).
fn request_bytes(inputs: &[Input]) -> usize {
    22 + inputs.iter().map(|i| 4 + 4 * i.len()).sum::<usize>()
}

fn reply_bytes(reply: &PredictReply) -> usize {
    38 + reply.outputs.iter().map(|o| o.wire_size()).sum::<usize>()
}

impl BatchTransport for SimLinkedTransport {
    fn predict_batch(&self, inputs: &[Input]) -> BoxFuture<Result<PredictReply, RpcError>> {
        let link = self.link.clone();
        let inner = self.inner.clone();
        let inputs = inputs.to_vec(); // Arc clones only
        Box::pin(async move {
            // Request serialization onto the wire (shared, serial).
            let req_done = link.tx.reserve(request_bytes(&inputs), link.bytes_per_sec);
            tokio::time::sleep_until((req_done + link.one_way).into()).await;

            let reply = inner.predict_batch(&inputs).await?;

            // Response transfer back.
            let resp_done = link.rx.reserve(reply_bytes(&reply), link.bytes_per_sec);
            tokio::time::sleep_until((resp_done + link.one_way).into()).await;
            Ok(reply)
        })
    }

    fn id(&self) -> String {
        format!("simlink({})", self.inner.id())
    }

    fn is_healthy(&self) -> bool {
        self.inner.is_healthy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clipper_rpc::message::WireOutput;
    use clipper_rpc::transport::FnTransport;

    fn instant_transport() -> Arc<dyn BatchTransport> {
        Arc::new(FnTransport::new("fast", |inputs: &[Input]| {
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(0); inputs.len()],
                queue_us: 0,
                compute_us: 0,
            })
        }))
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn transfer_time_scales_with_payload() {
        // 1 Gbps = 125 MB/s. A 1.25MB batch should take ≈10ms one way.
        let link = SimLink::gbps(1.0, Duration::ZERO);
        let t = link.wrap(instant_transport());
        let big_input: Input = Arc::new(vec![0.0f32; 312_500]); // 1.25 MB
        let start = Instant::now();
        t.predict_batch(&[big_input]).await.unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(9),
            "1.25MB over 1Gbps must take ≈10ms, took {elapsed:?}"
        );
        assert!(elapsed < Duration::from_millis(60), "took {elapsed:?}");
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn ten_gbps_is_ten_times_faster() {
        // Assert on the *simulated* transfer time, not wall clock: the
        // fast link's 1ms transfer sits inside timer-granularity noise,
        // which made the old `slow_elapsed > fast_elapsed * 3` flake.
        let slow = SimLink::gbps(1.0, Duration::ZERO);
        let fast = SimLink::gbps(10.0, Duration::ZERO);
        let input: Input = Arc::new(vec![0.0f32; 312_500]);

        slow.wrap(instant_transport())
            .predict_batch(std::slice::from_ref(&input))
            .await
            .unwrap();
        fast.wrap(instant_transport())
            .predict_batch(&[input])
            .await
            .unwrap();

        let s = slow.tx_busy() + slow.rx_busy();
        let f = fast.tx_busy() + fast.rx_busy();
        let ratio = s.as_secs_f64() / f.as_secs_f64();
        assert!(
            (9.5..=10.5).contains(&ratio),
            "1Gbps busy {s:?} vs 10Gbps busy {f:?}: ratio {ratio} expected 10"
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn shared_link_serializes_concurrent_transfers() {
        // Two 1.25MB transfers on one 1Gbps link: the second queues behind
        // the first, so total time ≈ 20ms, not 10.
        let link = SimLink::gbps(1.0, Duration::ZERO);
        let t1 = link.wrap(instant_transport());
        let t2 = link.wrap(instant_transport());
        let input: Input = Arc::new(vec![0.0f32; 312_500]);
        let start = Instant::now();
        let (a, b) = tokio::join!(
            t1.predict_batch(std::slice::from_ref(&input)),
            t2.predict_batch(std::slice::from_ref(&input))
        );
        a.unwrap();
        b.unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(18),
            "shared link must serialize: {elapsed:?}"
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn rtt_adds_fixed_delay() {
        let link = SimLink::gbps(10.0, Duration::from_millis(10));
        let t = link.wrap(instant_transport());
        let start = Instant::now();
        t.predict_batch(&[Arc::new(vec![0.0])]).await.unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(10),
            "one RTT of propagation expected, got {elapsed:?}"
        );
    }
}
