//! Proves the predict hot path hashes each input exactly once (§4.2
//! tentpole: compute-once `CacheKey`).
//!
//! This file intentionally holds a single test: integration-test binaries
//! run as their own process, so the process-wide `CacheKey::build_count()`
//! delta is exactly the key builds this test triggers.

use clipper::core::abstraction::{BatchConfig, ModelAbstractionLayer};
use clipper::core::cache::CacheKey;
use clipper::core::{ModelId, Output};
use clipper::metrics::Registry;
use clipper::rpc::message::{PredictReply, WireOutput};
use clipper::rpc::transport::{BatchTransport, FnTransport};
use std::sync::Arc;

#[tokio::test]
async fn predict_hashes_each_input_exactly_once() {
    let mal = ModelAbstractionLayer::new(64, Registry::new());
    let m = ModelId::new("m", 1);
    mal.add_model(m.clone(), BatchConfig::default());
    let echo: Arc<dyn BatchTransport> = Arc::new(FnTransport::new("echo", |inputs| {
        Ok(PredictReply {
            outputs: inputs
                .iter()
                .map(|x| WireOutput::Class(x[0] as u32))
                .collect(),
            queue_us: 0,
            compute_us: 1,
        })
    }));
    mal.add_replica(&m, echo).unwrap();

    let input: clipper::core::Input = Arc::new(vec![7.0; 256]);
    // The build counter is compiled out of release builds (it would put a
    // process-global atomic on the hot path); the counting assertions
    // only hold in debug. The serving assertions run either way.
    let counting = cfg!(debug_assertions);
    let before = CacheKey::build_count();

    // Cold predict: miss → MustCompute → queue dispatch → cache fill. The
    // queue's reply sink carries the precomputed key, so the whole round
    // trip costs one hashing pass.
    let out = mal.predict(&m, input.clone(), true).await.unwrap();
    assert_eq!(out, Output::Class(7));
    if counting {
        assert_eq!(
            CacheKey::build_count() - before,
            1,
            "cold predict must hash the input exactly once"
        );
    }

    // Warm predict: hit. Again exactly one pass.
    let out = mal.predict(&m, input.clone(), true).await.unwrap();
    assert_eq!(out, Output::Class(7));
    if counting {
        assert_eq!(
            CacheKey::build_count() - before,
            2,
            "warm predict must hash the input exactly once"
        );
    }

    // The cache-bypass path hashes nothing at all.
    mal.predict(&m, input, false).await.unwrap();
    if counting {
        assert_eq!(
            CacheKey::build_count() - before,
            2,
            "uncached predict must not build cache keys"
        );
    }
}
