//! Log-bucketed histogram with quantile estimation.
//!
//! The recorder follows the HDR-histogram idea: values are bucketed by
//! (exponent, mantissa-slice) so relative error is bounded (< 1/32 here)
//! while insertion stays O(1) with a single atomic increment. This is the
//! structure behind every latency figure in the paper reproduction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of linear sub-buckets per power of two. 32 sub-buckets bound the
/// relative quantile error at ~3%, plenty for P99 comparisons.
const SUB_BUCKETS: usize = 32;
const SUB_BUCKET_BITS: u32 = 5;
/// 2^44 µs ≈ 200 days; anything above saturates into the last bucket.
const MAX_EXPONENT: usize = 44;
const BUCKET_COUNT: usize = (MAX_EXPONENT + 1) * SUB_BUCKETS;

/// A concurrent, log-bucketed histogram of `u64` samples (microseconds by
/// convention).
///
/// Cloning shares the recorder. Recording is wait-free; snapshots are a
/// consistent-enough read of all buckets (individual bucket reads are
/// atomic; cross-bucket skew during concurrent recording is acceptable for
/// telemetry).
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
}

struct Inner {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        let buckets = (0..BUCKET_COUNT)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Histogram {
            inner: Arc::new(Inner {
                buckets,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Bucket index for a value: 5 mantissa bits below the leading bit.
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            // Values 0..32 map to exponent-0 linear buckets exactly.
            return value as usize;
        }
        let exponent = 63 - value.leading_zeros(); // >= SUB_BUCKET_BITS
        let shift = exponent - SUB_BUCKET_BITS;
        let mantissa = ((value >> shift) & (SUB_BUCKETS as u64 - 1)) as usize;
        let exp_slot = (exponent - SUB_BUCKET_BITS + 1) as usize;
        let slot = exp_slot.min(MAX_EXPONENT);
        slot * SUB_BUCKETS + mantissa
    }

    /// Representative (upper-edge) value for a bucket index, used when
    /// reading quantiles back out.
    fn value_of(index: usize) -> u64 {
        let slot = index / SUB_BUCKETS;
        let mantissa = (index % SUB_BUCKETS) as u64;
        if slot == 0 {
            return mantissa;
        }
        let exponent = slot as u32 + SUB_BUCKET_BITS - 1;
        let base = 1u64 << exponent;
        let step = 1u64 << (exponent - SUB_BUCKET_BITS);
        base + mantissa * step + (step - 1)
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        let idx = Self::index_of(value);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.max.fetch_max(value, Ordering::Relaxed);
        self.inner.min.fetch_min(value, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(crate::duration_us(d));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Take an immutable snapshot for quantile queries and reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: self.inner.sum.load(Ordering::Relaxed),
            max: self.inner.max.load(Ordering::Relaxed),
            min: self.inner.min.load(Ordering::Relaxed),
        }
    }

    /// Clear all samples (used between experiment phases).
    pub fn reset(&self) {
        for b in self.inner.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.inner.count.store(0, Ordering::Relaxed);
        self.inner.sum.store(0, Ordering::Relaxed);
        self.inner.max.store(0, Ordering::Relaxed);
        self.inner.min.store(u64::MAX, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`], supporting quantile queries.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

impl HistogramSnapshot {
    /// Number of samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum recorded value (not bucket-rounded).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (not bucket-rounded).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` in [0, 1]. Returns 0 for an empty snapshot.
    ///
    /// The result is the upper edge of the bucket containing the q-th
    /// sample, clamped to the exact observed max, so `quantile(1.0) == max`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::value_of(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile — the tail-latency bound the paper reports everywhere.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.min(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 32);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 31);
        assert_eq!(s.quantile(0.0), 0);
        // The 16th sample (rank ceil(0.5*32)=16) is value 15.
        assert_eq!(s.p50(), 15);
    }

    #[test]
    fn quantiles_bounded_relative_error() {
        let h = Histogram::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut vals: Vec<u64> = (0..50_000)
            .map(|_| rng.random_range(1..2_000_000))
            .collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        let s = h.snapshot();
        for &q in &[0.5, 0.9, 0.95, 0.99, 0.999] {
            let exact = vals[((q * vals.len() as f64).ceil() as usize - 1).min(vals.len() - 1)];
            let est = s.quantile(q);
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(rel < 0.05, "q={q}: est={est} exact={exact} rel={rel}");
        }
    }

    #[test]
    fn max_and_min_are_exact() {
        let h = Histogram::new();
        h.record(12_345);
        h.record(999_999);
        h.record(17);
        let s = h.snapshot();
        assert_eq!(s.max(), 999_999);
        assert_eq!(s.min(), 17);
        assert_eq!(s.quantile(1.0), 999_999);
    }

    #[test]
    fn mean_matches_sum_over_count() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.sum(), 100);
        assert!((s.mean() - 25.0).abs() < f64::EPSILON);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(1000);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn huge_values_saturate_without_panic() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.max(), u64::MAX);
    }

    #[test]
    fn concurrent_recording_counts_all_samples() {
        let h = Histogram::new();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..25_000u64 {
                        h.record(i * (t + 1));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 100_000);
    }

    #[test]
    fn index_value_roundtrip_is_monotone() {
        let mut last = 0usize;
        for v in (0..1_000_000u64).step_by(997) {
            let idx = Histogram::index_of(v);
            assert!(idx >= last || idx == last, "index must be non-decreasing");
            assert!(
                Histogram::value_of(idx) >= v,
                "bucket upper edge covers value"
            );
            last = idx;
        }
    }
}
