//! Synchronization primitives: [`mpsc`], [`oneshot`], [`Semaphore`], and
//! an async [`Mutex`].

pub mod mpsc;
pub mod oneshot;

mod mutex;
mod semaphore;

pub use mutex::{Mutex, MutexGuard};
pub use semaphore::{AcquireError, OwnedSemaphorePermit, Semaphore, SemaphorePermit};
