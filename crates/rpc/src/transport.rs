//! The batch-transport abstraction.
//!
//! Everything the model abstraction layer talks to — TCP container handles,
//! in-process containers, fault-injection and simulated-network wrappers —
//! implements [`BatchTransport`]. The trait is object-safe (boxed futures)
//! so replica sets can mix transport kinds freely.
//!
//! # The zero-copy contract
//!
//! `predict_batch` consumes a slice of [`Input`]s — `Arc`-shared feature
//! vectors. A dispatching queue assembles a batch by cloning `Arc`
//! *pointers* only; an implementation that needs owned data for a `'static`
//! future calls `inputs.to_vec()`, which again clones pointers, never the
//! `f32` payload. The only place feature bytes are copied is wire
//! serialization itself (the TCP codec), which no API shape can avoid.

use crate::error::RpcError;
use crate::message::PredictReply;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;

/// A query input: a shared feature vector. `Arc` because one input fans
/// out to many models, queues, batches, and cache keys without copying.
pub type Input = Arc<Vec<f32>>;

/// Boxed future alias used by object-safe async traits.
pub type BoxFuture<T> = Pin<Box<dyn Future<Output = T> + Send>>;

/// A connection to one model container replica.
pub trait BatchTransport: Send + Sync + 'static {
    /// Evaluate a batch of feature vectors on the container.
    ///
    /// Implementations must preserve input order in the reply and should
    /// populate [`PredictReply::queue_us`] / [`PredictReply::compute_us`]
    /// when the information is available. Implementations take shared
    /// ownership of individual inputs via `Arc` clones (`inputs.to_vec()`);
    /// they must not deep-copy the feature data.
    fn predict_batch(&self, inputs: &[Input]) -> BoxFuture<Result<PredictReply, RpcError>>;

    /// Stable identifier for logs/metrics (e.g. `"mnist-svm:0"`).
    fn id(&self) -> String;

    /// Whether the container is currently believed healthy.
    fn is_healthy(&self) -> bool {
        true
    }
}

/// A transport that computes predictions with a plain function — the
/// smallest useful implementation, used by unit tests across the workspace.
pub struct FnTransport<F> {
    id: String,
    f: F,
}

impl<F> FnTransport<F>
where
    F: Fn(&[Input]) -> Result<PredictReply, RpcError> + Send + Sync + 'static,
{
    /// Wrap `f` as a transport.
    pub fn new(id: &str, f: F) -> Self {
        FnTransport {
            id: id.to_string(),
            f,
        }
    }
}

impl<F> BatchTransport for FnTransport<F>
where
    F: Fn(&[Input]) -> Result<PredictReply, RpcError> + Send + Sync + 'static,
{
    fn predict_batch(&self, inputs: &[Input]) -> BoxFuture<Result<PredictReply, RpcError>> {
        let out = (self.f)(inputs);
        Box::pin(async move { out })
    }

    fn id(&self) -> String {
        self.id.clone()
    }
}

/// Wrap plain feature vectors as shared [`Input`]s (test/bench sugar).
pub fn as_inputs(raw: Vec<Vec<f32>>) -> Vec<Input> {
    raw.into_iter().map(Arc::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireOutput;

    #[tokio::test]
    async fn fn_transport_echoes_batch_size() {
        let t = FnTransport::new("echo", |inputs: &[Input]| {
            Ok(PredictReply {
                outputs: inputs
                    .iter()
                    .map(|i| WireOutput::Class(i.len() as u32))
                    .collect(),
                queue_us: 0,
                compute_us: 1,
            })
        });
        let reply = t
            .predict_batch(&as_inputs(vec![vec![0.0; 3], vec![0.0; 7]]))
            .await
            .unwrap();
        assert_eq!(
            reply.outputs,
            vec![WireOutput::Class(3), WireOutput::Class(7)]
        );
        assert_eq!(t.id(), "echo");
        assert!(t.is_healthy());
    }

    #[tokio::test]
    async fn fn_transport_propagates_errors() {
        let t = FnTransport::new("bad", |_: &[Input]| Err(RpcError::Remote("kaput".into())));
        let err = t.predict_batch(&[]).await.unwrap_err();
        assert!(matches!(err, RpcError::Remote(_)));
    }

    #[tokio::test]
    async fn fn_transport_sees_the_shared_vectors_not_copies() {
        // The zero-copy contract: the transport observes the very same
        // allocations the caller submitted.
        let original: Input = Arc::new(vec![1.0, 2.0]);
        let probe = original.clone();
        let t = FnTransport::new("ptr-check", move |inputs: &[Input]| {
            assert!(
                Arc::ptr_eq(&inputs[0], &probe),
                "input must arrive by Arc, not by copy"
            );
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(0)],
                queue_us: 0,
                compute_us: 0,
            })
        });
        t.predict_batch(&[original]).await.unwrap();
    }
}
