//! Load drivers: apply an arrival process to an async request function
//! and measure what the paper's figures measure.

use crate::arrivals::ArrivalProcess;
use clipper_metrics::{Counter, Histogram, HistogramSnapshot};
use std::future::Future;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How one driven request ended, for drivers that distinguish load
/// shedding (a routing decision) from hard failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// The request completed successfully.
    Ok,
    /// The request was shed (e.g. [`Overloaded`]: every replica's queue
    /// was full, or SLO-aware admission refused it up front) — counted
    /// separately so scheduler comparisons can tell "refused under load,
    /// with an honest 429" apart from "broke".
    ///
    /// [`Overloaded`]: https://en.wikipedia.org/wiki/Load_shedding
    Shed,
    /// The request got **no answer at all** — connection dropped,
    /// timeout, reply never materialized. The worst outcome: a shed is a
    /// routing decision the client can retry against, a lost request is
    /// a broken promise. Benchmarks gate on `lost == 0`.
    Lost,
    /// The request failed for any other reason (an error *answer*).
    Error,
}

/// Results of a driven load phase.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Wall-clock duration of the phase.
    pub duration: Duration,
    /// Successfully completed requests.
    pub completed: u64,
    /// Failed requests (including shed ones).
    pub errors: u64,
    /// Requests shed by load shedding (subset of `errors`).
    pub shed: u64,
    /// Requests that vanished without any answer (subset of `errors`,
    /// disjoint from `shed`).
    pub lost: u64,
    /// Latency distribution of successful requests (µs).
    pub latency: HistogramSnapshot,
}

impl LoadReport {
    /// Sustained throughput (successful requests/second).
    pub fn throughput(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.duration.as_secs_f64()
        }
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.latency.mean() / 1_000.0
    }

    /// P99 latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.latency.p99() as f64 / 1_000.0
    }
}

/// Closed-loop load: `clients` concurrent clients each issue the next
/// request as soon as the previous completes (the saturating workload used
/// for peak-throughput measurements, Figures 4 and 11).
///
/// `f(client_id, seq)` performs one request and reports success.
pub async fn run_closed_loop<F, Fut>(clients: usize, duration: Duration, f: F) -> LoadReport
where
    F: Fn(usize, u64) -> Fut + Send + Sync + Clone + 'static,
    Fut: Future<Output = bool> + Send,
{
    let latency = Histogram::new();
    let completed = Counter::new();
    let errors = Counter::new();
    let start = Instant::now();
    let deadline = start + duration;

    let mut tasks = Vec::with_capacity(clients);
    for client in 0..clients {
        let f = f.clone();
        let latency = latency.clone();
        let completed = completed.clone();
        let errors = errors.clone();
        tasks.push(tokio::spawn(async move {
            let mut seq = 0u64;
            while Instant::now() < deadline {
                let t0 = Instant::now();
                if f(client, seq).await {
                    latency.record(t0.elapsed().as_micros() as u64);
                    completed.inc();
                } else {
                    errors.inc();
                }
                seq += 1;
            }
        }));
    }
    for t in tasks {
        let _ = t.await;
    }

    LoadReport {
        duration: start.elapsed(),
        completed: completed.get(),
        errors: errors.get(),
        shed: 0,
        lost: 0,
        latency: latency.snapshot(),
    }
}

/// Open-loop load: requests launch on the arrival process's schedule
/// regardless of completions (latency-under-load measurements; queueing
/// delay is visible, unlike closed loop).
pub async fn run_open_loop<F, Fut>(
    arrivals: ArrivalProcess,
    duration: Duration,
    seed: u64,
    f: F,
) -> LoadReport
where
    F: Fn(u64) -> Fut + Send + Sync + Clone + 'static,
    Fut: Future<Output = bool> + Send + 'static,
{
    run_open_loop_outcomes(arrivals, duration, seed, move |seq| {
        let f = f.clone();
        async move {
            if f(seq).await {
                RequestOutcome::Ok
            } else {
                RequestOutcome::Error
            }
        }
    })
    .await
}

/// Open-loop load with per-request [`RequestOutcome`]s, so the report can
/// separate shed requests from hard failures — the counters the scheduler
/// comparisons (`replica_scaling`) grade round-robin vs. p2c on.
pub async fn run_open_loop_outcomes<F, Fut>(
    arrivals: ArrivalProcess,
    duration: Duration,
    seed: u64,
    f: F,
) -> LoadReport
where
    F: Fn(u64) -> Fut + Send + Sync + Clone + 'static,
    Fut: Future<Output = RequestOutcome> + Send + 'static,
{
    let latency = Histogram::new();
    let completed = Counter::new();
    let errors = Counter::new();
    let shed = Counter::new();
    let lost = Counter::new();
    let start = Instant::now();
    let deadline = start + duration;
    let inflight = Arc::new(tokio::sync::Semaphore::new(65_536));

    let mut next_fire = Instant::now();
    let mut handles = Vec::new();
    for (seq, gap) in arrivals.gaps(seed).enumerate() {
        let seq = seq as u64;
        next_fire += gap;
        if next_fire >= deadline {
            break;
        }
        tokio::time::sleep_until(next_fire.into()).await;
        let f = f.clone();
        let latency = latency.clone();
        let completed = completed.clone();
        let errors = errors.clone();
        let shed = shed.clone();
        let lost = lost.clone();
        let permit = inflight.clone().acquire_owned().await.expect("semaphore");
        handles.push(tokio::spawn(async move {
            let t0 = Instant::now();
            match f(seq).await {
                RequestOutcome::Ok => {
                    latency.record(t0.elapsed().as_micros() as u64);
                    completed.inc();
                }
                RequestOutcome::Shed => {
                    shed.inc();
                    errors.inc();
                }
                RequestOutcome::Lost => {
                    lost.inc();
                    errors.inc();
                }
                RequestOutcome::Error => {
                    errors.inc();
                }
            }
            drop(permit);
        }));
        // Bound memory: reap finished handles occasionally.
        if handles.len() >= 4_096 {
            handles.retain(|h| !h.is_finished());
        }
    }
    for h in handles {
        let _ = h.await;
    }

    LoadReport {
        duration: start.elapsed(),
        completed: completed.get(),
        errors: errors.get(),
        shed: shed.get(),
        lost: lost.get(),
        latency: latency.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn closed_loop_drives_all_clients() {
        let report = run_closed_loop(4, Duration::from_millis(100), |_c, _s| async {
            tokio::time::sleep(Duration::from_millis(5)).await;
            true
        })
        .await;
        // 4 clients × ~20 requests each in 100ms.
        assert!(report.completed >= 40, "completed {}", report.completed);
        assert_eq!(report.errors, 0);
        assert!(report.throughput() > 300.0);
        assert!(report.mean_ms() >= 5.0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn closed_loop_counts_errors() {
        let report = run_closed_loop(2, Duration::from_millis(50), |_c, seq| async move {
            tokio::time::sleep(Duration::from_millis(1)).await;
            seq % 2 == 0
        })
        .await;
        assert!(report.errors > 0);
        assert!(report.completed > 0);
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn open_loop_fires_at_the_configured_rate() {
        let report = run_open_loop(
            ArrivalProcess::Uniform { rate: 500.0 },
            Duration::from_millis(400),
            1,
            |_seq| async {
                tokio::time::sleep(Duration::from_millis(1)).await;
                true
            },
        )
        .await;
        // ≈200 arrivals in 400ms at 500 qps; scheduling slack tolerated.
        assert!(
            (100..=260).contains(&(report.completed as i64)),
            "completed {}",
            report.completed
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn open_loop_outcomes_separate_sheds_from_errors() {
        let report = run_open_loop_outcomes(
            ArrivalProcess::Uniform { rate: 600.0 },
            Duration::from_millis(200),
            1,
            |seq| async move {
                match seq % 4 {
                    0 => RequestOutcome::Ok,
                    1 => RequestOutcome::Shed,
                    2 => RequestOutcome::Lost,
                    _ => RequestOutcome::Error,
                }
            },
        )
        .await;
        assert!(report.completed > 0);
        assert!(report.shed > 0, "sheds counted");
        assert!(report.lost > 0, "losses counted");
        assert!(
            report.errors >= report.shed + report.lost,
            "sheds and losses are disjoint subsets of errors: {} vs {} + {}",
            report.errors,
            report.shed,
            report.lost
        );
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn open_loop_latency_includes_queueing() {
        // A serially-processed resource at saturation: open-loop latency
        // must exceed service time.
        let sem = Arc::new(tokio::sync::Semaphore::new(1));
        let report = run_open_loop(
            ArrivalProcess::Uniform { rate: 300.0 },
            Duration::from_millis(300),
            1,
            move |_seq| {
                let sem = sem.clone();
                async move {
                    let _g = sem.acquire_owned().await.unwrap();
                    tokio::time::sleep(Duration::from_millis(5)).await;
                    true
                }
            },
        )
        .await;
        // Service is 5ms but arrivals come every 3.3ms: queue grows, so
        // tail latency must be well above service time.
        assert!(
            report.p99_ms() > 10.0,
            "open-loop p99 {}ms should show queueing",
            report.p99_ms()
        );
    }
}
