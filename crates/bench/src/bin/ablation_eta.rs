//! Ablation — Exp3 learning-rate (η) sensitivity (DESIGN.md §6.4).
//!
//! Replays the Figure-8 failure scenario at several η values and measures
//! how many queries the policy needs to divert traffic off the failed
//! model, and how much error it accumulates while adapting. Shows the
//! explore/exploit trade the paper's "η determines how quickly Clipper
//! responds to feedback" sentence is about.

use clipper_core::selection::SelectionPolicy;
use clipper_core::{Exp3Policy, Feedback, ModelId, Output};
use clipper_workload::Table;
use std::collections::HashMap;
use std::sync::Arc;

fn main() {
    println!("== Ablation: Exp3 learning rate η ==\n");
    // Two-model world: model A errs 10%, model B errs 40%. At query 2000,
    // A fails hard (errs 95%). Deterministic pseudo-random outcomes.
    let ids = vec![ModelId::new("A", 1), ModelId::new("B", 1)];
    let noise = |q: u64, salt: u64| ((q * 2_654_435_761 + salt * 97) % 100) as f64 / 100.0;

    let mut table = Table::new(&[
        "eta",
        "pre-failure P(A)",
        "queries to P(A)<0.3 after failure",
        "error during adaptation window",
    ]);

    for eta in [0.05, 0.2, 0.5, 1.0, 2.0] {
        let policy = Exp3Policy::new(eta);
        let mut state = policy.init(&ids, 9);
        let mut adapt_at = None;
        let mut window_errors = 0u64;
        let mut window_total = 0u64;
        const FAIL_AT: u64 = 2_000;
        const TOTAL: u64 = 6_000;

        let mut pre_failure_pa = 0.0;
        for q in 0..TOTAL {
            let input: clipper_core::Input = Arc::new(vec![q as f32, (q * 31) as f32]);
            let a_err_rate = if q >= FAIL_AT { 0.95 } else { 0.10 };
            let truth = 1u32;
            let a_label = if noise(q, 1) < a_err_rate { 0 } else { 1 };
            let b_label = if noise(q, 2) < 0.40 { 0 } else { 1 };
            let mut preds: HashMap<ModelId, Output> = HashMap::new();
            preds.insert(ids[0].clone(), Output::Class(a_label));
            preds.insert(ids[1].clone(), Output::Class(b_label));

            if q == FAIL_AT {
                pre_failure_pa = state.probabilities()[0];
            }
            if (FAIL_AT..FAIL_AT + 2_000).contains(&q) {
                let (out, _) = policy.combine(&state, &input, &preds);
                window_total += 1;
                if out.label() != truth {
                    window_errors += 1;
                }
                if adapt_at.is_none() && state.probabilities()[0] < 0.3 {
                    adapt_at = Some(q - FAIL_AT);
                }
            }
            policy.observe(&mut state, &input, &Feedback::class(truth), &preds);
        }

        table.row(&[
            format!("{eta}"),
            format!("{:.2}", pre_failure_pa),
            adapt_at.map_or(">2000".into(), |q| format!("{q}")),
            format!(
                "{:.1}%",
                100.0 * window_errors as f64 / window_total.max(1) as f64
            ),
        ]);
    }
    table.print();
    println!(
        "\nexpected: small η adapts slowly (high adaptation-window error); large η adapts fast but"
    );
    println!(
        "holds weaker pre-failure commitment to the best arm. The paper's regime is the middle."
    );
}
