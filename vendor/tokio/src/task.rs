//! Task spawning and join handles.

use crate::runtime::{self, Completion};
use std::future::Future;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Why a joined task produced no output.
#[derive(Debug)]
pub struct JoinError {
    cancelled: bool,
    panic_msg: Option<String>,
}

impl JoinError {
    fn cancelled_err() -> Self {
        JoinError {
            cancelled: true,
            panic_msg: None,
        }
    }

    fn panic_err(payload: &(dyn std::any::Any + Send)) -> Self {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "task panicked".to_string());
        JoinError {
            cancelled: false,
            panic_msg: Some(msg),
        }
    }

    /// Whether the task was cancelled via [`JoinHandle::abort`].
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }

    /// Whether the task panicked.
    pub fn is_panic(&self) -> bool {
        self.panic_msg.is_some()
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.panic_msg {
            Some(m) => write!(f, "task panicked: {m}"),
            None => write!(f, "task was cancelled"),
        }
    }
}

impl std::error::Error for JoinError {}

struct JoinInner<T> {
    result: Mutex<Option<Result<T, JoinError>>>,
    waker: Mutex<Option<Waker>>,
    done: AtomicBool,
}

impl<T> JoinInner<T> {
    fn complete(&self, result: Result<T, JoinError>) {
        let mut slot = self.result.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
            self.done.store(true, Ordering::SeqCst);
        }
        drop(slot);
        if let Some(w) = self.waker.lock().unwrap().take() {
            w.wake();
        }
    }
}

impl<T: Send> Completion for JoinInner<T> {
    fn cancel(&self) {
        self.complete(Err(JoinError::cancelled_err()));
    }
}

/// An owned handle to a spawned task, mirroring `tokio::task::JoinHandle`.
pub struct JoinHandle<T> {
    inner: Arc<JoinInner<T>>,
    task: Arc<runtime::Task>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> JoinHandle<T> {
    /// Request cancellation. The future is dropped at the next scheduling
    /// point (tasks are never interrupted mid-poll).
    pub fn abort(&self) {
        self.task.aborted.store(true, Ordering::SeqCst);
        self.task.schedule_for_abort();
    }

    /// Whether the task has finished (completed, panicked, or cancelled).
    pub fn is_finished(&self) -> bool {
        self.inner.done.load(Ordering::SeqCst)
    }
}

impl<T> Drop for JoinHandle<T> {
    fn drop(&mut self) {
        // Detach: the task keeps running, but with no handle left to
        // observe it, it becomes eligible for
        // [`crate::runtime::sweep_idle_tasks`].
        self.task.detached.store(true, Ordering::SeqCst);
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(result) = self.inner.result.lock().unwrap().take() {
            return Poll::Ready(result);
        }
        *self.inner.waker.lock().unwrap() = Some(cx.waker().clone());
        // Re-check: the task may have completed between the two locks.
        if let Some(result) = self.inner.result.lock().unwrap().take() {
            return Poll::Ready(result);
        }
        Poll::Pending
    }
}

/// Spawn `future` onto the worker pool.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let inner = Arc::new(JoinInner {
        result: Mutex::new(None),
        waker: Mutex::new(None),
        done: AtomicBool::new(false),
    });
    let inner_for_task = Arc::clone(&inner);
    let wrapper = async move {
        let result = AssertUnwindSafe(future).catch_unwind_future().await;
        inner_for_task.complete(result.map_err(|p| JoinError::panic_err(&*p)));
    };
    let completion: Arc<dyn Completion> = Arc::clone(&inner) as Arc<dyn Completion>;
    let task = runtime::submit(Box::pin(wrapper), completion);
    JoinHandle {
        inner,
        task,
        _marker: PhantomData,
    }
}

/// Reusable pool for blocking work: jobs queue up and idle threads take
/// them; a new thread is spawned only when none is idle, up to a cap
/// (after which jobs wait for a free thread, like tokio's bounded
/// blocking pool).
struct BlockingPool {
    queue: Mutex<std::collections::VecDeque<Box<dyn FnOnce() + Send>>>,
    available: std::sync::Condvar,
    idle: std::sync::atomic::AtomicUsize,
    threads: std::sync::atomic::AtomicUsize,
}

const MAX_BLOCKING_THREADS: usize = 256;

fn blocking_pool() -> &'static BlockingPool {
    static POOL: std::sync::OnceLock<&'static BlockingPool> = std::sync::OnceLock::new();
    POOL.get_or_init(|| {
        Box::leak(Box::new(BlockingPool {
            queue: Mutex::new(std::collections::VecDeque::new()),
            available: std::sync::Condvar::new(),
            idle: std::sync::atomic::AtomicUsize::new(0),
            threads: std::sync::atomic::AtomicUsize::new(0),
        }))
    })
}

fn blocking_worker(pool: &'static BlockingPool) {
    loop {
        let job = {
            let mut q = pool.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                pool.idle.fetch_add(1, Ordering::SeqCst);
                q = pool.available.wait(q).unwrap();
                pool.idle.fetch_sub(1, Ordering::SeqCst);
            }
        };
        job();
    }
}

fn run_blocking(job: Box<dyn FnOnce() + Send>) {
    let pool = blocking_pool();
    pool.queue.lock().unwrap().push_back(job);
    if pool.idle.load(Ordering::SeqCst) == 0 {
        let spawned = pool
            .threads
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < MAX_BLOCKING_THREADS).then_some(n + 1)
            });
        if spawned.is_ok() {
            let _ = std::thread::Builder::new()
                .name("tokio-blocking".to_string())
                .spawn(move || blocking_worker(pool));
        }
    }
    pool.available.notify_one();
}

/// Run a blocking closure on the blocking thread pool without stalling
/// the async workers; await the result through a normal [`JoinHandle`].
pub fn spawn_blocking<F, R>(f: F) -> JoinHandle<R>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let inner = Arc::new(JoinInner::<R> {
        result: Mutex::new(None),
        waker: Mutex::new(None),
        done: AtomicBool::new(false),
    });
    let inner_for_thread = Arc::clone(&inner);
    run_blocking(Box::new(move || {
        let result = catch_unwind(AssertUnwindSafe(f));
        inner_for_thread.complete(result.map_err(|p| JoinError::panic_err(&*p)));
    }));
    // A placeholder task so abort()/JoinHandle plumbing stays uniform; the
    // blocking job itself cannot be cancelled, matching tokio's semantics.
    let completion: Arc<dyn Completion> = Arc::clone(&inner) as Arc<dyn Completion>;
    let task = runtime::submit(Box::pin(async {}), completion);
    JoinHandle {
        inner,
        task,
        _marker: PhantomData,
    }
}

/// Yield back to the scheduler once.
pub async fn yield_now() {
    let mut yielded = false;
    std::future::poll_fn(move |cx| {
        if yielded {
            Poll::Ready(())
        } else {
            yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    })
    .await
}

/// Adapter: run a future and capture panics, like `FutureExt::catch_unwind`.
trait CatchUnwindExt: Future + Sized {
    fn catch_unwind_future(self) -> CatchUnwind<Self> {
        CatchUnwind(self)
    }
}

impl<F: Future> CatchUnwindExt for AssertUnwindSafe<F> {}

struct CatchUnwind<F>(F);

impl<F: Future> Future for CatchUnwind<AssertUnwindSafe<F>> {
    type Output = Result<F::Output, Box<dyn std::any::Any + Send>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: structural pinning of the sole field.
        let inner = unsafe { self.map_unchecked_mut(|s| &mut *s.0) };
        match catch_unwind(AssertUnwindSafe(|| inner.poll(cx))) {
            Ok(Poll::Ready(v)) => Poll::Ready(Ok(v)),
            Ok(Poll::Pending) => Poll::Pending,
            Err(payload) => Poll::Ready(Err(payload)),
        }
    }
}
