//! Aligned text tables and phase-windowed stats for experiment output.
//!
//! Every bench binary prints its figure/table as rows through [`Table`],
//! with a `paper=` column carrying the reference values so EXPERIMENTS.md
//! can be assembled straight from harness output. Soak-style runs that
//! pass through distinct regimes (steady → crash → recovery → chaos)
//! record through a [`PhaseRecorder`], which keeps one latency histogram
//! and outcome counters per timeline phase plus a whole-run rollup.

use clipper_metrics::{Counter, Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How one request ended, from the *client's* point of view — the
/// taxonomy soak runs grade on. `Ok`/`Shed` mirror
/// [`RequestOutcome`](crate::driver::RequestOutcome); `Refused` and
/// `Lost` split the old `Error` bucket into "the client was promptly
/// told no" (connection refused while a frontend is down — visible,
/// honest, retryable) and "the query vanished or hard-failed" (the one
/// thing a lossless soak must never see).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseOutcome {
    /// Completed successfully; latency recorded.
    Ok,
    /// Shed by admission control (answered 429).
    Shed,
    /// Refused at the door (e.g. the target frontend was down).
    Refused,
    /// Lost: timed out, hung, or hard-failed.
    Lost,
}

/// Frozen view of one timeline phase.
#[derive(Clone, Debug)]
pub struct PhaseStats {
    /// Phase label (phases may repeat, e.g. `steady` on both sides of a
    /// crash window).
    pub name: String,
    /// Offset into the run at which the phase opened.
    pub started_at: Duration,
    /// How long the phase lasted (up to "now" for the open phase).
    pub duration: Duration,
    /// Successful requests attributed to this phase.
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests refused because the target frontend was down.
    pub refused: u64,
    /// Requests lost — must be 0 for a lossless run.
    pub lost: u64,
    /// Latency distribution of successful requests (µs).
    pub latency: HistogramSnapshot,
}

impl PhaseStats {
    /// P99 latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.latency.p99() as f64 / 1_000.0
    }

    /// Successful requests per second over the phase.
    pub fn throughput(&self) -> f64 {
        if self.duration.is_zero() {
            0.0
        } else {
            self.completed as f64 / self.duration.as_secs_f64()
        }
    }
}

/// Per-phase instruments. `Histogram`/`Counter` are atomic and shared by
/// clone, so every frontend driver records into the same cell — that IS
/// the cross-frontend aggregation (histograms have no merge operation;
/// sharing the recorder sidesteps needing one).
struct PhaseCell {
    name: String,
    started_at: Duration,
    ended_at: Option<Duration>,
    latency: Histogram,
    completed: Counter,
    shed: Counter,
    refused: Counter,
    lost: Counter,
}

impl PhaseCell {
    fn open(name: &str, at: Duration) -> Self {
        PhaseCell {
            name: name.to_string(),
            started_at: at,
            ended_at: None,
            latency: Histogram::new(),
            completed: Counter::new(),
            shed: Counter::new(),
            refused: Counter::new(),
            lost: Counter::new(),
        }
    }

    fn stats(&self, now: Duration) -> PhaseStats {
        PhaseStats {
            name: self.name.clone(),
            started_at: self.started_at,
            duration: self.ended_at.unwrap_or(now).saturating_sub(self.started_at),
            completed: self.completed.get(),
            shed: self.shed.get(),
            refused: self.refused.get(),
            lost: self.lost.get(),
            latency: self.latency.snapshot(),
        }
    }
}

/// Records request outcomes into the currently-open timeline phase, plus
/// a whole-run rollup. Shared (`Arc`) across every frontend's driver
/// task in a soak; [`advance`](Self::advance) is called by the event
/// timeline, records land in whichever phase is open at completion time.
pub struct PhaseRecorder {
    start: Instant,
    phases: Mutex<Vec<PhaseCell>>,
    total: PhaseCell,
}

impl PhaseRecorder {
    /// Start the clock and open the first phase.
    pub fn new(first_phase: &str) -> Arc<Self> {
        Arc::new(PhaseRecorder {
            start: Instant::now(),
            phases: Mutex::new(vec![PhaseCell::open(first_phase, Duration::ZERO)]),
            total: PhaseCell::open("total", Duration::ZERO),
        })
    }

    /// Close the open phase and open a new one named `name`.
    pub fn advance(&self, name: &str) {
        let now = self.start.elapsed();
        let mut phases = self.phases.lock();
        if let Some(open) = phases.last_mut() {
            open.ended_at = Some(now);
        }
        phases.push(PhaseCell::open(name, now));
    }

    /// The name of the currently-open phase.
    pub fn current_phase(&self) -> String {
        self.phases.lock().last().expect("≥1 phase").name.clone()
    }

    /// Record one request outcome (latency in µs, used for `Ok` only)
    /// into the open phase and the run-wide rollup.
    pub fn record(&self, outcome: PhaseOutcome, latency_us: u64) {
        let (latency, completed, shed, refused, lost) = {
            let phases = self.phases.lock();
            let cell = phases.last().expect("≥1 phase");
            (
                cell.latency.clone(),
                cell.completed.clone(),
                cell.shed.clone(),
                cell.refused.clone(),
                cell.lost.clone(),
            )
        };
        for (lat, comp, sh, refu, lo) in [
            (&latency, &completed, &shed, &refused, &lost),
            (
                &self.total.latency,
                &self.total.completed,
                &self.total.shed,
                &self.total.refused,
                &self.total.lost,
            ),
        ] {
            match outcome {
                PhaseOutcome::Ok => {
                    lat.record(latency_us);
                    comp.inc();
                }
                PhaseOutcome::Shed => sh.inc(),
                PhaseOutcome::Refused => refu.inc(),
                PhaseOutcome::Lost => lo.inc(),
            }
        }
    }

    /// Offset into the run.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Frozen per-phase stats, in timeline order.
    pub fn phase_stats(&self) -> Vec<PhaseStats> {
        let now = self.start.elapsed();
        self.phases.lock().iter().map(|c| c.stats(now)).collect()
    }

    /// Whole-run rollup across every phase.
    pub fn totals(&self) -> PhaseStats {
        self.total.stats(self.start.elapsed())
    }
}

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with thousands grouping for qps-style numbers.
pub fn fmt_qps(v: f64) -> String {
    let n = v.round() as i64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["model", "qps"]);
        t.row(&["linear-svm".into(), "29,801".into()]);
        t.row(&["kernel".into(), "201".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[2].contains("linear-svm"));
        // Columns align: "qps" column starts at the same offset in every row.
        let col = lines[0].find("qps").unwrap();
        assert_eq!(&lines[2][col - 2..col], "  ");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn phase_recorder_attributes_outcomes_to_the_open_phase() {
        let rec = PhaseRecorder::new("steady");
        rec.record(PhaseOutcome::Ok, 1_000);
        rec.record(PhaseOutcome::Shed, 0);
        assert_eq!(rec.current_phase(), "steady");
        rec.advance("chaos");
        rec.record(PhaseOutcome::Ok, 9_000);
        rec.record(PhaseOutcome::Refused, 0);
        rec.record(PhaseOutcome::Lost, 0);
        assert_eq!(rec.current_phase(), "chaos");

        let phases = rec.phase_stats();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].name, "steady");
        assert_eq!(
            (
                phases[0].completed,
                phases[0].shed,
                phases[0].refused,
                phases[0].lost
            ),
            (1, 1, 0, 0)
        );
        assert_eq!(phases[1].name, "chaos");
        assert_eq!(
            (
                phases[1].completed,
                phases[1].shed,
                phases[1].refused,
                phases[1].lost
            ),
            (1, 0, 1, 1)
        );
        // Phases tile the timeline: second starts where the first ended.
        assert!(phases[1].started_at >= phases[0].duration);

        // The rollup sees everything, including latency from both phases.
        let totals = rec.totals();
        assert_eq!(totals.completed, 2);
        assert_eq!(totals.shed, 1);
        assert_eq!(totals.refused, 1);
        assert_eq!(totals.lost, 1);
        assert!(totals.latency.p99() >= 9_000);
    }

    #[test]
    fn phase_recorder_aggregates_across_concurrent_recorders() {
        // Cross-frontend aggregation = sharing the recorder. Two threads
        // (standing in for two frontend drivers) record concurrently.
        let rec = PhaseRecorder::new("steady");
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        rec.record(PhaseOutcome::Ok, 100);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.totals().completed, 1_000);
        assert_eq!(rec.phase_stats()[0].completed, 1_000);
        assert!(rec.phase_stats()[0].throughput() > 0.0);
    }

    #[test]
    fn qps_formatting_groups_thousands() {
        assert_eq!(fmt_qps(48386.4), "48,386");
        assert_eq!(fmt_qps(152.0), "152");
        assert_eq!(fmt_qps(1_234_567.0), "1,234,567");
        assert_eq!(fmt_qps(0.2), "0");
    }
}
