//! The Clipper facade: applications, prediction, and feedback.
//!
//! `predict` walks the full §3 request path: selection policy chooses
//! models → per-model lookups flow through the prediction cache and
//! adaptive batching queues → results are gathered **only until the
//! latency deadline** (straggler mitigation, §5.2.2) → the policy combines
//! whatever arrived, substituting each missing model's running-default
//! output and reporting agreement-based confidence.
//!
//! `feedback` joins ground truth against the cached predictions of every
//! candidate model (the join the prediction cache accelerates, §4.2) and
//! folds the result into the per-context policy state.

use crate::abstraction::{BatchConfig, ModelAbstractionLayer, SchedulerPolicy};
use crate::batching::queue::PredictError;
use crate::batching::ReplicaQueue;
use crate::selection::{build_policy, SelectionPolicy, SelectionStateManager};
use crate::types::{AppConfig, Feedback, Input, ModelId, Output, Prediction};
use clipper_metrics::{Counter, Histogram, Meter, Registry};
use clipper_rpc::transport::BatchTransport;
use clipper_statestore::StateStore;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use tokio::sync::mpsc;

/// Builder for a [`Clipper`] instance.
pub struct ClipperBuilder {
    cache_capacity: usize,
    cache_enabled: bool,
    registry: Registry,
    statestore: Option<Arc<StateStore>>,
}

impl Default for ClipperBuilder {
    fn default() -> Self {
        ClipperBuilder {
            cache_capacity: 32_768,
            cache_enabled: true,
            registry: Registry::new(),
            statestore: None,
        }
    }
}

impl ClipperBuilder {
    /// Prediction-cache capacity (entries). Default 32768.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Disable the prediction cache entirely (ablation / §4.2 comparison).
    pub fn disable_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Use an existing metrics registry.
    pub fn registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    /// Use an existing statestore (e.g. one served over TCP to mirror the
    /// paper's external-Redis deployment).
    pub fn statestore(mut self, store: Arc<StateStore>) -> Self {
        self.statestore = Some(store);
        self
    }

    /// Build the instance.
    pub fn build(self) -> Clipper {
        let registry = self.registry;
        let mal = ModelAbstractionLayer::new(self.cache_capacity, registry.clone());
        let store = self
            .statestore
            .unwrap_or_else(|| Arc::new(StateStore::new()));
        Clipper {
            inner: Arc::new(Inner {
                mal,
                apps: RwLock::new(HashMap::new()),
                state_mgr: SelectionStateManager::new(store),
                cache_enabled: self.cache_enabled,
                predictions: registry.meter("clipper/predictions"),
                latency_us: registry.histogram("clipper/latency_us"),
                feedback_count: registry.meter("clipper/feedback"),
                defaults_used: registry.counter("clipper/defaults_used"),
                substitutions: registry.counter("clipper/straggler_substitutions"),
                registry,
            }),
        }
    }
}

struct App {
    cfg: AppConfig,
    policy: Box<dyn SelectionPolicy>,
}

struct Inner {
    mal: Arc<ModelAbstractionLayer>,
    apps: RwLock<HashMap<String, Arc<App>>>,
    state_mgr: SelectionStateManager,
    cache_enabled: bool,
    registry: Registry,
    predictions: Meter,
    latency_us: Histogram,
    feedback_count: Meter,
    defaults_used: Counter,
    substitutions: Counter,
}

/// The Clipper prediction-serving system.
#[derive(Clone)]
pub struct Clipper {
    inner: Arc<Inner>,
}

impl Clipper {
    /// Start building an instance.
    pub fn builder() -> ClipperBuilder {
        ClipperBuilder::default()
    }

    /// Register an application (name, candidate models, policy, SLO).
    pub fn register_app(&self, cfg: AppConfig) {
        let policy = build_policy(&cfg.policy);
        let name = cfg.name.clone();
        self.inner
            .apps
            .write()
            .insert(name, Arc::new(App { cfg, policy }));
    }

    /// Register a model with per-replica batching configuration and the
    /// default depth-aware scheduler (power-of-two-choices).
    pub fn add_model(&self, id: ModelId, cfg: BatchConfig) {
        self.inner.mal.add_model(id, cfg);
    }

    /// Register a model with an explicit replica-scheduling policy.
    pub fn add_model_with_policy(&self, id: ModelId, cfg: BatchConfig, policy: SchedulerPolicy) {
        self.inner.mal.add_model_with_policy(id, cfg, policy);
    }

    /// Attach a container replica to a model — safe mid-traffic. Returns
    /// the replica's queue id (the handle for hot removal).
    pub fn add_replica(
        &self,
        id: &ModelId,
        transport: Arc<dyn BatchTransport>,
    ) -> Result<String, PredictError> {
        self.inner.mal.add_replica(id, transport)
    }

    /// Hot-remove one replica by queue id: it stops receiving queries
    /// immediately and drains gracefully (no query dropped, no cache
    /// entry wedged). Await `drained()` on the returned queue to observe
    /// completion.
    pub fn remove_replica(
        &self,
        id: &ModelId,
        queue_id: &str,
    ) -> Result<Arc<ReplicaQueue>, PredictError> {
        self.inner.mal.remove_replica(id, queue_id)
    }

    /// Remove (and gracefully drain) all replicas of a model.
    pub fn remove_replicas(&self, id: &ModelId) {
        self.inner.mal.remove_replicas(id);
    }

    /// The underlying model abstraction layer.
    pub fn abstraction(&self) -> &Arc<ModelAbstractionLayer> {
        &self.inner.mal
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The contextual selection-state manager.
    pub fn state_manager(&self) -> &SelectionStateManager {
        &self.inner.state_mgr
    }

    /// Registered application names.
    pub fn apps(&self) -> Vec<String> {
        self.inner.apps.read().keys().cloned().collect()
    }

    fn app(&self, name: &str) -> Result<Arc<App>, PredictError> {
        self.inner
            .apps
            .read()
            .get(name)
            .cloned()
            .ok_or(PredictError::AppUnknown)
    }

    /// Serve one prediction for `app`, optionally under a user/session
    /// `context` (§5.3). Always returns by the app's SLO deadline (plus
    /// scheduling noise): stragglers are substituted, and if *nothing*
    /// arrived the app's default output is returned with zero confidence.
    pub async fn predict(
        &self,
        app_name: &str,
        context: Option<&str>,
        input: Input,
    ) -> Result<Prediction, PredictError> {
        let start = Instant::now();
        let app = self.app(app_name)?;
        let state = self
            .inner
            .state_mgr
            .get_or_init(
                app_name,
                context,
                app.policy.as_ref(),
                &app.cfg.candidate_models,
                app.cfg.seed,
            )
            .map_err(|e| PredictError::Failed(e.to_string()))?;

        let selected = app.policy.select(&state, &input);
        if selected.is_empty() {
            return Err(PredictError::Failed("policy selected no models".into()));
        }
        let deadline = start + app.cfg.slo;

        // Fan out; each model reports back over the channel as it lands.
        let (tx, mut rx) =
            mpsc::channel::<(ModelId, Result<Output, PredictError>)>(selected.len().max(1));
        for model in selected.iter().cloned() {
            let mal = self.inner.mal.clone();
            let input = input.clone();
            let tx = tx.clone();
            let use_cache = self.inner.cache_enabled;
            tokio::spawn(async move {
                let result = mal.predict(&model, input, use_cache).await;
                let _ = tx.send((model, result)).await;
            });
        }
        drop(tx);

        // Gather until the SLO deadline (straggler mitigation).
        let mut preds: HashMap<ModelId, Output> = HashMap::new();
        let mut settled = 0usize;
        while settled < selected.len() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match tokio::time::timeout(deadline - now, rx.recv()).await {
                Ok(Some((model, Ok(out)))) => {
                    preds.insert(model, out);
                    settled += 1;
                }
                Ok(Some((_, Err(_)))) => {
                    settled += 1;
                }
                Ok(None) => break,
                Err(_) => break, // deadline reached
            }
        }

        let arrived = preds.len();
        let missing = selected.len() - arrived;

        // Substitute each missing model's running default (§5.2.2) so the
        // ensemble can still vote, with the loss of accuracy reflected in
        // the agreement-based confidence.
        if missing > 0 {
            for model in &selected {
                if !preds.contains_key(model) {
                    if let Some(default) = self.inner.mal.default_output(model) {
                        preds.insert(model.clone(), default);
                        self.inner.substitutions.inc();
                    }
                }
            }
        }

        let prediction = if preds.is_empty() {
            self.inner.defaults_used.inc();
            Prediction {
                output: app.cfg.default_output.clone(),
                confidence: 0.0,
                models_used: 0,
                models_missing: selected.len(),
                latency: start.elapsed(),
            }
        } else {
            let (output, confidence) = app.policy.combine(&state, &input, &preds);
            Prediction {
                output,
                confidence,
                models_used: arrived,
                models_missing: missing,
                latency: start.elapsed(),
            }
        };

        self.inner.predictions.mark();
        self.inner
            .latency_us
            .record(prediction.latency.as_micros() as u64);
        Ok(prediction)
    }

    /// Join application feedback with the candidate models' predictions
    /// for `input` and fold it into the context's policy state.
    pub async fn feedback(
        &self,
        app_name: &str,
        context: Option<&str>,
        input: Input,
        feedback: Feedback,
    ) -> Result<(), PredictError> {
        let app = self.app(app_name)?;

        // Join feedback with predictions through the cache: recent
        // predictions hit; unseen inputs are evaluated.
        let (tx, mut rx) = mpsc::channel::<(ModelId, Result<Output, PredictError>)>(
            app.cfg.candidate_models.len().max(1),
        );
        for model in app.cfg.candidate_models.iter().cloned() {
            let mal = self.inner.mal.clone();
            let input = input.clone();
            let tx = tx.clone();
            let use_cache = self.inner.cache_enabled;
            tokio::spawn(async move {
                let result = mal.predict(&model, input, use_cache).await;
                let _ = tx.send((model, result)).await;
            });
        }
        drop(tx);
        let mut preds: HashMap<ModelId, Output> = HashMap::new();
        while let Some((model, result)) = rx.recv().await {
            if let Ok(out) = result {
                preds.insert(model, out);
            }
        }

        self.inner
            .state_mgr
            .update(
                app_name,
                context,
                app.policy.as_ref(),
                &app.cfg.candidate_models,
                app.cfg.seed,
                |state| {
                    app.policy.observe(state, &input, &feedback, &preds);
                },
            )
            .map_err(|e| PredictError::Failed(e.to_string()))?;
        self.inner.feedback_count.mark();
        Ok(())
    }

    /// Current policy state for `(app, context)` — used by reports.
    pub fn policy_state(
        &self,
        app_name: &str,
        context: Option<&str>,
    ) -> Result<crate::selection::PolicyState, PredictError> {
        let app = self.app(app_name)?;
        self.inner
            .state_mgr
            .get_or_init(
                app_name,
                context,
                app.policy.as_ref(),
                &app.cfg.candidate_models,
                app.cfg.seed,
            )
            .map_err(|e| PredictError::Failed(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batching::BatchStrategy;
    use crate::types::PolicyKind;
    use clipper_rpc::message::{PredictReply, WireOutput};
    use std::time::Duration;

    /// A transport answering `label`, optionally after an async delay
    /// (async so single-threaded test runtimes keep their timers running).
    struct ConstTransport {
        label: u32,
        delay: Option<Duration>,
    }

    impl BatchTransport for ConstTransport {
        fn predict_batch(
            &self,
            inputs: &[Input],
        ) -> clipper_rpc::BoxFuture<Result<PredictReply, clipper_rpc::RpcError>> {
            let (label, delay, n) = (self.label, self.delay, inputs.len());
            Box::pin(async move {
                if let Some(d) = delay {
                    tokio::time::sleep(d).await;
                }
                Ok(PredictReply {
                    outputs: vec![WireOutput::Class(label); n],
                    queue_us: 0,
                    compute_us: 100,
                })
            })
        }
        fn id(&self) -> String {
            format!("const-{}", self.label)
        }
    }

    fn const_transport(label: u32, delay: Option<Duration>) -> Arc<dyn BatchTransport> {
        Arc::new(ConstTransport { label, delay })
    }

    fn setup(labels: &[u32], policy: PolicyKind, slo: Duration) -> (Clipper, Vec<ModelId>) {
        let clipper = Clipper::builder().build();
        let models: Vec<ModelId> = labels
            .iter()
            .enumerate()
            .map(|(i, _)| ModelId::new(&format!("m{i}"), 1))
            .collect();
        for (i, &label) in labels.iter().enumerate() {
            clipper.add_model(models[i].clone(), BatchConfig::default());
            clipper
                .add_replica(&models[i], const_transport(label, None))
                .unwrap();
        }
        clipper.register_app(
            AppConfig::new("app", models.clone())
                .with_policy(policy)
                .with_slo(slo),
        );
        (clipper, models)
    }

    #[tokio::test]
    async fn predict_returns_the_models_answer() {
        let (clipper, _) = setup(
            &[4],
            PolicyKind::Static { model_index: 0 },
            Duration::from_millis(100),
        );
        let p = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(4));
        assert_eq!(p.confidence, 1.0);
        assert_eq!(p.models_used, 1);
        assert_eq!(p.models_missing, 0);
    }

    #[tokio::test]
    async fn unknown_app_errors() {
        let (clipper, _) = setup(
            &[1],
            PolicyKind::Static { model_index: 0 },
            Duration::from_millis(100),
        );
        let err = clipper
            .predict("ghost", None, Arc::new(vec![1.0]))
            .await
            .unwrap_err();
        assert_eq!(err, PredictError::AppUnknown);
    }

    #[tokio::test]
    async fn ensemble_majority_wins_with_agreement_confidence() {
        let (clipper, _) = setup(
            &[7, 7, 2],
            PolicyKind::MajorityVote,
            Duration::from_millis(200),
        );
        let p = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(7));
        assert!((p.confidence - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(p.models_used, 3);
    }

    #[tokio::test]
    async fn straggler_is_substituted_not_waited_for() {
        // Model 0 answers instantly with 5; model 1 takes 150ms — far past
        // the 40ms SLO.
        let clipper = Clipper::builder().build();
        let m0 = ModelId::new("fast", 1);
        let m1 = ModelId::new("slow", 1);
        clipper.add_model(m0.clone(), BatchConfig::default());
        clipper.add_model(m1.clone(), BatchConfig::default());
        clipper.add_replica(&m0, const_transport(5, None)).unwrap();
        clipper
            .add_replica(&m1, const_transport(9, Some(Duration::from_millis(150))))
            .unwrap();
        clipper.register_app(
            AppConfig::new("app", vec![m0.clone(), m1.clone()])
                .with_policy(PolicyKind::MajorityVote)
                .with_slo(Duration::from_millis(40)),
        );
        let start = Instant::now();
        let p = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(120),
            "must not wait for the straggler, took {elapsed:?}"
        );
        assert_eq!(p.output, Output::Class(5));
        assert_eq!(p.models_used, 1);
        assert_eq!(p.models_missing, 1);
        assert!(p.confidence <= 1.0);
    }

    #[tokio::test]
    async fn all_models_missing_returns_default_output() {
        let clipper = Clipper::builder().build();
        let m = ModelId::new("slow", 1);
        clipper.add_model(m.clone(), BatchConfig::default());
        clipper
            .add_replica(&m, const_transport(1, Some(Duration::from_millis(200))))
            .unwrap();
        clipper.register_app(
            AppConfig::new("app", vec![m])
                .with_policy(PolicyKind::MajorityVote)
                .with_slo(Duration::from_millis(30))
                .with_default_output(Output::Class(42)),
        );
        let p = clipper
            .predict("app", None, Arc::new(vec![1.0]))
            .await
            .unwrap();
        assert_eq!(p.output, Output::Class(42));
        assert_eq!(p.confidence, 0.0);
        assert_eq!(p.models_used, 0);
    }

    #[tokio::test]
    async fn feedback_shifts_exp3_toward_the_accurate_model() {
        // Model 0 always answers 0 (wrong); model 1 answers 1 (right).
        let (clipper, models) = setup(
            &[0, 1],
            PolicyKind::Exp3 { eta: 0.5 },
            Duration::from_millis(100),
        );
        for i in 0..60 {
            let input: Input = Arc::new(vec![i as f32]);
            clipper
                .feedback("app", None, input, Feedback::class(1))
                .await
                .unwrap();
        }
        let state = clipper.policy_state("app", None).unwrap();
        let idx_good = state.index_of(&models[1]).unwrap();
        let probs = state.probabilities();
        assert!(
            probs[idx_good] > 0.8,
            "good model should dominate: {probs:?}"
        );
    }

    #[tokio::test]
    async fn contexts_learn_independently() {
        let (clipper, models) = setup(
            &[0, 1],
            PolicyKind::Exp3 { eta: 0.5 },
            Duration::from_millis(100),
        );
        // User A's truth is 1 (model 1 right); user B's truth is 0.
        for i in 0..50 {
            clipper
                .feedback(
                    "app",
                    Some("userA"),
                    Arc::new(vec![i as f32]),
                    Feedback::class(1),
                )
                .await
                .unwrap();
            clipper
                .feedback(
                    "app",
                    Some("userB"),
                    Arc::new(vec![1000.0 + i as f32]),
                    Feedback::class(0),
                )
                .await
                .unwrap();
        }
        let sa = clipper.policy_state("app", Some("userA")).unwrap();
        let sb = clipper.policy_state("app", Some("userB")).unwrap();
        let good_a = sa.probabilities()[sa.index_of(&models[1]).unwrap()];
        let good_b = sb.probabilities()[sb.index_of(&models[0]).unwrap()];
        assert!(good_a > 0.7, "user A favors model 1: {good_a}");
        assert!(good_b > 0.7, "user B favors model 0: {good_b}");
    }

    #[tokio::test]
    async fn cached_predictions_accelerate_feedback() {
        let (clipper, _) = setup(
            &[1, 1],
            PolicyKind::Exp4 { eta: 0.2 },
            Duration::from_millis(100),
        );
        let input: Input = Arc::new(vec![5.0]);
        clipper.predict("app", None, input.clone()).await.unwrap();
        // Give the cache a moment to fill both models.
        tokio::time::sleep(Duration::from_millis(20)).await;
        let before = clipper.abstraction().cache().stats();
        clipper
            .feedback("app", None, input, Feedback::class(1))
            .await
            .unwrap();
        let after = clipper.abstraction().cache().stats();
        assert!(
            after.hits > before.hits,
            "feedback join should hit the cache: {} -> {}",
            before.hits,
            after.hits
        );
    }

    #[tokio::test]
    async fn batching_strategy_flows_to_queues() {
        let clipper = Clipper::builder().build();
        let m = ModelId::new("m", 1);
        clipper.add_model(
            m.clone(),
            BatchConfig {
                strategy: BatchStrategy::NoBatching,
                ..Default::default()
            },
        );
        clipper.add_replica(&m, const_transport(1, None)).unwrap();
        clipper.register_app(AppConfig::new("app", vec![m]).with_slo(Duration::from_millis(50)));
        for i in 0..10 {
            clipper
                .predict("app", None, Arc::new(vec![i as f32]))
                .await
                .unwrap();
        }
        // NoBatching → every dispatched batch has size 1.
        let snap = clipper.registry().snapshot();
        let key = snap
            .values
            .keys()
            .find(|k| k.contains("batch_size"))
            .cloned()
            .expect("batch size histogram registered");
        if let clipper_metrics::MetricValue::Histogram { max, .. } = snap.values[&key] {
            assert_eq!(max, 1);
        } else {
            panic!("expected histogram");
        }
    }
}
