//! Clipper-side RPC server.
//!
//! Containers dial in, register their model, and the server yields a
//! [`TcpContainerHandle`] per registration — a multiplexed, concurrent
//! batch-prediction channel. The model abstraction layer treats the handle
//! as just another [`BatchTransport`].

use crate::codec::{FrameReader, FrameWriter};
use crate::error::RpcError;
use crate::message::{Message, PredictReply};
use crate::transport::{BatchTransport, BoxFuture, Input};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::{mpsc, oneshot};

/// Metadata announced by a container at registration.
#[derive(Clone, Debug)]
pub struct ContainerInfo {
    /// Container instance name.
    pub container_name: String,
    /// Model the container serves.
    pub model_name: String,
    /// Model version.
    pub model_version: u32,
    /// Peer address.
    pub remote_addr: SocketAddr,
}

type Pending = Arc<Mutex<HashMap<u64, oneshot::Sender<Result<PredictReply, RpcError>>>>>;

/// A handle to one connected container: submit batches, await replies.
///
/// Requests are multiplexed by id, so many batches can be in flight at
/// once (the container decides its own execution order).
pub struct TcpContainerHandle {
    id: String,
    tx: mpsc::UnboundedSender<(u64, Message)>,
    pending: Pending,
    next_id: AtomicU64,
    healthy: Arc<AtomicBool>,
    last_seen: Arc<Mutex<Instant>>,
}

impl TcpContainerHandle {
    /// Start active liveness probing: send a heartbeat every `interval`
    /// and mark the container unhealthy if nothing (acks, replies) has
    /// been heard for `grace`. A hung container — connection open but not
    /// reading — is detected this way; a closed connection is already
    /// detected passively. Health recovers automatically if the container
    /// resumes responding. The probe stops when the connection dies.
    pub fn start_heartbeats(&self, interval: Duration, grace: Duration) {
        let tx = self.tx.clone();
        let healthy = self.healthy.clone();
        let last_seen = self.last_seen.clone();
        let pending = self.pending.clone();
        tokio::spawn(async move {
            loop {
                tokio::time::sleep(interval).await;
                if tx.send((0, Message::Heartbeat)).is_err() {
                    healthy.store(false, Ordering::Release);
                    return;
                }
                let silent_for = last_seen.lock().elapsed();
                if silent_for > grace {
                    // Hung: fail what's in flight and flag the replica so
                    // the routing layer skips it.
                    if healthy.swap(false, Ordering::AcqRel) {
                        let mut p = pending.lock();
                        for (_, otx) in p.drain() {
                            let _ = otx.send(Err(RpcError::Timeout));
                        }
                    }
                } else if !healthy.load(Ordering::Acquire) && silent_for < grace {
                    // The container answered again: it may have been
                    // temporarily wedged (GC pause); readmit it.
                    healthy.store(true, Ordering::Release);
                }
            }
        });
    }
}

impl TcpContainerHandle {
    fn submit(&self, inputs: Vec<Input>) -> oneshot::Receiver<Result<PredictReply, RpcError>> {
        let (otx, orx) = oneshot::channel();
        if !self.healthy.load(Ordering::Acquire) {
            let _ = otx.send(Err(RpcError::ConnectionClosed));
            return orx;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().insert(id, otx);
        if self
            .tx
            .send((id, Message::PredictRequest { inputs }))
            .is_err()
        {
            if let Some(otx) = self.pending.lock().remove(&id) {
                let _ = otx.send(Err(RpcError::ConnectionClosed));
            }
        }
        orx
    }
}

impl BatchTransport for TcpContainerHandle {
    fn predict_batch(&self, inputs: &[Input]) -> BoxFuture<Result<PredictReply, RpcError>> {
        // `to_vec` clones `Arc` pointers; the feature data is read out of
        // the shared vectors only when the frame is encoded.
        let rx = self.submit(inputs.to_vec());
        Box::pin(async move {
            match rx.await {
                Ok(r) => r,
                Err(_) => Err(RpcError::ConnectionClosed),
            }
        })
    }

    fn id(&self) -> String {
        self.id.clone()
    }

    fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }
}

/// The Clipper-side listener: accepts container connections and yields
/// registered containers.
pub struct RpcServer {
    local_addr: SocketAddr,
    registrations: mpsc::UnboundedReceiver<(ContainerInfo, TcpContainerHandle)>,
}

impl RpcServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"`) and start accepting
    /// container connections in the background.
    pub async fn bind(addr: &str) -> Result<Self, RpcError> {
        let listener = TcpListener::bind(addr).await?;
        let local_addr = listener.local_addr()?;
        let (reg_tx, registrations) = mpsc::unbounded_channel();
        tokio::spawn(accept_loop(listener, reg_tx));
        Ok(RpcServer {
            local_addr,
            registrations,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Wait for the next container to register. Returns `None` if the
    /// accept loop has shut down.
    pub async fn next_container(&mut self) -> Option<(ContainerInfo, TcpContainerHandle)> {
        self.registrations.recv().await
    }
}

async fn accept_loop(
    listener: TcpListener,
    reg_tx: mpsc::UnboundedSender<(ContainerInfo, TcpContainerHandle)>,
) {
    loop {
        let (stream, peer) = match listener.accept().await {
            Ok(x) => x,
            Err(_) => break,
        };
        let reg_tx = reg_tx.clone();
        tokio::spawn(async move {
            // Errors here just drop the connection; the container retries.
            let _ = handle_connection(stream, peer, reg_tx).await;
        });
    }
}

async fn handle_connection(
    stream: TcpStream,
    peer: SocketAddr,
    reg_tx: mpsc::UnboundedSender<(ContainerInfo, TcpContainerHandle)>,
) -> Result<(), RpcError> {
    stream.set_nodelay(true)?;
    let (rd, wr) = stream.into_split();
    let mut rd = FrameReader::new(rd);
    let mut wr = FrameWriter::new(wr);

    // First frame must be a registration.
    let (reg_id, msg) = rd.next().await?;
    let info = match msg {
        Message::Register {
            container_name,
            model_name,
            model_version,
        } => ContainerInfo {
            container_name,
            model_name,
            model_version,
            remote_addr: peer,
        },
        other => {
            return Err(RpcError::Protocol(format!(
                "expected Register, got {other:?}"
            )));
        }
    };
    wr.send(&Message::RegisterAck, reg_id).await?;

    let pending: Pending = Arc::new(Mutex::new(HashMap::new()));
    let healthy = Arc::new(AtomicBool::new(true));
    let last_seen = Arc::new(Mutex::new(Instant::now()));
    let (tx, mut rx) = mpsc::unbounded_channel::<(u64, Message)>();

    let handle = TcpContainerHandle {
        id: format!("{}/{}", info.model_name, info.container_name),
        tx: tx.clone(),
        pending: pending.clone(),
        next_id: AtomicU64::new(1),
        healthy: healthy.clone(),
        last_seen: last_seen.clone(),
    };
    // If Clipper is no longer listening for containers, drop quietly.
    if reg_tx.send((info, handle)).is_err() {
        return Ok(());
    }

    // Writer task: serialize outbound requests. Batches dispatched while
    // a flush was in progress coalesce into the next write.
    let healthy_w = healthy.clone();
    let writer = tokio::spawn(async move {
        'outer: while let Some((id, msg)) = rx.recv().await {
            wr.queue(&msg, id);
            while wr.pending() < 256 * 1024 {
                match rx.try_recv() {
                    Ok((id, msg)) => wr.queue(&msg, id),
                    Err(_) => break,
                }
            }
            if wr.flush().await.is_err() {
                break 'outer;
            }
        }
        healthy_w.store(false, Ordering::Release);
    });

    // Reader loop: complete pending requests, answer heartbeats.
    loop {
        *last_seen.lock() = Instant::now();
        match rd.next().await {
            Ok((id, Message::PredictResponse(reply))) => {
                if let Some(otx) = pending.lock().remove(&id) {
                    let _ = otx.send(Ok(reply));
                }
            }
            Ok((id, Message::Error { message })) => {
                if let Some(otx) = pending.lock().remove(&id) {
                    let _ = otx.send(Err(RpcError::Remote(message)));
                }
            }
            Ok((id, Message::Heartbeat)) => {
                let _ = tx.send((id, Message::HeartbeatAck));
            }
            Ok((_, Message::HeartbeatAck)) => {}
            Ok((_, Message::Shutdown)) | Err(_) => break,
            Ok((_, other)) => {
                // Unexpected but non-fatal; log-worthy in a real deployment.
                let _ = other;
            }
        }
    }

    // Connection is gone: fail everything still pending.
    healthy.store(false, Ordering::Release);
    let mut p = pending.lock();
    for (_, otx) in p.drain() {
        let _ = otx.send(Err(RpcError::ConnectionClosed));
    }
    drop(p);
    writer.abort();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{serve_container, BatchHandler, ContainerClientConfig};
    use crate::message::WireOutput;
    use crate::transport::as_inputs;
    use std::time::Duration;

    struct Doubler;
    impl BatchHandler for Doubler {
        fn handle_batch(&self, inputs: Vec<Input>) -> Result<PredictReply, String> {
            Ok(PredictReply {
                outputs: inputs
                    .iter()
                    .map(|x| WireOutput::Class((x.len() * 2) as u32))
                    .collect(),
                queue_us: 0,
                compute_us: 10,
            })
        }
    }

    async fn start_pair() -> (RpcServer, tokio::task::JoinHandle<()>) {
        let server = RpcServer::bind("127.0.0.1:0").await.unwrap();
        let addr = server.local_addr();
        let cfg = ContainerClientConfig {
            container_name: "c0".into(),
            model_name: "doubler".into(),
            model_version: 1,
        };
        let client = tokio::spawn(async move {
            let _ = serve_container(addr, cfg, Arc::new(Doubler)).await;
        });
        (server, client)
    }

    #[tokio::test]
    async fn container_registers_and_serves_batches() {
        let (mut server, _client) = start_pair().await;
        let (info, handle) = server.next_container().await.unwrap();
        assert_eq!(info.model_name, "doubler");
        assert_eq!(info.container_name, "c0");

        let reply = handle
            .predict_batch(&as_inputs(vec![vec![0.0; 3], vec![0.0; 5]]))
            .await
            .unwrap();
        assert_eq!(
            reply.outputs,
            vec![WireOutput::Class(6), WireOutput::Class(10)]
        );
        assert!(handle.is_healthy());
    }

    #[tokio::test]
    async fn concurrent_requests_multiplex() {
        let (mut server, _client) = start_pair().await;
        let (_, handle) = server.next_container().await.unwrap();
        let handle = Arc::new(handle);
        let mut tasks = Vec::new();
        for i in 0..32usize {
            let h = handle.clone();
            tasks.push(tokio::spawn(async move {
                let r = h
                    .predict_batch(&as_inputs(vec![vec![0.0; i]]))
                    .await
                    .unwrap();
                assert_eq!(r.outputs[0], WireOutput::Class((i * 2) as u32));
            }));
        }
        for t in tasks {
            t.await.unwrap();
        }
    }

    #[tokio::test]
    async fn dead_container_fails_pending_and_future_requests() {
        let (mut server, client) = start_pair().await;
        let (_, handle) = server.next_container().await.unwrap();
        // Kill the container task abruptly.
        client.abort();
        // Give the reader a moment to notice the close.
        tokio::time::sleep(Duration::from_millis(50)).await;
        let err = handle
            .predict_batch(&as_inputs(vec![vec![1.0]]))
            .await
            .unwrap_err();
        assert!(matches!(err, RpcError::ConnectionClosed | RpcError::Io(_)));
        assert!(!handle.is_healthy());
    }

    #[tokio::test]
    async fn heartbeats_detect_a_hung_container() {
        // A "container" that registers, then never reads again — the
        // connection stays open, so only active probing can catch it.
        let mut server = RpcServer::bind("127.0.0.1:0").await.unwrap();
        let addr = server.local_addr();
        tokio::spawn(async move {
            let stream = tokio::net::TcpStream::connect(addr).await.unwrap();
            let (mut rd, mut wr) = stream.into_split();
            crate::codec::write_frame(
                &mut wr,
                &Message::Register {
                    container_name: "hung".into(),
                    model_name: "m".into(),
                    model_version: 1,
                },
                0,
            )
            .await
            .unwrap();
            let _ = crate::codec::read_frame(&mut rd).await; // RegisterAck
                                                             // Wedge: hold the socket open but never read or write again.
            std::future::pending::<()>().await;
        });
        let (_, handle) = server.next_container().await.unwrap();
        assert!(handle.is_healthy());
        handle.start_heartbeats(Duration::from_millis(20), Duration::from_millis(60));
        // A request gets stuck in the hung container...
        let pending = handle.predict_batch(&as_inputs(vec![vec![1.0]]));
        // ...and the prober flags the replica and fails the request.
        let err = tokio::time::timeout(Duration::from_millis(500), pending)
            .await
            .expect("prober must fail the pending request")
            .unwrap_err();
        assert!(matches!(err, RpcError::Timeout));
        assert!(!handle.is_healthy());
    }

    #[tokio::test]
    async fn heartbeats_keep_a_live_container_healthy() {
        let (mut server, _client) = start_pair().await;
        let (_, handle) = server.next_container().await.unwrap();
        handle.start_heartbeats(Duration::from_millis(10), Duration::from_millis(40));
        tokio::time::sleep(Duration::from_millis(120)).await;
        assert!(handle.is_healthy(), "responsive container stays healthy");
        let r = handle
            .predict_batch(&as_inputs(vec![vec![0.0; 2]]))
            .await
            .unwrap();
        assert_eq!(r.outputs.len(), 1);
    }

    #[tokio::test]
    async fn multiple_containers_register_independently() {
        let mut server = RpcServer::bind("127.0.0.1:0").await.unwrap();
        let addr = server.local_addr();
        for i in 0..3 {
            let cfg = ContainerClientConfig {
                container_name: format!("c{i}"),
                model_name: "m".into(),
                model_version: 1,
            };
            tokio::spawn(async move {
                let _ = serve_container(addr, cfg, Arc::new(Doubler)).await;
            });
        }
        let mut seen = Vec::new();
        for _ in 0..3 {
            let (info, _) = server.next_container().await.unwrap();
            seen.push(info.container_name);
        }
        seen.sort();
        assert_eq!(seen, vec!["c0", "c1", "c2"]);
    }
}
