//! `#[derive(Serialize, Deserialize)]` for the in-repo serde substitute.
//!
//! Implemented without `syn`/`quote` (no registry access), by walking the
//! raw token stream. Supports exactly the container shapes this workspace
//! uses:
//!
//! - structs with named fields;
//! - enums with unit and struct variants;
//! - `#[serde(tag = "...")]` internal tagging on enums;
//! - `#[serde(rename_all = "snake_case")]` on enums;
//! - `#[serde(default)]` on fields.
//!
//! Anything else (tuple variants, generics, field renames) produces a
//! `compile_error!` naming the missing feature rather than silently
//! misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all_snake: bool,
}

struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    fields: Option<Vec<Field>>,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    attrs: ContainerAttrs,
    body: Body,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Parse a `#[serde(...)]` argument list: `key = "value"` pairs and bare
/// idents, comma-separated.
fn parse_serde_args(group: &proc_macro::Group) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let key = id.to_string();
            if i + 2 < tokens.len() {
                if let (TokenTree::Punct(eq), TokenTree::Literal(lit)) =
                    (&tokens[i + 1], &tokens[i + 2])
                {
                    if eq.as_char() == '=' {
                        let raw = lit.to_string();
                        let val = raw.trim_matches('"').to_string();
                        out.push((key, Some(val)));
                        i += 3;
                        continue;
                    }
                }
            }
            out.push((key, None));
        }
        i += 1;
    }
    out
}

/// If this bracket group is a `serde(...)` attribute, return its args.
fn serde_attr_args(group: &proc_macro::Group) -> Option<Vec<(String, Option<String>)>> {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            Some(parse_serde_args(args))
        }
        _ => None,
    }
}

fn parse_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Leading attributes: collect #[serde(default)], skip the rest.
        let mut default = false;
        loop {
            match (&tokens.get(i), &tokens.get(i + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    if let Some(args) = serde_attr_args(g) {
                        for (key, _) in args {
                            match key.as_str() {
                                "default" => default = true,
                                other => {
                                    return Err(format!(
                                        "unsupported field serde attribute `{other}`"
                                    ))
                                }
                            }
                        }
                    }
                    i += 2;
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "pub" {
                i += 1;
                // pub(crate) etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes (doc comments etc.; no variant serde attrs used).
        while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
            (&tokens.get(i), &tokens.get(i + 1))
        {
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
                i += 2;
            } else {
                break;
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple variant `{name}` is not supported by the vendored serde derive"
                ))
            }
            _ => None,
        };
        // Skip discriminant-free separator comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_container(input: TokenStream) -> Result<Container, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = ContainerAttrs::default();
    let mut i = 0;
    // Container attributes.
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (&tokens.get(i), &tokens.get(i + 1))
    {
        if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
            break;
        }
        if let Some(args) = serde_attr_args(g) {
            for (key, val) in args {
                match (key.as_str(), val.as_deref()) {
                    ("tag", Some(t)) => attrs.tag = Some(t.to_string()),
                    ("rename_all", Some("snake_case")) => attrs.rename_all_snake = true,
                    (other, _) => {
                        return Err(format!("unsupported container serde attribute `{other}`"))
                    }
                }
            }
        }
        i += 2;
    }
    // pub / pub(crate)
    while let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        } else {
            break;
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected container name, found {other:?}")),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "generic container `{name}` is not supported by the vendored serde derive"
            ))
        }
        _ => {}
    }
    let body_group = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => {
            return Err(format!(
                "expected braced body for `{name}`, found {other:?}"
            ))
        }
    };
    let body = match kind {
        "struct" => Body::Struct(parse_fields(body_group)?),
        _ => Body::Enum(parse_variants(body_group)?),
    };
    Ok(Container { name, attrs, body })
}

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    let chars: Vec<char> = name.chars().collect();
    for (idx, c) in chars.iter().enumerate() {
        if c.is_ascii_uppercase() {
            if idx > 0 && chars[idx - 1].is_ascii_lowercase() {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(*c);
        }
    }
    out
}

fn wire_name(variant: &str, attrs: &ContainerAttrs) -> String {
    if attrs.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

/// `(name, ser(field))` tuples for a map literal, from `&self.f` accessors.
fn ser_struct_entries(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({n:?}), ::serde::Serialize::serialize_content(&self.{n})),",
                n = f.name
            )
        })
        .collect()
}

/// Same, but from bound variant field names.
fn ser_variant_entries(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({n:?}), ::serde::Serialize::serialize_content({n})),",
                n = f.name
            )
        })
        .collect()
}

/// Deserialize one field from map-valued content expression `src`.
fn de_field(container: &str, f: &Field, src: &str) -> String {
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "::serde::Deserialize::deserialize_content(&::serde::Content::Null).map_err(|_| \
             ::serde::DeError::custom(::std::format!(\"missing field `{}` in {}\")))?",
            f.name, container
        )
    };
    format!(
        "{n}: match ::serde::Content::get_field({src}, {n:?}) {{ \
            ::std::option::Option::Some(v) => ::serde::Deserialize::deserialize_content(v)?, \
            ::std::option::Option::None => {missing}, \
        }},",
        n = f.name,
        src = src,
        missing = missing
    )
}

fn derive_serialize_impl(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.body {
        Body::Struct(fields) => format!(
            "::serde::Content::Map(::std::vec![{}])",
            ser_struct_entries(fields)
        ),
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let wire = wire_name(&v.name, &c.attrs);
                    match (&c.attrs.tag, &v.fields) {
                        (None, None) => format!(
                            "{name}::{v} => ::serde::Content::Str(::std::string::String::from({wire:?})),",
                            v = v.name
                        ),
                        (None, Some(fields)) => {
                            let binds: String = fields
                                .iter()
                                .map(|f| format!("{},", f.name))
                                .collect();
                            format!(
                                "{name}::{v} {{ {binds} }} => ::serde::Content::Map(::std::vec![ \
                                    (::std::string::String::from({wire:?}), \
                                     ::serde::Content::Map(::std::vec![{entries}])), \
                                ]),",
                                v = v.name,
                                entries = ser_variant_entries(fields)
                            )
                        }
                        (Some(tag), None) => format!(
                            "{name}::{v} => ::serde::Content::Map(::std::vec![ \
                                (::std::string::String::from({tag:?}), \
                                 ::serde::Content::Str(::std::string::String::from({wire:?}))), \
                            ]),",
                            v = v.name
                        ),
                        (Some(tag), Some(fields)) => {
                            let binds: String = fields
                                .iter()
                                .map(|f| format!("{},", f.name))
                                .collect();
                            format!(
                                "{name}::{v} {{ {binds} }} => ::serde::Content::Map(::std::vec![ \
                                    (::std::string::String::from({tag:?}), \
                                     ::serde::Content::Str(::std::string::String::from({wire:?}))), \
                                    {entries} \
                                ]),",
                                v = v.name,
                                entries = ser_variant_entries(fields)
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
            fn serialize_content(&self) -> ::serde::Content {{ {body} }} \
        }}"
    )
}

fn derive_deserialize_impl(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.body {
        Body::Struct(fields) => {
            let inits: String = fields.iter().map(|f| de_field(name, f, "c")).collect();
            format!(
                "if ::serde::Content::as_map(c).is_none() {{ \
                    return ::std::result::Result::Err(::serde::DeError::custom( \
                        ::std::format!(\"expected map for {name}, got {{}}\", c.kind()))); \
                }} \
                ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Body::Enum(variants) => {
            if let Some(tag) = &c.attrs.tag {
                let arms: String = variants
                    .iter()
                    .map(|v| {
                        let wire = wire_name(&v.name, &c.attrs);
                        match &v.fields {
                            None => format!(
                                "{wire:?} => ::std::result::Result::Ok({name}::{v}),",
                                v = v.name
                            ),
                            Some(fields) => {
                                let inits: String =
                                    fields.iter().map(|f| de_field(name, f, "c")).collect();
                                format!(
                                    "{wire:?} => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),",
                                    v = v.name
                                )
                            }
                        }
                    })
                    .collect();
                format!(
                    "let tag = ::serde::Content::get_field(c, {tag:?}) \
                        .and_then(::serde::Content::as_str) \
                        .ok_or_else(|| ::serde::DeError::custom( \
                            ::std::format!(\"missing tag `{tag}` for {name}\")))?; \
                    match tag {{ {arms} \
                        other => ::std::result::Result::Err(::serde::DeError::custom( \
                            ::std::format!(\"unknown {name} variant `{{other}}`\"))), \
                    }}"
                )
            } else {
                let unit_arms: String = variants
                    .iter()
                    .filter(|v| v.fields.is_none())
                    .map(|v| {
                        let wire = wire_name(&v.name, &c.attrs);
                        format!(
                            "{wire:?} => ::std::result::Result::Ok({name}::{v}),",
                            v = v.name
                        )
                    })
                    .collect();
                let map_arms: String = variants
                    .iter()
                    .filter_map(|v| v.fields.as_ref().map(|f| (v, f)))
                    .map(|(v, fields)| {
                        let wire = wire_name(&v.name, &c.attrs);
                        let inits: String =
                            fields.iter().map(|f| de_field(name, f, "inner")).collect();
                        format!(
                            "{wire:?} => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),",
                            v = v.name
                        )
                    })
                    .collect();
                format!(
                    "match c {{ \
                        ::serde::Content::Str(s) => match s.as_str() {{ {unit_arms} \
                            other => ::std::result::Result::Err(::serde::DeError::custom( \
                                ::std::format!(\"unknown {name} variant `{{other}}`\"))), \
                        }}, \
                        ::serde::Content::Map(entries) if entries.len() == 1 => {{ \
                            let (key, inner) = &entries[0]; \
                            match key.as_str() {{ {map_arms} \
                                other => ::std::result::Result::Err(::serde::DeError::custom( \
                                    ::std::format!(\"unknown {name} variant `{{other}}`\"))), \
                            }} \
                        }}, \
                        other => ::std::result::Result::Err(::serde::DeError::custom( \
                            ::std::format!(\"expected {name} variant, got {{}}\", other.kind()))), \
                    }}"
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
            fn deserialize_content(c: &::serde::Content) \
                -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
        }}"
    )
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_container(input) {
        Ok(c) => derive_serialize_impl(&c).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_container(input) {
        Ok(c) => derive_deserialize_impl(&c).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
