//! Model implementations and the common prediction trait.
//!
//! All models implement [`Model`]: per-class scores plus batch prediction.
//! The batch entry point matters because Clipper's whole batching layer
//! (§4.3 of the paper) exists to exploit models that amortize per-call
//! overhead across a batch.

mod kernel;
mod knn;
mod linear;
mod mlp;
mod noop;
mod tree;

pub use kernel::{KernelSvm, KernelSvmConfig};
pub use knn::{Knn, KnnConfig};
pub use linear::{LinearSvm, LinearSvmConfig, LogisticRegression, LogisticRegressionConfig};
pub use mlp::{Mlp, MlpConfig};
pub use noop::NoOpModel;
pub use tree::{DecisionTree, DecisionTreeConfig, RandomForest, RandomForestConfig};

use crate::linalg::argmax;

/// A class label.
pub type Label = u32;

/// The common prediction interface (the paper's `Predict(m, x) -> y`).
///
/// Implementations must be `Send + Sync`: model containers evaluate batches
/// from worker threads.
pub trait Model: Send + Sync {
    /// Short human-readable name, e.g. `"linear-svm"`.
    fn name(&self) -> &str;

    /// Number of classes this model scores.
    fn num_classes(&self) -> usize;

    /// Per-class scores for one input; higher is more likely. Length must
    /// equal [`Model::num_classes`].
    fn scores(&self, x: &[f32]) -> Vec<f32>;

    /// Predicted label for one input (argmax of scores by default).
    fn predict(&self, x: &[f32]) -> Label {
        argmax(&self.scores(x)) as Label
    }

    /// Predict a whole batch (the Listing-1 container interface). The
    /// default maps [`Model::predict`] over the batch; models with real
    /// batch-level optimizations may override.
    fn predict_batch(&self, xs: &[&[f32]]) -> Vec<Label> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Score a whole batch.
    fn scores_batch(&self, xs: &[&[f32]]) -> Vec<Vec<f32>> {
        xs.iter().map(|x| self.scores(x)).collect()
    }
}

/// Blanket impl so `Arc<M>` and `Box<M>` are models too.
impl<M: Model + ?Sized> Model for std::sync::Arc<M> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn num_classes(&self) -> usize {
        (**self).num_classes()
    }
    fn scores(&self, x: &[f32]) -> Vec<f32> {
        (**self).scores(x)
    }
    fn predict(&self, x: &[f32]) -> Label {
        (**self).predict(x)
    }
    fn predict_batch(&self, xs: &[&[f32]]) -> Vec<Label> {
        (**self).predict_batch(xs)
    }
    fn scores_batch(&self, xs: &[&[f32]]) -> Vec<Vec<f32>> {
        (**self).scores_batch(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    struct Fixed;
    impl Model for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn num_classes(&self) -> usize {
            3
        }
        fn scores(&self, x: &[f32]) -> Vec<f32> {
            vec![x[0], x[0] * 2.0, 0.5]
        }
    }

    #[test]
    fn default_predict_is_argmax_of_scores() {
        let m = Fixed;
        assert_eq!(m.predict(&[1.0]), 1);
        assert_eq!(m.predict(&[-1.0]), 2);
    }

    #[test]
    fn default_batch_maps_predict() {
        let m = Fixed;
        let a = vec![1.0f32];
        let b = vec![-2.0f32];
        let batch: Vec<&[f32]> = vec![&a, &b];
        assert_eq!(m.predict_batch(&batch), vec![1, 2]);
        assert_eq!(m.scores_batch(&batch).len(), 2);
    }

    #[test]
    fn arc_model_delegates() {
        let m: Arc<dyn Model> = Arc::new(Fixed);
        assert_eq!(m.name(), "fixed");
        assert_eq!(m.num_classes(), 3);
        assert_eq!(m.predict(&[1.0]), 1);
    }
}
