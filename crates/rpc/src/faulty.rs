//! Fault-injection transport wrapper.
//!
//! Wraps any [`BatchTransport`] and injects the failure modes the paper's
//! robustness machinery must tolerate: added latency (stragglers, §5.2.2),
//! dropped requests, and hard failures. Randomness is seeded so experiments
//! are repeatable, in the spirit of smoltcp's `--drop-chance` /
//! `--corrupt-chance` example flags.

use crate::error::RpcError;
use crate::message::PredictReply;
use crate::transport::{BatchTransport, BoxFuture, Input};
use parking_lot::Mutex;
use rand::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Fault model for [`FaultyTransport`].
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Base added latency applied to every request.
    pub base_delay: Duration,
    /// Uniform jitter added on top of `base_delay` (0..jitter).
    pub jitter: Duration,
    /// Probability of a straggler event per request.
    pub straggler_prob: f64,
    /// Extra delay applied on straggler events.
    pub straggler_delay: Duration,
    /// Probability the request is dropped (never answered → `Injected`).
    pub drop_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            base_delay: Duration::ZERO,
            jitter: Duration::ZERO,
            straggler_prob: 0.0,
            straggler_delay: Duration::ZERO,
            drop_prob: 0.0,
        }
    }
}

impl FaultConfig {
    /// A straggler profile: `prob` chance of an extra `delay`.
    pub fn stragglers(prob: f64, delay: Duration) -> Self {
        FaultConfig {
            straggler_prob: prob,
            straggler_delay: delay,
            ..Default::default()
        }
    }

    /// Uniform latency noise in `[base, base + jitter)`.
    pub fn latency(base: Duration, jitter: Duration) -> Self {
        FaultConfig {
            base_delay: base,
            jitter,
            ..Default::default()
        }
    }
}

/// A transport wrapper that injects latency and loss.
///
/// The fault model is hot-swappable: chaos harnesses flip a healthy
/// replica into a failing one *mid-run* with
/// [`set_config`](Self::set_config) / [`fail_hard`](Self::fail_hard) and
/// back, without re-attaching the replica.
pub struct FaultyTransport {
    inner: Arc<dyn BatchTransport>,
    cfg: Mutex<FaultConfig>,
    rng: Mutex<StdRng>,
}

impl FaultyTransport {
    /// Wrap `inner` with fault model `cfg`; `seed` makes runs repeatable.
    pub fn new(inner: Arc<dyn BatchTransport>, cfg: FaultConfig, seed: u64) -> Self {
        FaultyTransport {
            inner,
            cfg: Mutex::new(cfg),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Replace the fault model. Applies to every request decided after
    /// the call; requests already in flight keep the outcome they drew.
    pub fn set_config(&self, cfg: FaultConfig) {
        *self.cfg.lock() = cfg;
    }

    /// The current fault model.
    pub fn config(&self) -> FaultConfig {
        self.cfg.lock().clone()
    }

    /// Convenience chaos switch: `true` makes every request fail
    /// (`drop_prob = 1.0`), `false` restores a clean pass-through.
    pub fn fail_hard(&self, failing: bool) {
        self.set_config(FaultConfig {
            drop_prob: if failing { 1.0 } else { 0.0 },
            ..Default::default()
        });
    }
}

impl BatchTransport for FaultyTransport {
    fn predict_batch(&self, inputs: &[Input]) -> BoxFuture<Result<PredictReply, RpcError>> {
        // Decide the fault outcome up front (short locks; no awaits
        // inside). The config is read once per request so a concurrent
        // `set_config` never half-applies.
        let cfg = self.cfg.lock().clone();
        let (delay, dropped) = {
            let mut rng = self.rng.lock();
            let mut delay = cfg.base_delay;
            if cfg.jitter > Duration::ZERO {
                delay += cfg.jitter.mul_f64(rng.random::<f64>());
            }
            if cfg.straggler_prob > 0.0 && rng.random_bool(cfg.straggler_prob) {
                delay += cfg.straggler_delay;
            }
            let dropped = cfg.drop_prob > 0.0 && rng.random_bool(cfg.drop_prob);
            (delay, dropped)
        };
        let inner = self.inner.clone();
        let inputs = inputs.to_vec(); // Arc clones only
        Box::pin(async move {
            if delay > Duration::ZERO {
                tokio::time::sleep(delay).await;
            }
            if dropped {
                return Err(RpcError::Injected);
            }
            inner.predict_batch(&inputs).await
        })
    }

    fn id(&self) -> String {
        format!("faulty({})", self.inner.id())
    }

    fn is_healthy(&self) -> bool {
        self.inner.is_healthy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WireOutput;
    use crate::transport::FnTransport;
    use std::sync::Arc;
    use std::time::Instant;

    fn one_input() -> Vec<Input> {
        vec![Arc::new(vec![0.0])]
    }

    fn ok_transport() -> Arc<dyn BatchTransport> {
        Arc::new(FnTransport::new("ok", |inputs: &[Input]| {
            Ok(PredictReply {
                outputs: vec![WireOutput::Class(1); inputs.len()],
                queue_us: 0,
                compute_us: 0,
            })
        }))
    }

    #[tokio::test]
    async fn no_faults_passes_through() {
        let t = FaultyTransport::new(ok_transport(), FaultConfig::default(), 1);
        let r = t.predict_batch(&one_input()).await.unwrap();
        assert_eq!(r.outputs.len(), 1);
        assert!(t.id().contains("ok"));
    }

    #[tokio::test]
    async fn drop_prob_one_always_drops() {
        let cfg = FaultConfig {
            drop_prob: 1.0,
            ..Default::default()
        };
        let t = FaultyTransport::new(ok_transport(), cfg, 1);
        let err = t.predict_batch(&one_input()).await.unwrap_err();
        assert!(matches!(err, RpcError::Injected));
    }

    #[tokio::test]
    async fn base_delay_is_applied() {
        let cfg = FaultConfig::latency(Duration::from_millis(25), Duration::ZERO);
        let t = FaultyTransport::new(ok_transport(), cfg, 1);
        let start = Instant::now();
        t.predict_batch(&one_input()).await.unwrap();
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[tokio::test]
    async fn fault_config_is_hot_swappable_mid_run() {
        // A chaos harness flips a healthy replica into a black hole and
        // back without re-attaching it.
        let t = FaultyTransport::new(ok_transport(), FaultConfig::default(), 3);
        assert!(t.predict_batch(&one_input()).await.is_ok());
        t.fail_hard(true);
        assert_eq!(t.config().drop_prob, 1.0);
        for _ in 0..10 {
            let err = t.predict_batch(&one_input()).await.unwrap_err();
            assert!(matches!(err, RpcError::Injected));
        }
        t.fail_hard(false);
        assert!(t.predict_batch(&one_input()).await.is_ok());
        // Arbitrary models swap in too.
        t.set_config(FaultConfig::latency(
            Duration::from_millis(5),
            Duration::ZERO,
        ));
        let start = Instant::now();
        t.predict_batch(&one_input()).await.unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[tokio::test]
    async fn straggler_rate_roughly_matches_probability() {
        let cfg = FaultConfig::stragglers(0.3, Duration::from_millis(8));
        let t = FaultyTransport::new(ok_transport(), cfg, 42);
        let mut stragglers = 0;
        for _ in 0..100 {
            let start = Instant::now();
            t.predict_batch(&one_input()).await.unwrap();
            if start.elapsed() >= Duration::from_millis(8) {
                stragglers += 1;
            }
        }
        assert!(
            (15..=45).contains(&stragglers),
            "expected ≈30 stragglers out of 100, got {stragglers}"
        );
    }
}
