//! Minimal API-compatible substitute for [`serde`].
//!
//! Instead of serde's visitor-based zero-copy data model, this substitute
//! routes everything through one self-describing tree, [`Content`]:
//! serializers lower values into `Content`, deserializers lift them back.
//! That is slower than real serde but behaviorally equivalent for the JSON
//! round trips this workspace performs (policy state in the statestore,
//! the HTTP frontend bodies, metric snapshots).
//!
//! `#[derive(Serialize, Deserialize)]` is provided by the companion
//! `serde_derive` proc-macro crate and supports the container shapes used
//! here: named-field structs, enums with unit/struct variants, external or
//! internal (`#[serde(tag = "...")]`) enum tagging,
//! `#[serde(rename_all = "snake_case")]`, and `#[serde(default)]`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The self-describing value tree both traits speak.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null` (also what absent struct fields deserialize from).
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Look up a key in a map value.
    pub fn get_field(&self, key: &str) -> Option<&Content> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into the [`Content`] tree.
pub trait Serialize {
    /// Produce the content tree for this value.
    fn serialize_content(&self) -> Content;
}

/// Lift a value back out of the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parse `content` into `Self`.
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;
}

// ---- primitive impls ----

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let v = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("integer {v} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match c {
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom(format!("integer {v} out of range")))?,
                    Content::I64(v) => *v,
                    Content::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("integer {v} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(DeError::custom(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected map, got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn serialize_content(&self) -> Content {
        // Sort for deterministic output, like serde_json's BTreeMap-backed
        // object representation.
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected map, got {}",
                other.kind()
            ))),
        }
    }
}
