//! Shared harness code for the figure/table reproduction binaries.
//!
//! Every binary regenerates one table or figure from the paper
//! (see DESIGN.md §4 for the full index):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table 1 (datasets) |
//! | `table2` | Table 2 (deep model zoo) |
//! | `fig3` | container latency profiles |
//! | `fig4` | batching-strategy comparison |
//! | `fig5` | delayed batching |
//! | `fig6` | replica scaling, 1 vs 10 Gbps |
//! | `fig7` | ensemble accuracy + confidence split |
//! | `fig8` | Exp3/Exp4 under model failure |
//! | `fig9` | straggler mitigation vs ensemble size |
//! | `fig10` | contextual (dialect) selection |
//! | `fig11` | Clipper vs TensorFlow-Serving |
//! | `caching` | §4.2 feedback-throughput claim |
//! | `ablation_aimd` | AIMD backoff-constant sensitivity |
//! | `ablation_eta` | Exp3 η sensitivity |
//!
//! Run any with `cargo run -p clipper-bench --release --bin <target>`.
//! Set `CLIPPER_BENCH_SECONDS` to stretch/shrink measured phases (default
//! 3 s; the EXPERIMENTS.md numbers were recorded at the default).

pub mod http_bench;

use clipper_containers::{
    ContainerConfig, ContainerLogic, LocalContainerTransport, ModelContainer, TimingModel,
};
use clipper_core::{BatchConfig, Clipper, ModelId};
use clipper_rpc::message::WireOutput;
use clipper_rpc::transport::BatchTransport;
use std::sync::Arc;
use std::time::Duration;

/// Length of each measured load phase.
pub fn phase_duration() -> Duration {
    let secs: f64 = std::env::var("CLIPPER_BENCH_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    Duration::from_secs_f64(secs.max(0.5))
}

/// Build a container whose *timing* follows a Figure-3 profile and whose
/// answers are constant (latency experiments don't consume the labels).
pub fn profile_container(
    name: &str,
    model: clipper_containers::Fig3Model,
    seed: u64,
) -> Arc<ModelContainer> {
    ModelContainer::new(ContainerConfig {
        name: format!("{name}:0"),
        model_name: name.to_string(),
        model_version: 1,
        logic: ContainerLogic::Fixed(WireOutput::Class(0)),
        timing: TimingModel::Profile(clipper_containers::fig3_profile(model)),
        seed,
    })
}

/// Stand up a single-model Clipper with the given batching config and a
/// majority-vote app named `"bench"`. Returns `(clipper, model_id)`.
pub fn single_model_stack(
    transport: Arc<dyn BatchTransport>,
    batch: BatchConfig,
    slo: Duration,
) -> (Clipper, ModelId) {
    let clipper = Clipper::builder().build();
    let id = ModelId::new("bench-model", 1);
    clipper.add_model(id.clone(), batch);
    clipper.add_replica(&id, transport).expect("replica");
    clipper.register_app(
        clipper_core::AppConfig::new("bench", vec![id.clone()])
            .with_policy(clipper_core::PolicyKind::Static { model_index: 0 })
            .with_slo(slo),
    );
    (clipper, id)
}

/// A small distinct input per (client, seq) so the prediction cache never
/// collapses load-generator queries.
pub fn distinct_input(client: usize, seq: u64, dim: usize) -> Arc<Vec<f32>> {
    let mut v = vec![0.0f32; dim.max(2)];
    v[0] = client as f32;
    v[1] = seq as f32;
    Arc::new(v)
}

/// Convenience: `LocalContainerTransport` over a fresh profile container.
pub fn profile_transport(
    name: &str,
    model: clipper_containers::Fig3Model,
    seed: u64,
) -> Arc<dyn BatchTransport> {
    LocalContainerTransport::new(profile_container(name, model, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(distinct_input(0, 1, 8), distinct_input(0, 2, 8));
        assert_ne!(distinct_input(1, 1, 8), distinct_input(2, 1, 8));
        assert_eq!(distinct_input(0, 0, 1).len(), 2);
    }

    #[test]
    fn phase_duration_has_floor() {
        assert!(phase_duration() >= Duration::from_millis(500));
    }

    #[tokio::test]
    async fn single_model_stack_serves() {
        let t = profile_transport("noop", clipper_containers::Fig3Model::NoOp, 1);
        let (clipper, _) = single_model_stack(t, BatchConfig::default(), Duration::from_millis(50));
        let p = clipper
            .predict("bench", None, distinct_input(0, 0, 8))
            .await
            .unwrap();
        assert_eq!(p.models_used, 1);
    }
}
