//! Aligned text tables for experiment output.
//!
//! Every bench binary prints its figure/table as rows through [`Table`],
//! with a `paper=` column carrying the reference values so EXPERIMENTS.md
//! can be assembled straight from harness output.

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with thousands grouping for qps-style numbers.
pub fn fmt_qps(v: f64) -> String {
    let n = v.round() as i64;
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["model", "qps"]);
        t.row(&["linear-svm".into(), "29,801".into()]);
        t.row(&["kernel".into(), "201".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[2].contains("linear-svm"));
        // Columns align: "qps" column starts at the same offset in every row.
        let col = lines[0].find("qps").unwrap();
        assert_eq!(&lines[2][col - 2..col], "  ");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn qps_formatting_groups_thousands() {
        assert_eq!(fmt_qps(48386.4), "48,386");
        assert_eq!(fmt_qps(152.0), "152");
        assert_eq!(fmt_qps(1_234_567.0), "1,234,567");
        assert_eq!(fmt_qps(0.2), "0");
    }
}
