//! Prediction-cache scaling benchmark — the first entry in the repo's
//! bench trajectory (`BENCH_cache_scaling.json`).
//!
//! Drives [`PredictionCache`] directly from 1..=N OS threads over four key
//! mixes and records aggregate throughput and probe-latency quantiles per
//! thread count:
//!
//! - `hot`: a small prefilled working set — every probe hits;
//! - `cold`: every probe is a fresh key — the insert/evict path;
//! - `uniform`: uniform random keys over a keyspace 8× the capacity —
//!   steady-state miss/fill churn (the acceptance mix);
//! - `zipfian`: Zipf(s≈1.01) popularity over the same keyspace — the
//!   skewed mix real serving traffic looks like.
//!
//! The `uniform` mix also runs against a 1-shard cache, which is the old
//! single-mutex design, so the JSON carries its own contention baseline.
//!
//! Flags: `--smoke` (short phases for CI), `--seconds <f64>`,
//! `--out <path>` (default `BENCH_cache_scaling.json`), `--full`
//! (thread counts 1..=8 instead of 1,2,4,8). With
//! `CACHE_SCALING_ENFORCE=1` the binary exits non-zero if the emitted
//! JSON fails to parse back, any run recorded zero throughput, or — on
//! hosts with ≥ 4 cores — 4-thread sharded uniform throughput is below
//! 1.5× single-thread (gate cells re-measured best-of-3 with ≥ 0.3 s
//! phases, so one noisy CI sample can't flip the verdict).

use clipper_core::cache::{CacheKey, PredictionCache};
use clipper_metrics::Histogram;
use rand::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Completed-entry capacity of every benchmarked cache.
const CAPACITY: usize = 8_192;
/// Keyspace for the uniform and zipfian mixes (8× capacity).
const KEYSPACE: usize = 65_536;
/// Working set for the hot mix.
const HOT_KEYS: usize = 512;

#[derive(Clone, Serialize, Deserialize)]
struct RunResult {
    mix: String,
    shards: usize,
    threads: usize,
    ops_total: u64,
    ops_per_sec: f64,
    p50_probe_ns: u64,
    p99_probe_ns: u64,
    hit_rate: f64,
}

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    cores: usize,
    capacity: usize,
    sharded_shard_count: usize,
    phase_seconds: f64,
    thread_counts: Vec<usize>,
    results: Vec<RunResult>,
    /// Sharded uniform-mix aggregate throughput at max threads vs 1.
    speedup_max_threads_uniform: f64,
    /// Sharded uniform-mix aggregate throughput at 4 threads vs 1
    /// (the CI gate ratio; meaningful only on ≥ 4-core hosts).
    speedup_4v1_uniform: f64,
}

/// splitmix64: distinct well-mixed fingerprints from small indices.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn key_for(i: u64) -> CacheKey {
    CacheKey::from_fingerprint(mix64(i), mix64(i ^ 0x5DEE_CE66_D154_21C5))
}

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Hot,
    Cold,
    Uniform,
    Zipfian,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Hot => "hot",
            Mix::Cold => "cold",
            Mix::Uniform => "uniform",
            Mix::Zipfian => "zipfian",
        }
    }
}

/// Cumulative Zipf(s) weights over ranks 1..=n, for inverse-CDF sampling.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for rank in 1..=n {
        acc += 1.0 / (rank as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

struct ThreadOutcome {
    ops: u64,
}

/// One timed run: `threads` workers hammer a fresh cache with `mix` keys
/// for `phase`. Probe latency is sampled every 32nd op so timing overhead
/// stays off the throughput measurement.
fn run_once(mix: Mix, shards: usize, threads: usize, phase: Duration) -> RunResult {
    let cache = PredictionCache::with_shards(CAPACITY, shards);
    if mix == Mix::Hot {
        for i in 0..HOT_KEYS {
            cache.fill(key_for(i as u64), Ok(clipper_core::Output::Class(i as u32)));
        }
    }
    let zipf = match mix {
        Mix::Zipfian => Arc::new(zipf_cdf(KEYSPACE, 1.01)),
        _ => Arc::new(Vec::new()),
    };
    let latency = Histogram::new();
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));

    let mut workers = Vec::new();
    for t in 0..threads {
        let cache = cache.clone();
        let stop = stop.clone();
        let barrier = barrier.clone();
        let latency = latency.clone();
        let zipf = zipf.clone();
        workers.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xC11F_F0E5 ^ t as u64);
            // Cold keys are globally unique: thread id in the top bits.
            let mut cold_seq = (t as u64) << 40;
            let mut ops = 0u64;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..256 {
                    let key = match mix {
                        Mix::Hot => key_for(rng.random_range(0..HOT_KEYS as u64)),
                        Mix::Cold => {
                            cold_seq += 1;
                            key_for(cold_seq)
                        }
                        Mix::Uniform => key_for(rng.random_range(0..KEYSPACE as u64)),
                        Mix::Zipfian => {
                            let u: f64 = rng.random();
                            key_for(zipf.partition_point(|&c| c < u) as u64)
                        }
                    };
                    let timed = ops.is_multiple_of(32);
                    let started = timed.then(Instant::now);
                    let value = cache.fetch(key);
                    if value.is_none() {
                        cache.fill(key, Ok(clipper_core::Output::Class(1)));
                    }
                    if let Some(started) = started {
                        latency.record(started.elapsed().as_nanos() as u64);
                    }
                    ops += 1;
                }
            }
            ThreadOutcome { ops }
        }));
    }

    barrier.wait();
    let started = Instant::now();
    std::thread::sleep(phase);
    stop.store(true, Ordering::Relaxed);
    let elapsed = started.elapsed();

    let mut ops_total = 0u64;
    for w in workers {
        ops_total += w.join().expect("worker panicked").ops;
    }
    let snap = latency.snapshot();
    RunResult {
        mix: mix.name().to_string(),
        shards: cache.shard_count(),
        threads,
        ops_total,
        ops_per_sec: ops_total as f64 / elapsed.as_secs_f64(),
        p50_probe_ns: snap.p50(),
        p99_probe_ns: snap.p99(),
        hit_rate: cache.stats().hit_rate(),
    }
}

fn find(results: &[RunResult], mix: &str, shards: usize, threads: usize) -> Option<f64> {
    results
        .iter()
        .find(|r| r.mix == mix && r.shards == shards && r.threads == threads)
        .map(|r| r.ops_per_sec)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut phase_seconds = 1.0f64;
    let mut out_path = "BENCH_cache_scaling.json".to_string();
    let mut thread_counts = vec![1usize, 2, 4, 8];
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => phase_seconds = 0.12,
            "--full" => thread_counts = (1..=8).collect(),
            "--seconds" => {
                i += 1;
                phase_seconds = args[i].parse().expect("--seconds <f64>");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => panic!("unknown flag {other:?} (see --smoke/--full/--seconds/--out)"),
        }
        i += 1;
    }
    let phase = Duration::from_secs_f64(phase_seconds);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sharded = cores.next_power_of_two().max(8);

    println!("== cache_scaling: {cores} cores, {sharded}-shard cache vs 1-shard baseline ==\n");
    let mut results = Vec::new();
    for &threads in &thread_counts {
        for mix in [Mix::Hot, Mix::Cold, Mix::Uniform, Mix::Zipfian] {
            let r = run_once(mix, sharded, threads, phase);
            println!(
                "{:>7} mix, {} shards, {} threads: {:>12.0} ops/s  p99 {:>6} ns  hit {:.1}%",
                r.mix,
                r.shards,
                r.threads,
                r.ops_per_sec,
                r.p99_probe_ns,
                r.hit_rate * 100.0
            );
            results.push(r);
        }
        // Contention baseline: the old single-mutex design.
        let r = run_once(Mix::Uniform, 1, threads, phase);
        println!(
            "{:>7} mix, {} shard , {} threads: {:>12.0} ops/s  (baseline)",
            r.mix, r.shards, r.threads, r.ops_per_sec
        );
        results.push(r);
    }

    let max_threads = *thread_counts.iter().max().unwrap();
    let one = find(&results, "uniform", sharded, 1)
        .unwrap_or(1.0)
        .max(1.0);
    let speedup_max = find(&results, "uniform", sharded, max_threads).unwrap_or(0.0) / one;
    let speedup_4v1 = find(&results, "uniform", sharded, 4).unwrap_or(0.0) / one;
    println!(
        "\nsharded uniform-mix scaling: {speedup_4v1:.2}x at 4 threads, \
         {speedup_max:.2}x at {max_threads} threads (vs 1 thread, on {cores} cores)"
    );

    let report = Report {
        bench: "cache_scaling".to_string(),
        cores,
        capacity: CAPACITY,
        sharded_shard_count: sharded,
        phase_seconds,
        thread_counts,
        results,
        speedup_max_threads_uniform: speedup_max,
        speedup_4v1_uniform: speedup_4v1,
    };
    let json = serde_json::to_string(&report).expect("serialize report");
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Self-validation: the emitted file must parse back into the schema
    // and every run must have made progress.
    let parsed: Report = serde_json::from_str(&std::fs::read_to_string(&out_path).expect("reread"))
        .expect("emitted JSON must parse back into the report schema");
    assert!(
        !parsed.results.is_empty() && parsed.results.iter().all(|r| r.ops_per_sec > 0.0),
        "malformed report: empty or zero-throughput runs"
    );

    if std::env::var("CACHE_SCALING_ENFORCE").as_deref() == Ok("1") {
        if cores >= 4 {
            // Re-measure just the two gated cells with longer phases and
            // best-of-3, so a noisy-neighbor burst on a shared CI runner
            // during one short smoke sample can't flip the verdict.
            let gate_phase = Duration::from_secs_f64(phase_seconds.max(0.3));
            let best = |threads: usize| -> f64 {
                (0..3)
                    .map(|_| run_once(Mix::Uniform, sharded, threads, gate_phase).ops_per_sec)
                    .fold(0.0f64, f64::max)
            };
            let ratio = best(4) / best(1).max(1.0);
            if ratio < 1.5 {
                eprintln!(
                    "FAIL: 4-thread uniform throughput only {ratio:.2}x single-thread \
                     (< 1.5x, best-of-3) on {cores} cores"
                );
                std::process::exit(1);
            }
            println!("enforce: ok ({ratio:.2}x at 4 threads >= 1.5x, best-of-3)");
        } else {
            println!(
                "enforce: skipped scaling gate ({cores} cores < 4 — no parallelism to measure)"
            );
        }
    }
}
