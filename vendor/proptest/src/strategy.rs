//! Value-generation strategies.

use rand::prelude::*;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe strategy handle.
pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

/// Object-safe mirror of [`Strategy`].
pub trait DynStrategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate_dyn(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        self.as_ref().generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-valued strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Wrap the given alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64
);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random::<bool>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        // Finite, wide-range floats; NaN/inf handling is not exercised here.
        (rng.random::<f32>() - 0.5) * 2e9
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        (rng.random::<f64>() - 0.5) * 2e18
    }
}

/// Strategy producing any value of `T`.
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: rand::SampleUniform + Clone> Strategy for std::ops::Range<T>
where
    std::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

// ---- simple pattern strategies for &str ----

#[derive(Clone, Debug)]
enum Atom {
    /// `.` — any printable ASCII character.
    AnyChar,
    /// `[a-z0-9_]`-style class, expanded to its members.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

#[derive(Clone, Debug)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or(chars.len().saturating_sub(1));
                let mut members = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                members.push(c);
                            }
                        }
                        j += 3;
                    } else {
                        members.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                Atom::Class(members)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 16)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or(chars.len().saturating_sub(1));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(16),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let count = rng.random_range(piece.min..=piece.max);
            for _ in 0..count {
                match &piece.atom {
                    Atom::AnyChar => {
                        out.push(char::from_u32(rng.random_range(0x20u32..0x7F)).unwrap())
                    }
                    Atom::Class(members) if !members.is_empty() => {
                        out.push(members[rng.random_range(0..members.len())])
                    }
                    Atom::Class(_) => {}
                    Atom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}
