//! Multi-frontend fan-in soak — the chaos entry in the repo's bench
//! trajectory (`BENCH_soak.json`).
//!
//! Runs the [`clipper_workload::soak`] harness at full tilt: N
//! in-process frontends over one statestore and one shared
//! fault-injectable replica fleet, a sustained open-loop mixed workload
//! (predict + feedback + control-plane churn), and the standard
//! adversarial timeline — rollout v1→v2 with cross-frontend
//! `sync_config()`, a transiently flaky replica that the retry path must
//! absorb invisibly, a frontend crash, a `rehydrate()` restart, a
//! black-holed replica that the schedulers must mark suspect and drain,
//! and a rollback. The verdict the file exists to carry: **zero lost
//! queries** — every accepted query completes or fail-fills; sheds and
//! down-frontend refusals are answered, counted, and tolerated.
//!
//! The report also carries the measured cross-frontend cache story:
//! per-frontend version-keyed caches need no rollout invalidation (old
//! entries become unreachable and CLOCK reclaims them), and the
//! per-frontend hit/miss/eviction counters show what that costs.
//!
//! Flags: `--smoke` (short run for CI), `--seconds <f64>`,
//! `--rate <f64>` (total offered qps, default 10000 full / 600 smoke),
//! `--frontends <n>`, `--out <path>` (default `BENCH_soak.json`). With
//! `SOAK_ENFORCE=1` the binary exits non-zero unless the run was
//! lossless (zero lost, every timeline action — including the crash and
//! the rehydrate restart — landed, every arrival accounted, every cache
//! drained), the frontends converged on the statestore's version, and
//! the whole-run p99 stayed under the bound (the ISSUE-6 acceptance
//! gate).

use clipper_workload::soak::{run_soak, SoakSpec};
use clipper_workload::Table;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Whole-run p99 ceiling enforced under `SOAK_ENFORCE=1`. Generous
/// against the 50 ms SLO (straggler substitution returns predictions by
/// the deadline) but far below the 2 s lost detector, so a wedged tail
/// cannot hide inside "lossless".
const ENFORCE_P99_MS: f64 = 500.0;

#[derive(Clone, Serialize, Deserialize)]
struct PhaseRow {
    name: String,
    seconds: f64,
    completed: u64,
    shed: u64,
    refused: u64,
    lost: u64,
    p50_ms: f64,
    p99_ms: f64,
    throughput: f64,
}

#[derive(Clone, Serialize, Deserialize)]
struct FrontendRow {
    index: usize,
    ok: u64,
    degraded: u64,
    shed: u64,
    refused: u64,
    lost: u64,
    retried: u64,
    hedged: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_pending_joins: u64,
    pending_len: usize,
    current_version: Option<u32>,
    alive: bool,
}

#[derive(Clone, Serialize, Deserialize)]
struct ActionRow {
    label: String,
    fired_at_s: f64,
    took_ms: f64,
    ok: bool,
    detail: String,
}

#[derive(Serialize, Deserialize)]
struct Report {
    bench: String,
    cores: usize,
    frontends: usize,
    replicas_per_version: usize,
    offered_qps: f64,
    seconds: f64,
    issued: u64,
    completed: u64,
    shed: u64,
    refused: u64,
    lost: u64,
    retried: u64,
    hedged: u64,
    p50_ms: f64,
    p99_ms: f64,
    throughput: f64,
    lossless: bool,
    converged: bool,
    phases: Vec<PhaseRow>,
    per_frontend: Vec<FrontendRow>,
    actions: Vec<ActionRow>,
}

#[tokio::main(flavor = "multi_thread", worker_threads = 4)]
async fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut seconds = 12.0f64;
    let mut rate: Option<f64> = None;
    let mut frontends = 3usize;
    let mut smoke = false;
    let mut out_path = "BENCH_soak.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                seconds = 4.0;
                frontends = 2;
            }
            "--seconds" => {
                i += 1;
                seconds = args[i].parse().expect("--seconds <f64>");
            }
            "--rate" => {
                i += 1;
                rate = Some(args[i].parse().expect("--rate <f64>"));
            }
            "--frontends" => {
                i += 1;
                frontends = args[i].parse().expect("--frontends <n>");
            }
            "--out" => {
                i += 1;
                out_path = args[i].clone();
            }
            other => {
                panic!("unknown flag {other:?} (see --smoke/--seconds/--rate/--frontends/--out)")
            }
        }
        i += 1;
    }
    let rate = rate.unwrap_or(if smoke { 600.0 } else { 10_000.0 });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!(
        "== soak: {frontends} frontends fan-in, {rate:.0} qps for {seconds:.1}s, {cores} cores ==\n"
    );
    let spec =
        SoakSpec::new(frontends, rate, Duration::from_secs_f64(seconds)).with_standard_timeline();
    let replicas_per_version = spec.replicas_per_version;
    let report = run_soak(spec).await;

    let mut phase_table = Table::new(&[
        "phase",
        "seconds",
        "completed",
        "shed",
        "refused",
        "lost",
        "p50 (ms)",
        "p99 (ms)",
        "qps",
    ]);
    let mut phases = Vec::new();
    for p in report.phases.iter().chain(std::iter::once(&report.totals)) {
        let row = PhaseRow {
            name: p.name.clone(),
            seconds: p.duration.as_secs_f64(),
            completed: p.completed,
            shed: p.shed,
            refused: p.refused,
            lost: p.lost,
            p50_ms: p.latency.p50() as f64 / 1_000.0,
            p99_ms: p.p99_ms(),
            throughput: p.throughput(),
        };
        phase_table.row(&[
            row.name.clone(),
            format!("{:.2}", row.seconds),
            format!("{}", row.completed),
            format!("{}", row.shed),
            format!("{}", row.refused),
            format!("{}", row.lost),
            format!("{:.1}", row.p50_ms),
            format!("{:.1}", row.p99_ms),
            format!("{:.0}", row.throughput),
        ]);
        if p.name != "total" {
            phases.push(row);
        }
    }
    phase_table.print();

    println!();
    let mut fe_table = Table::new(&[
        "frontend",
        "ok",
        "degraded",
        "shed",
        "refused",
        "lost",
        "retried",
        "cache hit/miss",
        "pending",
        "version",
        "alive",
    ]);
    let per_frontend: Vec<FrontendRow> = report
        .frontends
        .iter()
        .enumerate()
        .map(|(index, f)| FrontendRow {
            index,
            ok: f.ok,
            degraded: f.degraded,
            shed: f.shed,
            refused: f.refused,
            lost: f.lost,
            retried: f.retried,
            hedged: f.hedged,
            cache_hits: f.cache.hits,
            cache_misses: f.cache.misses,
            cache_evictions: f.cache.evictions,
            cache_pending_joins: f.cache.pending_joins,
            pending_len: f.pending_len,
            current_version: f.current_version,
            alive: f.alive,
        })
        .collect();
    for f in &per_frontend {
        fe_table.row(&[
            format!("f{}", f.index),
            format!("{}", f.ok),
            format!("{}", f.degraded),
            format!("{}", f.shed),
            format!("{}", f.refused),
            format!("{}", f.lost),
            format!("{}", f.retried),
            format!("{}/{}", f.cache_hits, f.cache_misses),
            format!("{}", f.pending_len),
            f.current_version.map_or("-".into(), |v| format!("v{v}")),
            format!("{}", f.alive),
        ]);
    }
    fe_table.print();

    println!();
    let actions: Vec<ActionRow> = report
        .actions
        .iter()
        .map(|a| ActionRow {
            label: a.label.clone(),
            fired_at_s: a.fired_at.as_secs_f64(),
            took_ms: a.took.as_secs_f64() * 1_000.0,
            ok: a.result.is_ok(),
            detail: match &a.result {
                Ok(s) => s.clone(),
                Err(e) => e.clone(),
            },
        })
        .collect();
    for a in &actions {
        println!(
            "  t={:6.2}s {:32} {:5.1}ms  {}",
            a.fired_at_s,
            a.label,
            a.took_ms,
            if a.ok { "ok" } else { "FAILED" }
        );
    }

    let lossless = report.is_lossless();
    let out = Report {
        bench: "soak".to_string(),
        cores,
        frontends,
        replicas_per_version,
        offered_qps: rate,
        seconds,
        issued: report.issued,
        completed: report.totals.completed,
        shed: report.totals.shed,
        refused: report.totals.refused,
        lost: report.totals.lost,
        retried: report.retried(),
        hedged: report.hedged(),
        p50_ms: report.totals.latency.p50() as f64 / 1_000.0,
        p99_ms: report.totals.p99_ms(),
        throughput: report.totals.throughput(),
        lossless,
        converged: report.converged,
        phases,
        per_frontend,
        actions,
    };
    println!(
        "\nissued {} · completed {} · shed {} · refused {} · lost {} · retried {} · p99 {:.1}ms · lossless {} · converged {}",
        out.issued, out.completed, out.shed, out.refused, out.lost, out.retried, out.p99_ms, out.lossless, out.converged
    );

    let json = serde_json::to_string(&out).expect("serialize report");
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    // Self-validation: the emitted file must parse back, traffic must
    // have flowed, and every arrival must be accounted for.
    let parsed: Report = serde_json::from_str(&std::fs::read_to_string(&out_path).expect("reread"))
        .expect("emitted JSON must parse back into the report schema");
    assert!(parsed.issued > 0, "malformed report: no traffic");
    assert_eq!(
        parsed.completed + parsed.shed + parsed.refused + parsed.lost,
        parsed.issued,
        "malformed report: outcomes do not account for every arrival"
    );

    if std::env::var("SOAK_ENFORCE").as_deref() == Ok("1") {
        // The acceptance gate: the soak survived its timeline losslessly.
        let mut ok = true;
        if out.lost > 0 {
            eprintln!(
                "FAIL: {} queries lost (accepted but never answered)",
                out.lost
            );
            ok = false;
        }
        for a in &out.actions {
            if !a.ok {
                eprintln!("FAIL: timeline action {:?} failed: {}", a.label, a.detail);
                ok = false;
            }
        }
        let crashed = out
            .actions
            .iter()
            .any(|a| a.ok && a.label.starts_with("crash"));
        let restarted = out
            .actions
            .iter()
            .any(|a| a.ok && a.label.starts_with("restart"));
        if !(crashed && restarted) {
            eprintln!("FAIL: the crash/restart phase did not run to completion");
            ok = false;
        }
        if !lossless {
            eprintln!("FAIL: run not lossless (unaccounted arrivals or undrained caches)");
            ok = false;
        }
        if !out.converged {
            eprintln!("FAIL: frontends did not converge on the statestore's current version");
            ok = false;
        }
        if out.p99_ms > ENFORCE_P99_MS {
            eprintln!(
                "FAIL: whole-run p99 {:.1}ms exceeds the {ENFORCE_P99_MS:.0}ms bound",
                out.p99_ms
            );
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "enforce: ok (lossless, crash+restart landed, converged, p99 {:.1}ms <= {ENFORCE_P99_MS:.0}ms)",
            out.p99_ms
        );
    }
}
