//! Clipper core: the layered prediction-serving architecture of
//! Crankshaw et al., NSDI 2017.
//!
//! Two layers sit between applications and model containers:
//!
//! **Model abstraction layer** ([`abstraction`]) — a uniform batch
//! prediction interface over heterogeneous models:
//! - [`cache`]: a CLOCK-evicted prediction cache whose pending entries
//!   double as the join point between duplicate in-flight queries and
//!   between predictions and later feedback (§4.2);
//! - [`batching`]: per-replica adaptive batching queues — AIMD (the
//!   default), online quantile regression, fixed, or none — plus delayed
//!   batching under moderate load (§4.3). Each queue is a pull-based
//!   worker with an explicit `Running → Draining → Stopped` lifecycle and
//!   zero-copy batch dispatch;
//! - per-model replica scheduling (§4.4.1): depth-aware
//!   power-of-two-choices over live queue state (backlog × service-rate
//!   EWMA) with fall-through before shedding and graceful hot
//!   add/remove — see [`abstraction::SchedulerPolicy`].
//!
//! **Model selection layer** ([`selection`]) — feedback-driven dispatch
//! and combination (§5):
//! - the four-function selection-policy interface of Listing 2
//!   (`init` / `select` / `combine` / `observe`);
//! - [`selection::Exp3Policy`] (single-model bandit) and
//!   [`selection::Exp4Policy`] (ensemble weighting), plus ε-greedy, UCB1,
//!   and static policies;
//! - straggler mitigation: predictions render at the latency deadline from
//!   whatever subset of the ensemble has arrived (§5.2.2);
//! - contextualization: per-user/session policy state in an external
//!   statestore (§5.3).
//!
//! The [`Clipper`] facade ties the layers together and carries the
//! **control plane** (§3, §6.3): live app lifecycle
//! (register/update/unregister), model-version rollout and rollback with
//! graceful drain of the old version, statestore-persisted registrations
//! with restart rehydration, and the typed error taxonomy in [`api`].
//! [`frontend`] exposes both planes over HTTP as the versioned `/api/v1`
//! REST surface, and [`fleet`] closes the replica loop production-style:
//! container self-registration, heartbeat-driven health with graceful
//! expiry, and backlog-driven autoscaling. Start from [`ClipperBuilder`]:
//!
//! ```no_run
//! # use clipper_core::*;
//! # async fn demo() {
//! let clipper = Clipper::builder().build();
//! clipper.add_model(ModelId::new("my-model", 1), Default::default());
//! // clipper.add_replica(...transport...);
//! clipper.register_app(AppConfig::new("my-app", vec![ModelId::new("my-model", 1)]));
//! let out = clipper
//!     .predict("my-app", None, std::sync::Arc::new(vec![0.0; 784]))
//!     .await;
//! # }
//! ```

pub mod abstraction;
pub mod api;
pub mod batching;
pub mod cache;
pub mod clipper;
pub mod fleet;
pub mod frontend;
pub mod json_emit;
pub mod selection;
pub mod types;

pub use abstraction::{BatchConfig, ModelAbstractionLayer, PredictError, SchedulerPolicy};
pub use api::{
    ApiError, AppPatch, AppSpec, AppView, ErrorBody, ModelView, RehydrateReport, RolloutOutcome,
    SyncReport,
};
pub use batching::{AimdController, BatchStrategy, QuantileController, QueueState};
pub use cache::{CacheKey, CacheStats, PredictionCache};
pub use clipper::{Clipper, ClipperBuilder};
pub use fleet::{
    AutoscaleConfig, AutoscaleDecision, Fleet, FleetConfig, FleetEvent, FnLauncher, ReplicaHealth,
    ReplicaLauncher,
};
pub use frontend::HttpFrontend;
pub use selection::{
    EpsilonGreedyPolicy, Exp3Policy, Exp4Policy, PolicyState, SelectionPolicy, StaticPolicy,
    ThompsonSamplingPolicy, UcbPolicy,
};
pub use types::{
    output_loss, AppConfig, AppUpdate, Feedback, Input, ModelId, Output, PolicyKind, Prediction,
};
