//! Direct streaming JSON emitter for the predict hot path.
//!
//! The vendored serde substitute serializes through a self-describing
//! `Content` tree: every response body allocates a tree of maps, strings,
//! and boxed values before a second pass renders text. For the data-plane
//! responses the frontend emits thousands of times per second —
//! [`crate::api::ErrorBody`], [`crate::api::JsonOutput`], the predict
//! envelope — that round trip is pure overhead. This module writes the
//! same bytes in one pass into one `String`.
//!
//! **Byte-identical by contract.** Output must match
//! `serde_json::to_string` of the same value exactly — the unit tests
//! here and in `api.rs`/`frontend.rs` enforce it on every shape the hot
//! path emits — so switching a call site between the two serializers can
//! never change the wire format:
//!
//! - strings escape `"` `\` `\n` `\r` `\t` and other control characters
//!   as `\u00XX` (and nothing else);
//! - floats go through f64, error on non-finite, and render integral
//!   values below 1e15 with one forced decimal (`2.0`), everything else
//!   via `Display` — the vendored emitter's exact rule;
//! - field order is declaration order, no whitespace.

use std::fmt::Write as _;

/// Error for a float that JSON cannot represent. Matches the vendored
/// serde_json error message for the same condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonFiniteFloat;

impl std::fmt::Display for NonFiniteFloat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot serialize non-finite float")
    }
}

impl std::error::Error for NonFiniteFloat {}

/// A single-pass JSON writer. Structural correctness (matching braces,
/// comma placement) is the caller's responsibility — call sites emit
/// fixed shapes.
#[derive(Default)]
pub struct Emitter {
    buf: String,
}

impl Emitter {
    /// Start with capacity for a typical small response body.
    pub fn with_capacity(cap: usize) -> Emitter {
        Emitter {
            buf: String::with_capacity(cap),
        }
    }

    /// The finished JSON text.
    pub fn into_string(self) -> String {
        self.buf
    }

    /// Append structural tokens (`{`, `,"key":`, …) verbatim.
    pub fn raw(&mut self, s: &str) {
        self.buf.push_str(s);
    }

    /// Append an escaped JSON string (with quotes).
    pub fn string(&mut self, s: &str) {
        self.buf.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.buf, "\\u{:04x}", c as u32);
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Append an unsigned integer.
    pub fn u64(&mut self, v: u64) {
        let _ = write!(self.buf, "{v}");
    }

    /// Append a signed integer.
    pub fn i64(&mut self, v: i64) {
        let _ = write!(self.buf, "{v}");
    }

    /// Append a bool.
    pub fn bool(&mut self, v: bool) {
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Append an f64 under the vendored emitter's formatting rule.
    pub fn f64(&mut self, v: f64) -> Result<(), NonFiniteFloat> {
        if !v.is_finite() {
            return Err(NonFiniteFloat);
        }
        if v.fract() == 0.0 && v.abs() < 1e15 {
            let _ = write!(self.buf, "{v:.1}");
        } else {
            let _ = write!(self.buf, "{v}");
        }
        Ok(())
    }

    /// Append an f32 (serialized through f64, like the `Content` model).
    pub fn f32(&mut self, v: f32) -> Result<(), NonFiniteFloat> {
        self.f64(v as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serde_string(s: &str) -> String {
        serde_json::to_string(s).unwrap()
    }

    #[test]
    fn signed_integers_match_serde() {
        for v in [0i64, 1, -1, -42, i64::MIN, i64::MAX] {
            let mut e = Emitter::default();
            e.i64(v);
            assert_eq!(e.into_string(), serde_json::to_string(&v).unwrap());
        }
    }

    #[test]
    fn strings_match_serde_byte_for_byte() {
        for s in [
            "",
            "plain",
            "we\"ird\\app",
            "line\nfeed\ttab\rret",
            "\u{1} control \u{1f} edge",
            "unicode: héllo → 世界 🦀",
            "quote at end\"",
        ] {
            let mut e = Emitter::default();
            e.string(s);
            assert_eq!(e.into_string(), serde_string(s), "input {s:?}");
        }
    }

    #[test]
    fn floats_match_serde_byte_for_byte() {
        for v in [
            0.0f64,
            -0.0,
            1.0,
            2.0,
            -3.0,
            0.25,
            1.0 / 3.0,
            1e14,
            1e15,
            1e20,
            -1e-12,
            f64::MIN_POSITIVE,
            12345.6789,
        ] {
            let mut e = Emitter::default();
            e.f64(v).unwrap();
            assert_eq!(
                e.into_string(),
                serde_json::to_string(&v).unwrap(),
                "input {v:?}"
            );
        }
        for v in [0.5f32, 7.0, 0.1, -2.625e-3] {
            let mut e = Emitter::default();
            e.f32(v).unwrap();
            assert_eq!(
                e.into_string(),
                serde_json::to_string(&v).unwrap(),
                "input {v:?}"
            );
        }
    }

    #[test]
    fn non_finite_floats_error_like_serde() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut e = Emitter::default();
            let err = e.f64(v).unwrap_err();
            let serde_err = serde_json::to_string(&v).unwrap_err();
            assert_eq!(err.to_string(), serde_err.to_string());
        }
    }

    #[test]
    fn integers_and_bools_match_serde() {
        for v in [0u64, 1, 42, u64::MAX] {
            let mut e = Emitter::default();
            e.u64(v);
            assert_eq!(e.into_string(), serde_json::to_string(&v).unwrap());
        }
        for v in [true, false] {
            let mut e = Emitter::default();
            e.bool(v);
            assert_eq!(e.into_string(), serde_json::to_string(&v).unwrap());
        }
    }
}
